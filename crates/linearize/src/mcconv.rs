//! Converting a model-checker schedule into a checkable lock history.
//!
//! The explorers of `tfr-modelcheck` verify mutual exclusion with a
//! state monitor; the Wing–Gong checker verifies it as linearizability
//! against [`LockModel`]. This module lets the two tiers cross-examine
//! each other: [`lock_history_from_schedule`] replays any explorer
//! schedule (a visited execution, a sampled one, or a counterexample)
//! over a lock workload and reconstructs the concurrent history of
//! `acquire`/`release` operations from the workload's phase events.
//!
//! The reconstruction is exact, not approximate, because the abstract
//! schedule totally orders the steps:
//!
//! * [`Obs::EnterTrying`] invokes `acquire(p)`; [`Obs::EnterCritical`]
//!   is its response — the moment the lock was granted, which is where
//!   the model linearizes the acquisition.
//! * [`Obs::ExitCritical`] invokes `release(p)`; [`Obs::EnterRemainder`]
//!   is its response.
//! * Timestamps are the global event order of the replay, so real-time
//!   precedence in the history is exactly step precedence in the
//!   schedule.
//!
//! A safe lock's every execution yields a linearizable history; a
//! mutual-exclusion violation yields two completed `acquire`s with no
//! `release` between them, which [`LockModel`] rejects — the two tiers
//! must agree, and the tests make them.

use crate::history::{History, Operation};
use crate::models::{lock_acquire, lock_release};
use tfr_modelcheck::{run_schedule, SafetySpec};
use tfr_registers::spec::{Action, Automaton, Obs};
use tfr_registers::ProcId;

/// Replays `schedule` over `automaton` (a lock workload emitting the
/// four phase events) and reconstructs the acquire/release history.
///
/// The replay observes with an empty [`SafetySpec`], so it runs the full
/// schedule even when the execution violates mutual exclusion — that is
/// the interesting case. Operations still open when the schedule ends
/// (a process parked in its entry section) are *pending*, which the
/// checker may linearize or drop; a blocked acquirer has no observable
/// effect, so dropping is sound.
///
/// # Panics
///
/// Panics where [`run_schedule`] does: when `schedule` is not a valid
/// execution of `automaton` (wrong pid bounds or actions).
pub fn lock_history_from_schedule<A: Automaton>(
    automaton: &A,
    n: usize,
    schedule: &[(ProcId, Action)],
) -> History {
    let run = run_schedule(automaton, n, &SafetySpec::default(), schedule);
    let mut ops: Vec<Operation> = Vec::new();
    // Index into `ops` of each process's operation awaiting a response.
    let mut open: Vec<Option<usize>> = vec![None; n];
    let mut ts: u64 = 0;
    for (_, pid, obs) in run.events() {
        ts += 1;
        let p = pid.0;
        match obs {
            Obs::EnterTrying | Obs::ExitCritical => {
                assert!(
                    open[p].is_none(),
                    "{pid} invokes an operation with one already open"
                );
                open[p] = Some(ops.len());
                ops.push(Operation {
                    pid,
                    obj: 0,
                    op: if obs == Obs::EnterTrying {
                        lock_acquire(p as u64)
                    } else {
                        lock_release(p as u64)
                    },
                    resp: None,
                    invoke_ts: ts,
                    resp_ts: u64::MAX,
                });
            }
            Obs::EnterCritical | Obs::EnterRemainder => {
                let i = open[p]
                    .take()
                    .unwrap_or_else(|| panic!("{pid} responds with no open operation"));
                ops[i].resp = Some(0);
                ops[i].resp_ts = ts;
            }
            _ => {}
        }
    }
    History::from_ops(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_history;
    use crate::models::LockModel;
    use crate::mutants::SplitTasSpec;
    use tfr_asynclock::workload::LockLoop;
    use tfr_modelcheck::{sample_execution, Explorer};

    #[test]
    fn sampled_resilient_mutex_executions_are_linearizable() {
        // Explorer-reachable executions of Algorithm 3 (a safe lock):
        // every sampled schedule's history must pass the Wing–Gong tier.
        let workload = tfr_core::verify::resilient_workload(2);
        for seed in 0..8 {
            let schedule = sample_execution(&workload, 2, seed, 400);
            let history = lock_history_from_schedule(&workload, 2, &schedule);
            assert!(
                check_history(&history, &LockModel).is_ok(),
                "seed {seed}: a safe lock's history must linearize"
            );
        }
    }

    #[test]
    fn split_tas_mutant_rejected_by_both_tiers() {
        // Tier 1, the explorer: the non-atomic test-and-set loses
        // mutual exclusion on some interleaving.
        let workload = LockLoop::new(SplitTasSpec::new(2), 1);
        let report = Explorer::new(workload.clone(), 2).check(&SafetySpec::mutex());
        let cex = report.violation.expect("the split TAS must break");

        // Tier 2, the checker: the same execution's history has two
        // completed acquires and no release — non-linearizable.
        let history = lock_history_from_schedule(&workload, 2, &cex.schedule);
        let err = check_history(&history, &LockModel).expect_err("two holders");
        let rendered = format!("{err}");
        assert!(
            rendered.contains("acquire"),
            "the failure window names the colliding acquires: {rendered}"
        );
    }

    #[test]
    fn violating_history_has_two_open_holds() {
        let workload = LockLoop::new(SplitTasSpec::new(2), 1);
        let cex = Explorer::new(workload.clone(), 2)
            .check(&SafetySpec::mutex())
            .violation
            .unwrap();
        let history = lock_history_from_schedule(&workload, 2, &cex.schedule);
        let completed_acquires = history
            .ops
            .iter()
            .filter(|o| o.op & 1 == 0 && o.resp.is_some())
            .count();
        let releases = history.ops.iter().filter(|o| o.op & 1 == 1).count();
        assert_eq!(completed_acquires, 2);
        assert_eq!(releases, 0, "the schedule stops at the violation");
    }
}
