//! Linearizability sampling **under load**: bounded windowed recording
//! with periodic excision of checkable segments.
//!
//! The plain [`crate::history::Recorder`] merges at quiescence — fine for
//! a toy run, useless for a service sustaining load for seconds: its
//! buffers would have to hold the whole run, and the checker would get
//! one enormous history. A [`WindowRecorder`] instead keeps **two banks**
//! of bounded per-process single-writer buffers and flips an epoch
//! counter between them: while workers record into the new bank, the
//! rotator drains the old one into a [`Window`] and hands it to a
//! [`WindowChecker`], which excises *quiescent prefixes* and runs
//! Wing–Gong on them incrementally with carried state. Sampling therefore
//! runs in the load path, on the very execution being benchmarked.
//!
//! # Why the windows are sound
//!
//! * Timestamps come from one `SeqCst` atomic clock, exactly as in the
//!   quiescent recorder, so recorded precedence is real-time precedence.
//! * An operation's invoke and response always land in the **same** bank
//!   (the response uses the bank captured in its [`SampleToken`]), so no
//!   operation is split across windows.
//! * A rotation reads a clock **floor** *before* flipping the epoch, then
//!   waits until every live worker has heartbeated past the flip before
//!   draining the old bank. Workers heartbeat only when they have no open
//!   sampled operation, so (a) the drained bank is complete and stable,
//!   and (b) every operation recorded after the flip has
//!   `invoke_ts ≥ floor` — the floor is a true time barrier between the
//!   drained window and everything that comes later.
//! * The [`WindowChecker`] only excises a prefix whose latest response
//!   precedes both every pooled later invoke and the latest floor: no
//!   operation overlaps the cut, so linearizability composes across it —
//!   checking `[prefix with carry-in state]` and `[rest]` separately
//!   accepts exactly the histories a whole-run check would accept.
//!
//! Carrying state across cuts folds the sequential model over the
//! prefix's witness order. For models whose post-state is independent of
//! the witness order (the counter: state is the running total, fixed by
//! the multiset of committed ops) this is exact. For order-sensitive
//! models a different witness could in principle leave a different
//! carry; the checker is then conservative (it may reject a linearizable
//! continuation, never accept a non-linearizable prefix).

use crate::checker::{check_object, NonLinearizable};
use crate::history::Operation;
use crate::models::SeqSpec;
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tfr_registers::ProcId;

#[derive(Debug, Clone, Copy, Default)]
struct RawEvent {
    ts: u64,
    obj: u64,
    /// Invoke: the encoded op. Response: the paired invoke's timestamp.
    a: u64,
    /// Response: the encoded response.
    b: u64,
    is_response: bool,
}

struct ProcBuf {
    len: AtomicUsize,
    slots: Box<[UnsafeCell<RawEvent>]>,
}

// SAFETY: slots are written only by the single owning worker thread
// before a release-store of `len`, and read by the rotator only after
// the worker's heartbeat proved it left this bank (see `rotate`).
unsafe impl Sync for ProcBuf {}

impl ProcBuf {
    fn new(capacity: usize) -> ProcBuf {
        ProcBuf {
            len: AtomicUsize::new(0),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(RawEvent::default()))
                .collect(),
        }
    }
}

/// The receipt for a sampled invocation: pass it to
/// [`WindowRecorder::response`]. Carries the bank the invoke landed in so
/// the response joins it there.
#[derive(Debug, Clone, Copy)]
pub struct SampleToken {
    ts: u64,
    bank: usize,
    recorded: bool,
}

/// One drained window of completed operations.
#[derive(Debug, Clone)]
pub struct Window {
    /// The epoch that was closed (0-based flip count).
    pub epoch: u64,
    /// Clock floor read before the flip: every operation recorded after
    /// this window has `invoke_ts >= floor`.
    pub floor: u64,
    /// The window's completed operations, sorted by invoke timestamp.
    pub ops: Vec<Operation>,
    /// Invokes drained without a matching response (a worker died with
    /// an open sampled op — should be 0 in a healthy run).
    pub incomplete: usize,
}

/// Outcome of a rotation attempt.
#[derive(Debug)]
pub enum Rotation {
    /// The old bank was drained.
    Window(Window),
    /// Some live worker did not heartbeat past the flip within the
    /// timeout; the flip stays armed — call [`WindowRecorder::rotate`]
    /// again to resume waiting.
    TimedOut,
}

/// A bounded, bank-flipping history recorder for sampling linearizability
/// under sustained load. See the module docs for the soundness argument.
///
/// Worker contract (per `pid`, single-writer):
/// * [`invoke`](WindowRecorder::invoke) / [`response`](WindowRecorder::response)
///   from the worker's own thread only;
/// * [`heartbeat`](WindowRecorder::heartbeat) at points with **no open
///   sampled operation** (e.g. between service rounds);
/// * [`finish`](WindowRecorder::finish) once, at worker exit.
pub struct WindowRecorder {
    clock: AtomicU64,
    epoch: AtomicU64,
    banks: [Vec<ProcBuf>; 2],
    /// `heartbeats[p]` = the last epoch worker `p` observed at a safe
    /// point; `u64::MAX` once finished.
    heartbeats: Vec<AtomicU64>,
    dropped: AtomicU64,
    /// An armed-but-unfinished flip: `(old_epoch, floor)`.
    pending_flip: Mutex<Option<(u64, u64)>>,
}

impl std::fmt::Debug for WindowRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowRecorder")
            .field("processes", &self.heartbeats.len())
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .field("dropped", &self.dropped.load(Ordering::SeqCst))
            .finish()
    }
}

impl WindowRecorder {
    /// A recorder for `n` workers holding up to `events_per_process`
    /// events (two per operation) per worker *per bank*.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `events_per_process < 2`.
    pub fn new(n: usize, events_per_process: usize) -> WindowRecorder {
        assert!(n > 0, "at least one worker is required");
        assert!(events_per_process >= 2, "a bank must hold one operation");
        WindowRecorder {
            clock: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            banks: [
                (0..n).map(|_| ProcBuf::new(events_per_process)).collect(),
                (0..n).map(|_| ProcBuf::new(events_per_process)).collect(),
            ],
            heartbeats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dropped: AtomicU64::new(0),
            pending_flip: Mutex::new(None),
        }
    }

    /// Operations dropped because a worker's bank was full — sampling
    /// loss, not service loss. Size banks (or thin the sampling) so this
    /// stays 0 if full coverage of sampled keys is wanted.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Records a sampled invocation of `op` on object `obj` by `pid`.
    /// Worker-thread only. Reserves room for the response in the same
    /// bank; if the bank is full, the whole operation is skipped (and
    /// counted in [`WindowRecorder::dropped`]).
    pub fn invoke(&self, pid: ProcId, obj: u64, op: u64) -> SampleToken {
        let bank = (self.epoch.load(Ordering::SeqCst) & 1) as usize;
        let buf = &self.banks[bank][pid.0];
        let i = buf.len.load(Ordering::Relaxed);
        if i + 2 > buf.slots.len() {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return SampleToken {
                ts: 0,
                bank,
                recorded: false,
            };
        }
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        // SAFETY: single writer per pid; `i` is below capacity.
        unsafe {
            *buf.slots[i].get() = RawEvent {
                ts,
                obj,
                a: op,
                b: 0,
                is_response: false,
            };
        }
        buf.len.store(i + 1, Ordering::Release);
        SampleToken {
            ts,
            bank,
            recorded: true,
        }
    }

    /// Records the response of the invocation `token`. Worker-thread
    /// only; must precede the worker's next heartbeat.
    pub fn response(&self, pid: ProcId, obj: u64, token: SampleToken, resp: u64) {
        if !token.recorded {
            return;
        }
        let buf = &self.banks[token.bank][pid.0];
        let i = buf.len.load(Ordering::Relaxed);
        debug_assert!(i < buf.slots.len(), "invoke reserved the response slot");
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        // SAFETY: single writer per pid; the slot was reserved by invoke.
        unsafe {
            *buf.slots[i].get() = RawEvent {
                ts,
                obj,
                a: token.ts,
                b: resp,
                is_response: true,
            };
        }
        buf.len.store(i + 1, Ordering::Release);
    }

    /// Marks worker `pid` as caught up with the current epoch. Call only
    /// with no open sampled operation.
    pub fn heartbeat(&self, pid: ProcId) {
        let e = self.epoch.load(Ordering::SeqCst);
        self.heartbeats[pid.0].store(e, Ordering::SeqCst);
    }

    /// Marks worker `pid` as finished: it records nothing further and no
    /// rotation waits for it.
    pub fn finish(&self, pid: ProcId) {
        self.heartbeats[pid.0].store(u64::MAX, Ordering::SeqCst);
    }

    /// Flips the epoch and drains the closed bank into a [`Window`],
    /// waiting up to `timeout` for every live worker to heartbeat past
    /// the flip. On [`Rotation::TimedOut`] the flip stays armed and the
    /// next call resumes the same drain.
    ///
    /// Single-rotator: serialized internally; concurrent callers block.
    pub fn rotate(&self, timeout: Duration) -> Rotation {
        let mut pending = self.pending_flip.lock().unwrap_or_else(|e| e.into_inner());
        let (old_epoch, floor) = match *pending {
            Some(armed) => armed,
            None => {
                let e = self.epoch.load(Ordering::SeqCst);
                // The floor is read BEFORE the flip: any op recorded in a
                // later epoch takes its timestamp after observing the
                // flipped epoch, hence after this read — monotonicity of
                // the clock makes its invoke_ts >= floor.
                let floor = self.clock.load(Ordering::SeqCst);
                self.epoch.store(e + 1, Ordering::SeqCst);
                *pending = Some((e, floor));
                (e, floor)
            }
        };
        let deadline = Instant::now() + timeout;
        loop {
            let caught_up = self
                .heartbeats
                .iter()
                .all(|h| h.load(Ordering::SeqCst) > old_epoch);
            if caught_up {
                break;
            }
            if Instant::now() >= deadline {
                return Rotation::TimedOut;
            }
            std::thread::yield_now();
        }
        // Every live worker observed epoch > old_epoch with no open op:
        // the old bank is complete and will not be written again until
        // the epoch wraps back to it — after the reset below, which this
        // same flip ordering makes visible first.
        let bank = (old_epoch & 1) as usize;
        let mut ops = Vec::new();
        let mut incomplete = 0;
        for (pid, buf) in self.banks[bank].iter().enumerate() {
            let len = buf.len.load(Ordering::Acquire);
            let mut open: BTreeMap<u64, usize> = BTreeMap::new();
            for slot in &buf.slots[..len] {
                // SAFETY: the worker left this bank (heartbeat above);
                // indices below `len` were written before its release.
                let ev = unsafe { *slot.get() };
                if ev.is_response {
                    if let Some(idx) = open.remove(&ev.a) {
                        let op: &mut Operation = &mut ops[idx];
                        op.resp = Some(ev.b);
                        op.resp_ts = ev.ts;
                    }
                } else {
                    open.insert(ev.ts, ops.len());
                    ops.push(Operation {
                        pid: ProcId(pid),
                        obj: ev.obj,
                        op: ev.a,
                        resp: None,
                        invoke_ts: ev.ts,
                        resp_ts: u64::MAX,
                    });
                }
            }
            incomplete += open.len();
            buf.len.store(0, Ordering::Release);
        }
        ops.retain(|o| o.is_complete());
        ops.sort_by_key(|o| o.invoke_ts);
        *pending = None;
        Rotation::Window(Window {
            epoch: old_epoch,
            floor,
            ops,
            incomplete,
        })
    }
}

/// A [`SeqSpec`] adapter whose initial state is an explicit carry-in —
/// how the [`WindowChecker`] resumes a model mid-history.
#[derive(Debug, Clone)]
pub struct FromState<'m, M: SeqSpec> {
    model: &'m M,
    start: M::State,
}

impl<'m, M: SeqSpec> FromState<'m, M> {
    /// `model`, but starting from `start` instead of `model.initial()`.
    pub fn new(model: &'m M, start: M::State) -> FromState<'m, M> {
        FromState { model, start }
    }
}

impl<M: SeqSpec> SeqSpec for FromState<'_, M> {
    type State = M::State;
    fn initial(&self) -> M::State {
        self.start.clone()
    }
    fn step(&self, state: &M::State, op: u64, resp: u64) -> Option<M::State> {
        self.model.step(state, op, resp)
    }
    fn step_unknown(&self, state: &M::State, op: u64) -> Vec<M::State> {
        self.model.step_unknown(state, op)
    }
    fn describe(&self, op: u64, resp: Option<u64>) -> String {
        self.model.describe(op, resp)
    }
}

/// Summary of an incremental under-load check.
#[derive(Debug, Clone, Default)]
pub struct WindowCheckReport {
    /// Operations checked across all segments and objects.
    pub ops_checked: usize,
    /// Quiescent segments excised and checked.
    pub segments: usize,
    /// Checker configurations explored in total.
    pub configs_explored: usize,
}

/// Incremental Wing–Gong over drained [`Window`]s: pools operations per
/// object, excises quiescent prefixes as they become available, checks
/// them against the model with carried state, and frees their memory —
/// the checker's footprint stays bounded by the overlap structure of the
/// load, not by the run length.
pub struct WindowChecker<M: SeqSpec> {
    model: M,
    pools: BTreeMap<u64, Vec<Operation>>,
    carries: BTreeMap<u64, M::State>,
    latest_floor: u64,
    report: WindowCheckReport,
}

impl<M: SeqSpec> WindowChecker<M> {
    /// An incremental checker against `model`.
    pub fn new(model: M) -> WindowChecker<M> {
        WindowChecker {
            model,
            pools: BTreeMap::new(),
            carries: BTreeMap::new(),
            latest_floor: 0,
            report: WindowCheckReport::default(),
        }
    }

    /// Adds a drained window's operations to the per-object pools.
    pub fn ingest(&mut self, window: &Window) {
        self.latest_floor = self.latest_floor.max(window.floor);
        for op in &window.ops {
            self.pools.entry(op.obj).or_default().push(*op);
        }
    }

    /// Operations pooled but not yet checked (still overlapping the
    /// load's frontier).
    pub fn pooled(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// Excises and checks every available quiescent prefix. Returns the
    /// number of operations checked by this call, or the first failing
    /// object's evidence.
    pub fn check_available(&mut self) -> Result<usize, NonLinearizable> {
        self.cut_and_check(self.latest_floor)
    }

    /// Consumes the checker at quiescence: every pooled operation is
    /// checked (no future invoke can precede them any more).
    pub fn finalize(mut self) -> Result<WindowCheckReport, NonLinearizable> {
        self.cut_and_check(u64::MAX)?;
        debug_assert_eq!(self.pooled(), 0, "a MAX floor cuts everything");
        Ok(self.report)
    }

    fn cut_and_check(&mut self, floor: u64) -> Result<usize, NonLinearizable> {
        let mut checked = 0;
        for (&obj, pool) in self.pools.iter_mut() {
            pool.sort_by_key(|o| o.invoke_ts);
            // The largest prefix whose latest response precedes every
            // remaining pooled invoke AND the floor (= every future
            // invoke): nothing overlaps the cut, so checking the prefix
            // separately is exact.
            let mut cut = 0;
            let mut max_resp = 0u64;
            for i in 0..pool.len() {
                max_resp = max_resp.max(pool[i].resp_ts);
                let next_invoke = pool.get(i + 1).map_or(u64::MAX, |o| o.invoke_ts);
                if max_resp < next_invoke.min(floor) {
                    cut = i + 1;
                }
            }
            if cut == 0 {
                continue;
            }
            let rest = pool.split_off(cut);
            let head = std::mem::replace(pool, rest);
            let carry = self
                .carries
                .get(&obj)
                .cloned()
                .unwrap_or_else(|| self.model.initial());
            let spec = FromState::new(&self.model, carry.clone());
            let object_report = check_object(obj, &head, &spec)?;
            // Fold the model along the witness to carry state across the
            // cut (exact for witness-invariant models like the counter).
            let mut state = carry;
            for &idx in &object_report.order {
                let op = &head[idx];
                state = self
                    .model
                    .step(&state, op.op, op.resp.expect("windows hold completed ops"))
                    .expect("the witness order replays by construction");
            }
            self.carries.insert(obj, state);
            checked += head.len();
            self.report.ops_checked += head.len();
            self.report.segments += 1;
            self.report.configs_explored += object_report.configs_explored;
        }
        self.pools.retain(|_, pool| !pool.is_empty());
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CounterModel;
    use std::sync::Arc;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn ops_stay_within_their_bank_and_windows_drain() {
        let rec = WindowRecorder::new(2, 64);
        let t = rec.invoke(ProcId(0), 1, 5);
        rec.response(ProcId(0), 1, t, 5);
        rec.heartbeat(ProcId(0));
        rec.heartbeat(ProcId(1));
        // Flip: workers heartbeat after the flip to release the drain.
        let handle = {
            std::thread::scope(|s| {
                let rec = &rec;
                let h = s.spawn(move || rec.rotate(T));
                // Heartbeats race the rotator; keep beating until it wins.
                loop {
                    rec.heartbeat(ProcId(0));
                    rec.heartbeat(ProcId(1));
                    if h.is_finished() {
                        break h.join().unwrap();
                    }
                    std::thread::yield_now();
                }
            })
        };
        let Rotation::Window(w) = handle else {
            panic!("rotation should complete");
        };
        assert_eq!(w.epoch, 0);
        assert_eq!(w.ops.len(), 1);
        assert_eq!(w.ops[0].resp, Some(5));
        assert_eq!(w.incomplete, 0);
        assert!(w.floor > w.ops[0].invoke_ts, "floor read after the op");

        // Ops recorded now land in the other bank with invoke_ts >= floor.
        let t2 = rec.invoke(ProcId(0), 1, 7);
        assert!(t2.recorded);
        rec.response(ProcId(0), 1, t2, 12);
        rec.finish(ProcId(0));
        rec.finish(ProcId(1));
        let Rotation::Window(w2) = rec.rotate(T) else {
            panic!("finished workers never block a rotation");
        };
        assert_eq!(w2.ops.len(), 1);
        assert!(w2.ops[0].invoke_ts >= w.floor, "floor is a time barrier");
    }

    #[test]
    fn rotation_times_out_until_workers_catch_up_then_resumes() {
        let rec = WindowRecorder::new(1, 8);
        let t = rec.invoke(ProcId(0), 0, 1);
        rec.response(ProcId(0), 0, t, 1);
        // No heartbeat past the flip yet: the rotation must time out.
        assert!(matches!(
            rec.rotate(Duration::from_millis(10)),
            Rotation::TimedOut
        ));
        // The flip stayed armed; once the worker catches up, the same
        // drain completes.
        rec.heartbeat(ProcId(0));
        let Rotation::Window(w) = rec.rotate(T) else {
            panic!("armed flip should resume");
        };
        assert_eq!(w.epoch, 0);
        assert_eq!(w.ops.len(), 1);
    }

    #[test]
    fn full_bank_drops_whole_ops_and_counts_them() {
        let rec = WindowRecorder::new(1, 2); // room for exactly one op
        let t1 = rec.invoke(ProcId(0), 0, 1);
        rec.response(ProcId(0), 0, t1, 1);
        let t2 = rec.invoke(ProcId(0), 0, 2);
        assert!(!t2.recorded);
        rec.response(ProcId(0), 0, t2, 3); // silently skipped
        assert_eq!(rec.dropped(), 1);
        rec.finish(ProcId(0));
        let Rotation::Window(w) = rec.rotate(T) else {
            panic!()
        };
        assert_eq!(w.ops.len(), 1, "the dropped op never half-appears");
    }

    #[test]
    fn window_checker_carries_state_across_cuts() {
        let mut checker = WindowChecker::new(CounterModel);
        // Window 1: two sequential +1s on key 9 (responses 1, 2).
        let w1 = Window {
            epoch: 0,
            floor: 100,
            ops: vec![
                Operation {
                    pid: ProcId(0),
                    obj: 9,
                    op: 1,
                    resp: Some(1),
                    invoke_ts: 1,
                    resp_ts: 2,
                },
                Operation {
                    pid: ProcId(0),
                    obj: 9,
                    op: 1,
                    resp: Some(2),
                    invoke_ts: 3,
                    resp_ts: 4,
                },
            ],
            incomplete: 0,
        };
        checker.ingest(&w1);
        assert_eq!(checker.check_available().unwrap(), 2);
        assert_eq!(checker.pooled(), 0);
        // Window 2 continues the totals — only correct with carried state.
        let w2 = Window {
            epoch: 1,
            floor: 200,
            ops: vec![Operation {
                pid: ProcId(1),
                obj: 9,
                op: 5,
                resp: Some(7),
                invoke_ts: 101,
                resp_ts: 102,
            }],
            incomplete: 0,
        };
        checker.ingest(&w2);
        let report = checker.finalize().unwrap();
        assert_eq!(report.ops_checked, 3);
        assert_eq!(report.segments, 2);
    }

    #[test]
    fn window_checker_rejects_a_wrong_continuation() {
        let mut checker = WindowChecker::new(CounterModel);
        let w1 = Window {
            epoch: 0,
            floor: 100,
            ops: vec![Operation {
                pid: ProcId(0),
                obj: 0,
                op: 4,
                resp: Some(4),
                invoke_ts: 1,
                resp_ts: 2,
            }],
            incomplete: 0,
        };
        checker.ingest(&w1);
        checker.check_available().unwrap();
        // +1 returning 1 forgets the carried total of 4: must fail.
        let w2 = Window {
            epoch: 1,
            floor: 200,
            ops: vec![Operation {
                pid: ProcId(0),
                obj: 0,
                op: 1,
                resp: Some(1),
                invoke_ts: 101,
                resp_ts: 102,
            }],
            incomplete: 0,
        };
        checker.ingest(&w2);
        let err = checker.finalize().expect_err("lost-update continuation");
        assert_eq!(err.obj, 0);
    }

    #[test]
    fn overlapping_frontier_ops_wait_for_a_quiescent_cut() {
        let mut checker = WindowChecker::new(CounterModel);
        // Two ops overlapping in real time near the frontier (resp_ts
        // beyond the floor is impossible by construction, so emulate an
        // overlap with the *pool*: second op invokes before first ends).
        let w = Window {
            epoch: 0,
            floor: 50,
            ops: vec![
                Operation {
                    pid: ProcId(0),
                    obj: 3,
                    op: 1,
                    resp: Some(1),
                    invoke_ts: 10,
                    resp_ts: 40,
                },
                Operation {
                    pid: ProcId(1),
                    obj: 3,
                    op: 1,
                    resp: Some(2),
                    invoke_ts: 20,
                    resp_ts: 45,
                },
            ],
            incomplete: 0,
        };
        checker.ingest(&w);
        // max resp (45) < floor (50): both excised together, overlap kept
        // inside one segment.
        assert_eq!(checker.check_available().unwrap(), 2);

        // A second batch whose op responded after the current floor must
        // wait (a future op could still precede it)…
        let w2 = Window {
            epoch: 1,
            floor: 60,
            ops: vec![Operation {
                pid: ProcId(0),
                obj: 3,
                op: 1,
                resp: Some(3),
                invoke_ts: 55,
                resp_ts: 70,
            }],
            incomplete: 0,
        };
        checker.ingest(&w2);
        assert_eq!(checker.check_available().unwrap(), 0);
        assert_eq!(checker.pooled(), 1);
        // …until finalize declares quiescence.
        let report = checker.finalize().unwrap();
        assert_eq!(report.ops_checked, 3);
    }

    #[test]
    fn concurrent_workers_with_live_rotation_check_clean() {
        // 4 workers hammer one counter key through the window recorder
        // while a rotator drains windows into an incremental checker.
        let n = 4;
        let rounds = 30;
        let rec = Arc::new(WindowRecorder::new(n, 256));
        let counter = Arc::new(AtomicU64::new(0));
        let mut checker = WindowChecker::new(CounterModel);
        std::thread::scope(|s| {
            for w in 0..n {
                let rec = Arc::clone(&rec);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let t = rec.invoke(ProcId(w), 0, 1);
                        let total = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        rec.response(ProcId(w), 0, t, total);
                        rec.heartbeat(ProcId(w));
                    }
                    rec.finish(ProcId(w));
                });
            }
            // Rotator: drain windows while the load runs.
            for _ in 0..8 {
                if let Rotation::Window(win) = rec.rotate(Duration::from_millis(200)) {
                    checker.ingest(&win);
                    checker.check_available().expect("real counter is clean");
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Final drains after quiescence pick up the stragglers.
        loop {
            match rec.rotate(T) {
                Rotation::Window(win) => {
                    if win.ops.is_empty() {
                        break;
                    }
                    checker.ingest(&win);
                }
                Rotation::TimedOut => panic!("finished workers cannot block"),
            }
        }
        let report = checker.finalize().expect("the shared counter linearizes");
        assert_eq!(report.ops_checked, n * rounds);
        assert_eq!(rec.dropped(), 0);
    }
}
