//! Lock-free concurrent history recording.
//!
//! A [`Recorder`] captures invoke/response events from many threads at
//! once with per-process single-writer buffers and one global atomic
//! clock, then merges everything into a [`History`] at quiescence.
//!
//! # Why this is sound
//!
//! Timestamps come from a single `AtomicU64` incremented with
//! sequentially-consistent `fetch_add`, so they totally order all events
//! and *respect real time*: if operation A's response event is recorded
//! before operation B's invoke event starts (on any threads), A's
//! timestamp is smaller. That is exactly the precedence relation
//! linearizability is defined over — the checker never sees an ordering
//! constraint that did not hold in the actual execution.
//!
//! Each process writes only its own buffer (the single-writer contract of
//! [`Recorder::invoke`]/[`Recorder::response`]), so recording needs no
//! locks: a slot write followed by a release-store of the length. The
//! merge at quiescence acquire-loads each length, which synchronizes with
//! every recorded slot.
//!
//! A thread that dies mid-operation (a chaos crash fault) leaves an
//! invoke without a response: the merged history marks the operation
//! *pending*, and the checker is free to linearize it anywhere after its
//! invoke — or never.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tfr_core::probe::OpProbe;
use tfr_registers::ProcId;

/// Default per-process event capacity (two events per operation).
pub const DEFAULT_EVENTS_PER_PROCESS: usize = 4096;

#[derive(Debug, Clone, Copy, Default)]
struct RawEvent {
    /// Global timestamp of this event.
    ts: u64,
    /// Object id the event belongs to.
    obj: u64,
    /// Invoke: the encoded operation. Response: the paired invoke's
    /// timestamp (the token).
    a: u64,
    /// Response: the encoded response (unused for invokes).
    b: u64,
    /// `false` = invoke, `true` = response.
    is_response: bool,
}

struct ProcBuf {
    len: AtomicUsize,
    slots: Box<[UnsafeCell<RawEvent>]>,
}

// SAFETY: slots are written only by the single owning process thread
// (the documented contract of `invoke`/`response`) before a release-store
// of `len`, and read only at/after an acquire-load of `len`.
unsafe impl Sync for ProcBuf {}

impl ProcBuf {
    fn new(capacity: usize) -> ProcBuf {
        ProcBuf {
            len: AtomicUsize::new(0),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(RawEvent::default()))
                .collect(),
        }
    }
}

/// A lock-free invoke/response event recorder for `n` processes.
pub struct Recorder {
    clock: AtomicU64,
    bufs: Vec<ProcBuf>,
    dropped: AtomicU64,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("processes", &self.bufs.len())
            .field("clock", &self.clock.load(Ordering::SeqCst))
            .field("dropped", &self.dropped.load(Ordering::SeqCst))
            .finish()
    }
}

impl Recorder {
    /// A recorder for `n` processes with the default per-process buffer.
    pub fn new(n: usize) -> Recorder {
        Recorder::with_capacity(n, DEFAULT_EVENTS_PER_PROCESS)
    }

    /// A recorder for `n` processes holding up to `events_per_process`
    /// events (two per operation) for each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_capacity(n: usize, events_per_process: usize) -> Recorder {
        assert!(n > 0, "at least one process is required");
        Recorder {
            clock: AtomicU64::new(1),
            bufs: (0..n).map(|_| ProcBuf::new(events_per_process)).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, pid: ProcId, ev: RawEvent) {
        let buf = &self.bufs[pid.0];
        let i = buf.len.load(Ordering::Relaxed);
        if i >= buf.slots.len() {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        // SAFETY: single writer per pid; `i` is below capacity.
        unsafe {
            *buf.slots[i].get() = ev;
        }
        buf.len.store(i + 1, Ordering::Release);
    }

    /// Records an invocation of `op` on object `obj` by `pid`; returns
    /// the token to pass to [`Recorder::response`]. Must be called on the
    /// thread acting as `pid` (single-writer contract).
    pub fn invoke(&self, pid: ProcId, obj: u64, op: u64) -> u64 {
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        self.push(
            pid,
            RawEvent {
                ts,
                obj,
                a: op,
                b: 0,
                is_response: false,
            },
        );
        ts
    }

    /// Records the response of the invocation identified by `token`.
    /// Must be called on the thread acting as `pid`.
    pub fn response(&self, pid: ProcId, obj: u64, token: u64, resp: u64) {
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        self.push(
            pid,
            RawEvent {
                ts,
                obj,
                a: token,
                b: resp,
                is_response: true,
            },
        );
    }

    /// Number of events silently dropped because a per-process buffer
    /// filled up. A non-zero value means [`Recorder::history`] is
    /// incomplete — size buffers so this stays 0.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Merges all per-process buffers into a [`History`].
    ///
    /// Call only at quiescence: every recording thread has finished (or
    /// died). Invokes without a matching response become *pending*
    /// operations.
    pub fn history(&self) -> History {
        let mut ops = Vec::new();
        for (pid, buf) in self.bufs.iter().enumerate() {
            let len = buf.len.load(Ordering::Acquire);
            // Token (invoke timestamp) → index into `ops`.
            let mut open: BTreeMap<u64, usize> = BTreeMap::new();
            for slot in &buf.slots[..len] {
                // SAFETY: indices below the acquired `len` were fully
                // written before the matching release-store.
                let ev = unsafe { *slot.get() };
                if ev.is_response {
                    if let Some(&idx) = open.get(&ev.a) {
                        let op: &mut Operation = &mut ops[idx];
                        op.resp = Some(ev.b);
                        op.resp_ts = ev.ts;
                        open.remove(&ev.a);
                    }
                } else {
                    open.insert(ev.ts, ops.len());
                    ops.push(Operation {
                        pid: ProcId(pid),
                        obj: ev.obj,
                        op: ev.a,
                        resp: None,
                        invoke_ts: ev.ts,
                        resp_ts: u64::MAX,
                    });
                }
            }
        }
        ops.sort_by_key(|o| o.invoke_ts);
        History { ops }
    }
}

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The invoking process.
    pub pid: ProcId,
    /// The object the operation was applied to.
    pub obj: u64,
    /// The encoded operation.
    pub op: u64,
    /// The encoded response, or `None` for a pending operation.
    pub resp: Option<u64>,
    /// Timestamp of the invoke event.
    pub invoke_ts: u64,
    /// Timestamp of the response event (`u64::MAX` when pending).
    pub resp_ts: u64,
}

impl Operation {
    /// Whether the operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }
}

/// A concurrent history: recorded operations sorted by invoke timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// The operations, sorted by `invoke_ts`.
    pub ops: Vec<Operation>,
}

impl History {
    /// A history built directly from operations (sorts them by invoke
    /// timestamp). Useful in tests and converters.
    pub fn from_ops(mut ops: Vec<Operation>) -> History {
        ops.sort_by_key(|o| o.invoke_ts);
        History { ops }
    }

    /// Number of operations (completed + pending).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of completed operations.
    pub fn completed(&self) -> usize {
        self.ops.iter().filter(|o| o.is_complete()).count()
    }

    /// Splits the history per object id (P-compositionality: a history is
    /// linearizable iff each per-object subhistory is).
    pub fn split_objects(&self) -> BTreeMap<u64, History> {
        let mut map: BTreeMap<u64, History> = BTreeMap::new();
        for op in &self.ops {
            map.entry(op.obj).or_default().ops.push(*op);
        }
        map
    }
}

/// An [`OpProbe`] routing a native object's operations into a shared
/// [`Recorder`] under a fixed object id.
#[derive(Debug, Clone)]
pub struct ObjectProbe {
    recorder: Arc<Recorder>,
    obj: u64,
}

impl ObjectProbe {
    /// A probe recording into `recorder` as object `obj`.
    pub fn new(recorder: Arc<Recorder>, obj: u64) -> ObjectProbe {
        ObjectProbe { recorder, obj }
    }
}

impl OpProbe for ObjectProbe {
    fn begin(&self, pid: ProcId, op: u64) -> u64 {
        self.recorder.invoke(pid, self.obj, op)
    }
    fn end(&self, pid: ProcId, token: u64, resp: u64) {
        self.recorder.response(pid, self.obj, token, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ops_pair_and_order() {
        let rec = Recorder::new(2);
        let t0 = rec.invoke(ProcId(0), 0, 10);
        rec.response(ProcId(0), 0, t0, 100);
        let t1 = rec.invoke(ProcId(1), 0, 11);
        rec.response(ProcId(1), 0, t1, 101);
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.completed(), 2);
        assert!(
            h.ops[0].resp_ts < h.ops[1].invoke_ts,
            "real-time order kept"
        );
        assert_eq!(h.ops[0].resp, Some(100));
        assert_eq!(h.ops[1].pid, ProcId(1));
    }

    #[test]
    fn unmatched_invoke_is_pending() {
        let rec = Recorder::new(1);
        let _t = rec.invoke(ProcId(0), 7, 42);
        let h = rec.history();
        assert_eq!(h.len(), 1);
        assert_eq!(h.completed(), 0);
        assert_eq!(h.ops[0].resp, None);
        assert_eq!(h.ops[0].resp_ts, u64::MAX);
        assert_eq!(h.ops[0].obj, 7);
    }

    #[test]
    fn overflow_drops_and_reports() {
        let rec = Recorder::with_capacity(1, 2);
        let t = rec.invoke(ProcId(0), 0, 1);
        rec.response(ProcId(0), 0, t, 0);
        assert_eq!(rec.dropped(), 0);
        rec.invoke(ProcId(0), 0, 2);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.history().len(), 1, "overflowed event not merged");
    }

    #[test]
    fn concurrent_recording_respects_real_time_precedence() {
        let rec = Arc::new(Recorder::new(4));
        std::thread::scope(|scope| {
            for i in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for k in 0..50 {
                        let t = rec.invoke(ProcId(i), 0, k);
                        rec.response(ProcId(i), 0, t, k);
                    }
                });
            }
        });
        let h = rec.history();
        assert_eq!(h.len(), 200);
        assert_eq!(h.completed(), 200);
        // Per process, operations are strictly ordered.
        for pid in 0..4 {
            let mine: Vec<&Operation> = h.ops.iter().filter(|o| o.pid == ProcId(pid)).collect();
            assert!(mine.windows(2).all(|w| w[0].resp_ts < w[1].invoke_ts));
        }
    }

    #[test]
    fn split_objects_partitions() {
        let rec = Recorder::new(1);
        for obj in [3u64, 1, 3] {
            let t = rec.invoke(ProcId(0), obj, 0);
            rec.response(ProcId(0), obj, t, 0);
        }
        let parts = rec.history().split_objects();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&3].len(), 2);
        assert_eq!(parts[&1].len(), 1);
    }
}
