//! Register-level linearizability: a sequential atomic-register model and
//! a recording [`RegisterSpace`] wrapper.
//!
//! The quorum stack (`tfr-net`) emulates atomic registers with ABD-style
//! majority rounds; the claim that makes every algorithm above it sound is
//! that each emulated register **is** an atomic register. This module
//! checks exactly that claim: wrap any backend in a [`RecordingSpace`],
//! run a workload (with partitions, drops, whatever), and hand the
//! captured history to [`check_history`](crate::checker::check_history)
//! with a [`RegisterModel`]. Each register index becomes its own object id,
//! so P-compositionality splits the search per register.
//!
//! # Operation encoding
//!
//! * read — `op = 0`, response = the value returned;
//! * write `v` — `op = (v << 1) | 1`, response = `0`.
//!
//! Written values must fit in 63 bits (the low bit tags writes). Every
//! value the workloads here write is tiny; the encoders assert it.

use crate::history::Recorder;
use crate::models::SeqSpec;
use std::sync::Arc;
use tfr_registers::space::RegisterSpace;
use tfr_telemetry::current_pid;

/// The encoded read operation.
pub const READ_OP: u64 = 0;

/// Encodes a write of `value` (which must fit in 63 bits).
pub fn write_op(value: u64) -> u64 {
    assert!(value < 1 << 63, "written value does not fit the encoding");
    (value << 1) | 1
}

/// Sequential specification of a single atomic `u64` register with
/// initial value `0`. State: the current value.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterModel;

impl SeqSpec for RegisterModel {
    type State = u64;
    fn initial(&self) -> u64 {
        0
    }
    fn step(&self, state: &u64, op: u64, resp: u64) -> Option<u64> {
        if op & 1 == 1 {
            // A write responds 0 and installs its value.
            (resp == 0).then_some(op >> 1)
        } else {
            // A read responds the current value and changes nothing.
            (resp == *state).then_some(*state)
        }
    }
    fn step_unknown(&self, state: &u64, op: u64) -> Vec<u64> {
        if op & 1 == 1 {
            // A pending write may or may not have taken effect.
            vec![*state, op >> 1]
        } else {
            vec![*state]
        }
    }
    fn describe(&self, op: u64, resp: Option<u64>) -> String {
        if op & 1 == 1 {
            match resp {
                Some(_) => format!("write({})", op >> 1),
                None => format!("write({}) → ?", op >> 1),
            }
        } else {
            match resp {
                Some(r) => format!("read() → {r}"),
                None => "read() → ?".to_string(),
            }
        }
    }
}

/// A [`RegisterSpace`] wrapper that records every `read`/`write` into a
/// shared [`Recorder`], using the register index as the object id.
///
/// The acting process comes from the telemetry registry
/// ([`tfr_telemetry::with_pid`] / `run_as`): calls from a thread with no
/// registered pid pass through **unrecorded** (setup writes before the
/// workload starts, for instance, are deliberately invisible to the
/// checker).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfr_linearize::checker::check_history;
/// use tfr_linearize::register::{RecordingSpace, RegisterModel};
/// use tfr_registers::space::{NativeSpace, RegisterSpace};
/// use tfr_telemetry::with_pid;
/// use tfr_registers::ProcId;
///
/// let rec = Arc::new(tfr_linearize::Recorder::new(2));
/// let space = RecordingSpace::new(NativeSpace::new(), Arc::clone(&rec));
/// with_pid(ProcId(0), || {
///     space.write(3, 7);
///     assert_eq!(space.read(3), 7);
/// });
/// let history = rec.history();
/// assert_eq!(history.len(), 2);
/// check_history(&history, &RegisterModel).expect("native atomics are atomic");
/// ```
#[derive(Debug)]
pub struct RecordingSpace<S> {
    inner: S,
    recorder: Arc<Recorder>,
}

impl<S: RegisterSpace> RecordingSpace<S> {
    /// Wraps `inner`, recording into `recorder`.
    pub fn new(inner: S, recorder: Arc<Recorder>) -> RecordingSpace<S> {
        RecordingSpace { inner, recorder }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RegisterSpace> RegisterSpace for RecordingSpace<S> {
    fn read(&self, index: u64) -> u64 {
        match current_pid() {
            Some(pid) => {
                let token = self.recorder.invoke(pid, index, READ_OP);
                let value = self.inner.read(index);
                self.recorder.response(pid, index, token, value);
                value
            }
            None => self.inner.read(index),
        }
    }

    fn write(&self, index: u64, value: u64) {
        match current_pid() {
            Some(pid) => {
                let token = self.recorder.invoke(pid, index, write_op(value));
                self.inner.write(index, value);
                self.recorder.response(pid, index, token, 0);
            }
            None => self.inner.write(index, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_history;
    use crate::history::{History, Operation};
    use tfr_registers::space::NativeSpace;
    use tfr_registers::ProcId;
    use tfr_telemetry::with_pid;

    #[test]
    fn register_model_accepts_a_simple_sequence() {
        let m = RegisterModel;
        let s = m.initial();
        let s = m.step(&s, READ_OP, 0).expect("fresh register reads 0");
        let s = m.step(&s, write_op(5), 0).expect("write ok");
        assert!(m.step(&s, READ_OP, 4).is_none(), "stale read rejected");
        assert!(m.step(&s, READ_OP, 5).is_some());
    }

    #[test]
    fn pending_write_may_or_may_not_apply() {
        let m = RegisterModel;
        assert_eq!(m.step_unknown(&3, write_op(9)), vec![3, 9]);
        assert_eq!(m.step_unknown(&3, READ_OP), vec![3]);
    }

    #[test]
    fn unregistered_threads_pass_through_unrecorded() {
        let rec = Arc::new(Recorder::new(1));
        let space = RecordingSpace::new(NativeSpace::new(), Arc::clone(&rec));
        space.write(0, 42);
        assert_eq!(space.read(0), 42);
        assert!(rec.history().is_empty(), "no pid, no events");
    }

    #[test]
    fn concurrent_native_workload_checks_clean() {
        let rec = Arc::new(Recorder::new(4));
        let space = Arc::new(RecordingSpace::new(NativeSpace::new(), Arc::clone(&rec)));
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let space = Arc::clone(&space);
                scope.spawn(move || {
                    with_pid(ProcId(i as usize), || {
                        for k in 0..16 {
                            let reg = k % 3;
                            if (i + k) % 2 == 0 {
                                space.write(reg, i * 100 + k);
                            } else {
                                space.read(reg);
                            }
                        }
                    })
                });
            }
        });
        let history = rec.history();
        assert_eq!(history.len(), 4 * 16);
        check_history(&history, &RegisterModel).expect("native atomics linearize");
    }

    #[test]
    fn the_model_rejects_a_value_from_nowhere() {
        // read() → 7 with no write(7) anywhere cannot linearize.
        let history = History::from_ops(vec![
            Operation {
                pid: ProcId(0),
                obj: 0,
                op: write_op(1),
                resp: Some(0),
                invoke_ts: 1,
                resp_ts: 2,
            },
            Operation {
                pid: ProcId(1),
                obj: 0,
                op: READ_OP,
                resp: Some(7),
                invoke_ts: 3,
                resp_ts: 4,
            },
        ]);
        check_history(&history, &RegisterModel).expect_err("7 was never written");
    }
}
