//! Native recording drivers: run each derived object on real threads
//! under an installed chaos fault schedule and capture the concurrent
//! history.
//!
//! Every driver installs a [`ChaosSession`], spawns one thread per
//! process inside [`chaos::run_as`] (so crash faults stop a thread
//! mid-operation, leaving its history entry pending), and merges the
//! recorder at quiescence. [`record_chaos`] is the one-call form used by
//! the nemesis and CI smoke: object kind + seed → checkable history.

use crate::history::{History, ObjectProbe, Recorder};
use std::sync::Arc;
use std::time::Duration;
use tfr_chaos::{random_schedule, ScheduleConfig};
use tfr_core::derived::{LeaderElection, Renaming, SetConsensus, TestAndSet};
use tfr_core::universal::{Counter, FifoQueue, Universal};
use tfr_registers::chaos::{self, ChaosSession, Fault};
use tfr_registers::ProcId;

/// The six derived objects the checker ships sequential models for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// [`LeaderElection`], checked by `ElectionModel`.
    Election,
    /// [`TestAndSet`], checked by `TasModel`.
    TestAndSet,
    /// [`Renaming`], checked by `RenamingModel`.
    Renaming,
    /// [`SetConsensus`] with `k = 2`, checked by `SetConsensusModel`.
    SetConsensus,
    /// [`Universal`]`<Counter>`, checked by `CounterModel`.
    Counter,
    /// [`Universal`]`<FifoQueue>`, checked by `QueueModel`.
    Queue,
}

impl ObjectKind {
    /// All six kinds, for sweeps.
    pub const ALL: [ObjectKind; 6] = [
        ObjectKind::Election,
        ObjectKind::TestAndSet,
        ObjectKind::Renaming,
        ObjectKind::SetConsensus,
        ObjectKind::Counter,
        ObjectKind::Queue,
    ];

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Election => "election",
            ObjectKind::TestAndSet => "test-and-set",
            ObjectKind::Renaming => "renaming",
            ObjectKind::SetConsensus => "set-consensus",
            ObjectKind::Counter => "counter",
            ObjectKind::Queue => "queue",
        }
    }
}

fn recorder_for(n: usize) -> (Arc<Recorder>, Arc<ObjectProbe>) {
    let rec = Arc::new(Recorder::new(n));
    let probe = Arc::new(ObjectProbe::new(Arc::clone(&rec), 0));
    (rec, probe)
}

/// Records a [`LeaderElection`] run: each of `n` threads elects once.
pub fn record_election(n: usize, delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(LeaderElection::new(n, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for i in 0..n {
            let obj = Arc::clone(&obj);
            scope.spawn(move || chaos::run_as(ProcId(i), move || obj.elect(ProcId(i))));
        }
    });
    rec.history()
}

/// Records a [`TestAndSet`] run: each of `n` threads calls once.
pub fn record_tas(n: usize, delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(TestAndSet::new(n, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for i in 0..n {
            let obj = Arc::clone(&obj);
            scope.spawn(move || chaos::run_as(ProcId(i), move || obj.test_and_set(ProcId(i))));
        }
    });
    rec.history()
}

/// Records a [`Renaming`] run: each of `n` threads takes a name.
pub fn record_renaming(n: usize, delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(Renaming::new(n, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for i in 0..n {
            let obj = Arc::clone(&obj);
            scope.spawn(move || chaos::run_as(ProcId(i), move || obj.rename(ProcId(i))));
        }
    });
    rec.history()
}

/// Records a `k = 2` [`SetConsensus`] run over `inputs.len()` threads.
pub fn record_set_consensus(inputs: &[bool], delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let n = inputs.len();
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(SetConsensus::new(2, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for (i, &input) in inputs.iter().enumerate() {
            let obj = Arc::clone(&obj);
            scope.spawn(move || chaos::run_as(ProcId(i), move || obj.propose(ProcId(i), input)));
        }
    });
    rec.history()
}

/// Records a [`Universal`]`<Counter>` run: thread `i` adds `i + 1`,
/// `per` times.
pub fn record_counter(n: usize, per: usize, delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(Universal::new(Counter, n, n * per + 4, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for i in 0..n {
            let obj = Arc::clone(&obj);
            scope.spawn(move || {
                chaos::run_as(ProcId(i), move || {
                    for _ in 0..per {
                        obj.invoke(ProcId(i), i as u64 + 1);
                    }
                })
            });
        }
    });
    rec.history()
}

/// Records a [`Universal`]`<FifoQueue>` run: even threads enqueue `per`
/// distinct values, odd threads dequeue `per` times (empty dequeues
/// included — they are operations too).
pub fn record_queue(n: usize, per: usize, delta: Duration, faults: &[Fault]) -> History {
    let _session = ChaosSession::install(faults);
    let (rec, probe) = recorder_for(n);
    let obj = Arc::new(Universal::new(FifoQueue, n, n * per + 4, delta).with_probe(probe));
    std::thread::scope(|scope| {
        for i in 0..n {
            let obj = Arc::clone(&obj);
            scope.spawn(move || {
                chaos::run_as(ProcId(i), move || {
                    for k in 0..per {
                        let op = if i % 2 == 0 {
                            FifoQueue::enqueue_op((i * 100 + k) as u32)
                        } else {
                            FifoQueue::DEQUEUE
                        };
                        obj.invoke(ProcId(i), op);
                    }
                })
            });
        }
    });
    rec.history()
}

/// Records a recoverable-lock run: `n` threads each complete `per`
/// passages through a [`StandardRecoverable`] lock, recording `acquire`
/// and `release` in the [`RecoverableLockModel`] encoding — and, after
/// every `CrashRecover` fault, the new incarnation's `repair` operation
/// with the recovery section's verdict (`1` = an orphaned hold was
/// released, `0` = nothing to repair) as its response.
///
/// A crashed incarnation's in-flight operation stays *pending*: the
/// checker may linearize it right before the repair that undoes it, or
/// drop it when the crash hit before the decisive write. A passage
/// interrupted by a crash is redone by the next incarnation, so every
/// completed thread contributes exactly `per` acquire/release pairs
/// plus its repairs.
///
/// Keep `CrashRecover` faults on the recoverable crash surface (the
/// workload points below plus the lock's own `recoverable.*` points);
/// a crash inside the *inner* lock is outside the recoverable
/// protocol's contract, exactly as in
/// `tfr_chaos::recovery::run_recovery_chaos`.
///
/// [`StandardRecoverable`]: tfr_core::mutex::recoverable::StandardRecoverable
/// [`RecoverableLockModel`]: crate::models::RecoverableLockModel
pub fn record_recoverable_lock(n: usize, per: u64, delta: Duration, faults: &[Fault]) -> History {
    use crate::models::{rec_lock_acquire, rec_lock_release, rec_lock_repair};
    use std::sync::atomic::{AtomicU64, Ordering};
    use tfr_asynclock::{RawLock, RecoverableRawLock};
    use tfr_core::mutex::recoverable::RecoverableMutex;
    use tfr_registers::chaos::points;

    let _session = ChaosSession::install(faults);
    let rec = Arc::new(Recorder::new(n));
    let lock = Arc::new(RecoverableMutex::standard(n, delta));
    std::thread::scope(|scope| {
        for i in 0..n {
            let rec = Arc::clone(&rec);
            let lock = Arc::clone(&lock);
            scope.spawn(move || {
                let pid = ProcId(i);
                let p = i as u64;
                // Survives incarnations: a passage cut short by a crash
                // is redone after recovery.
                let done = AtomicU64::new(0);
                let mut incarnation = 0u64;
                loop {
                    let (rec, lock, done) = (&rec, &lock, &done);
                    let out = chaos::run_as(pid, move || {
                        if incarnation > 0 {
                            let t = rec.invoke(pid, 0, rec_lock_repair(p));
                            let outcome = lock.recover(pid);
                            rec.response(pid, 0, t, outcome.repaired as u64);
                        }
                        while done.load(Ordering::SeqCst) < per {
                            chaos::point(points::WORKLOAD_NCS);
                            let t = rec.invoke(pid, 0, rec_lock_acquire(p));
                            lock.lock(pid);
                            rec.response(pid, 0, t, 0);
                            chaos::point(points::WORKLOAD_CS);
                            let t = rec.invoke(pid, 0, rec_lock_release(p));
                            lock.unlock(pid);
                            rec.response(pid, 0, t, 0);
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                    match out.recoverable_after() {
                        Some(down) => {
                            std::thread::sleep(down);
                            incarnation += 1;
                        }
                        None => break,
                    }
                }
            });
        }
    });
    rec.history()
}

/// Records one chaos-scheduled run of `kind` with `n` processes: the
/// fault schedule is [`ScheduleConfig::objects`] drawn from `seed`, so a
/// printed `(kind, n, seed)` triple replays the exact run shape.
pub fn record_chaos(kind: ObjectKind, n: usize, delta: Duration, seed: u64) -> History {
    let faults = random_schedule(seed, &ScheduleConfig::objects(n, delta));
    match kind {
        ObjectKind::Election => record_election(n, delta, &faults),
        ObjectKind::TestAndSet => record_tas(n, delta, &faults),
        ObjectKind::Renaming => record_renaming(n, delta, &faults),
        ObjectKind::SetConsensus => {
            let inputs: Vec<bool> = (0..n)
                .map(|i| (i + seed as usize).is_multiple_of(2))
                .collect();
            record_set_consensus(&inputs, delta, &faults)
        }
        ObjectKind::Counter => record_counter(n, 3, delta, &faults),
        ObjectKind::Queue => record_queue(n, 3, delta, &faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_history;
    use crate::models::{ElectionModel, TasModel};

    const D: Duration = Duration::from_micros(5);

    #[test]
    fn fault_free_election_history_is_complete_and_linearizable() {
        let h = record_election(3, D, &[]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.completed(), 3);
        check_history(&h, &ElectionModel).expect("linearizable");
    }

    #[test]
    fn crashed_thread_leaves_a_pending_op() {
        use tfr_registers::chaos::{points, FaultAction};
        let faults = [Fault {
            pid: ProcId(1),
            point: points::CONSENSUS_ROUND,
            nth: 1,
            action: FaultAction::Crash,
        }];
        let h = record_tas(2, D, &faults);
        assert_eq!(h.len(), 2, "both invokes recorded");
        assert!(h.completed() < 2, "the crashed thread never responds");
        check_history(&h, &TasModel).expect("pending op is fine");
    }

    #[test]
    fn fault_free_recoverable_lock_history_is_linearizable() {
        use crate::models::RecoverableLockModel;
        let h = record_recoverable_lock(3, 2, D, &[]);
        assert_eq!(h.completed(), 12, "3 threads × 2 passages × 2 ops");
        check_history(&h, &RecoverableLockModel).expect("linearizable");
    }

    #[test]
    fn crash_in_cs_records_a_repair_the_model_linearizes_as_a_release() {
        use crate::models::{rec_lock_repair, RecoverableLockModel};
        use tfr_registers::chaos::{points, FaultAction};
        let faults = [Fault {
            pid: ProcId(0),
            point: points::WORKLOAD_CS,
            nth: 1,
            action: FaultAction::CrashRecover(Duration::from_millis(1)),
        }];
        let h = record_recoverable_lock(2, 2, D, &faults);
        let repairs: Vec<_> = h
            .ops
            .iter()
            .filter(|o| o.op == rec_lock_repair(0))
            .collect();
        assert_eq!(repairs.len(), 1, "one incarnation restarted");
        assert_eq!(repairs[0].resp, Some(1), "the orphaned hold was released");
        check_history(&h, &RecoverableLockModel)
            .expect("a history with a recovery is linearizable");
    }

    #[test]
    fn crash_during_entry_leaves_a_pending_acquire_and_a_clean_repair() {
        use crate::models::{rec_lock_repair, RecoverableLockModel};
        use tfr_registers::chaos::{points, FaultAction};
        // The crash hits *inside* lock(), before the inner acquisition:
        // the acquire stays pending (droppable) and recovery finds
        // nothing orphaned.
        let faults = [Fault {
            pid: ProcId(1),
            point: points::RECOVERABLE_ACQUIRE,
            nth: 1,
            action: FaultAction::CrashRecover(Duration::from_millis(1)),
        }];
        let h = record_recoverable_lock(2, 2, D, &faults);
        let repairs: Vec<_> = h
            .ops
            .iter()
            .filter(|o| o.op == rec_lock_repair(1))
            .collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].resp, Some(0), "nothing was orphaned");
        assert!(
            h.ops.iter().any(|o| !o.is_complete()),
            "the interrupted acquire stays pending"
        );
        check_history(&h, &RecoverableLockModel).expect("pending acquire drops");
    }
}
