//! The live collector: a background thread that drains per-process event
//! rings *while the workload runs*, feeds the [`MonitorBank`], and keeps
//! a windowed [`LiveSnapshot`] current for dashboards.
//!
//! Attach with [`Collector::spawn`] before the workload starts, read
//! [`Collector::snapshot`] at any time (that is what the `obs_top`
//! example renders), and call [`Collector::finish`] at quiescence to
//! drain the remainder, run the finalize-only checks, and receive the
//! complete [`ObsReport`].

use crate::monitor::{MonitorBank, Violation};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tfr_telemetry::json::Json;
use tfr_telemetry::metrics::Histogram;
use tfr_telemetry::{DrainCursor, Event, EventKind, Tracer};

/// Collector tuning.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Pause between ring drains. Shorter polls detect violations and
    /// refresh the snapshot sooner at slightly higher drain overhead.
    pub poll_interval: Duration,
    /// The sliding window the live throughput track averages over
    /// (event-time, not wall-time).
    pub window: Duration,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            poll_interval: Duration::from_millis(5),
            window: Duration::from_millis(100),
        }
    }
}

/// Per-stage latency summary derived from span start/end pairs.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// The span label ("client.op", "consensus", "quorum.phase1", …).
    pub label: String,
    /// Completed spans observed.
    pub count: u64,
    /// Median duration (log2-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile duration (log2-bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Largest observed duration, nanoseconds.
    pub max_ns: u64,
}

impl StageStats {
    fn json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("count", Json::Num(self.count as f64)),
            ("p50_ns", Json::Num(self.p50_ns as f64)),
            ("p99_ns", Json::Num(self.p99_ns as f64)),
            ("max_ns", Json::Num(self.max_ns as f64)),
        ])
    }
}

/// What the collector has seen so far — refreshed every poll, cheap to
/// clone out through [`Collector::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct LiveSnapshot {
    /// Events drained so far.
    pub events: u64,
    /// Events lost to full rings (from [`Tracer::dropped`]) — a nonzero
    /// value means every "absence of evidence" caveat is in force.
    pub dropped: u64,
    /// Operations committed (sum of `BatchCommit` sizes).
    pub ops: u64,
    /// Batches committed.
    pub batches: u64,
    /// Chaos faults fired.
    pub faults: u64,
    /// Crash-recovery completions.
    pub recoveries: u64,
    /// The newest Δ estimate, if an estimator reported one.
    pub delta_ns: Option<u64>,
    /// Committed ops per second over the sliding window (event-time).
    pub window_ops_per_sec: f64,
    /// Violations flagged so far.
    pub violations: usize,
    /// The most recent violation's description.
    pub last_violation: Option<String>,
    /// Per-stage latency tracks, alphabetical by label.
    pub stages: Vec<StageStats>,
    /// Drain polls completed.
    pub polls: u64,
}

impl LiveSnapshot {
    /// The snapshot as a JSON object — the streaming counterpart of
    /// `run_summary_json` (same spirit: one self-describing object), with
    /// ring-overflow counts included.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::Num(self.events as f64)),
            ("dropped_events", Json::Num(self.dropped as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("faults", Json::Num(self.faults as f64)),
            ("recoveries", Json::Num(self.recoveries as f64)),
            (
                "delta_ns",
                self.delta_ns.map_or(Json::Null, |d| Json::Num(d as f64)),
            ),
            ("window_ops_per_sec", Json::Num(self.window_ops_per_sec)),
            ("violations", Json::Num(self.violations as f64)),
            ("polls", Json::Num(self.polls as f64)),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageStats::json).collect()),
            ),
        ])
    }
}

/// The collector thread's working state (owned by the thread, returned
/// at join).
struct CollectorState {
    bank: MonitorBank,
    /// Open spans: id → (label, start ts).
    open_spans: HashMap<u64, (&'static str, u64)>,
    /// Completed-span duration histograms per label.
    stages: Vec<(&'static str, Histogram)>,
    /// Recent `(ts_ns, size)` batch commits inside the window.
    recent: VecDeque<(u64, u64)>,
    window_ns: u64,
    events: u64,
    ops: u64,
    batches: u64,
    faults: u64,
    recoveries: u64,
    delta_ns: Option<u64>,
    polls: u64,
}

impl CollectorState {
    fn new(window: Duration) -> CollectorState {
        CollectorState {
            bank: MonitorBank::new(),
            open_spans: HashMap::new(),
            stages: Vec::new(),
            recent: VecDeque::new(),
            window_ns: window.as_nanos().max(1) as u64,
            events: 0,
            ops: 0,
            batches: 0,
            faults: 0,
            recoveries: 0,
            delta_ns: None,
            polls: 0,
        }
    }

    fn observe(&mut self, e: &Event) {
        self.events += 1;
        self.bank.observe(e);
        match e.kind {
            EventKind::SpanStart { span, label, .. } => {
                self.open_spans.insert(span, (label, e.ts_ns));
            }
            EventKind::SpanEnd { span } => {
                if let Some((label, start)) = self.open_spans.remove(&span) {
                    self.stage(label).record(e.ts_ns.saturating_sub(start));
                }
            }
            EventKind::BatchCommit { size, .. } => {
                self.ops += size;
                self.batches += 1;
                self.recent.push_back((e.ts_ns, size));
            }
            EventKind::FaultFired { .. } | EventKind::CrashRecover { .. } => {
                self.faults += 1;
            }
            EventKind::Recovered { .. } => self.recoveries += 1,
            EventKind::DeltaChanged { estimate_ns, .. } => {
                self.delta_ns = Some(estimate_ns);
            }
            _ => {}
        }
    }

    fn stage(&mut self, label: &'static str) -> &Histogram {
        if let Some(i) = self.stages.iter().position(|(l, _)| *l == label) {
            return &self.stages[i].1;
        }
        self.stages.push((label, Histogram::default()));
        &self.stages.last().expect("just pushed").1
    }

    /// Ops per second over the trailing window, by event time. Lanes
    /// drain unmerged, so the "now" edge is the max commit timestamp.
    fn window_rate(&mut self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let now = self.recent.iter().map(|&(ts, _)| ts).max().unwrap_or(0);
        let cutoff = now.saturating_sub(self.window_ns);
        while let Some(&(ts, _)) = self.recent.front() {
            if ts < cutoff {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        let ops: u64 = self.recent.iter().map(|&(_, s)| s).sum();
        ops as f64 * 1e9 / self.window_ns as f64
    }

    fn snapshot(&mut self, dropped: u64) -> LiveSnapshot {
        let window_ops_per_sec = self.window_rate();
        let mut stages: Vec<StageStats> = self
            .stages
            .iter()
            .map(|(label, h)| StageStats {
                label: (*label).to_string(),
                count: h.count(),
                p50_ns: h.quantile(0.5),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
            })
            .collect();
        stages.sort_by(|a, b| a.label.cmp(&b.label));
        LiveSnapshot {
            events: self.events,
            dropped,
            ops: self.ops,
            batches: self.batches,
            faults: self.faults,
            recoveries: self.recoveries,
            delta_ns: self.delta_ns,
            window_ops_per_sec,
            violations: self.bank.violations().len(),
            last_violation: self.bank.violations().last().map(|v| v.detail.clone()),
            stages,
            polls: self.polls,
        }
    }
}

/// The complete post-run report: totals, violations, stage latencies,
/// and whether any violation was flagged *while the run was still going*
/// (as opposed to only in the final drain).
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Events drained in total.
    pub events: u64,
    /// Events lost to full rings.
    pub dropped: u64,
    /// Operations committed.
    pub ops: u64,
    /// Batches committed.
    pub batches: u64,
    /// Chaos faults fired (including crash-recover).
    pub faults: u64,
    /// Crash-recovery completions.
    pub recoveries: u64,
    /// Every violation the monitors flagged.
    pub violations: Vec<Violation>,
    /// True when at least one violation was flagged by a live poll,
    /// before quiescence — the "caught in the act" bit.
    pub flagged_live: bool,
    /// Drain polls the collector completed.
    pub polls: u64,
    /// Per-stage latency summaries, alphabetical.
    pub stages: Vec<StageStats>,
}

impl ObsReport {
    /// True when no monitor flagged anything.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The report as a JSON object (CI gates parse this).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::Num(self.events as f64)),
            ("dropped_events", Json::Num(self.dropped as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("faults", Json::Num(self.faults as f64)),
            ("recoveries", Json::Num(self.recoveries as f64)),
            ("clean", Json::Bool(self.clean())),
            ("flagged_live", Json::Bool(self.flagged_live)),
            ("polls", Json::Num(self.polls as f64)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("monitor", Json::str(v.monitor)),
                                ("ts_ns", Json::Num(v.ts_ns as f64)),
                                ("detail", Json::str(&v.detail)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageStats::json).collect()),
            ),
        ])
    }
}

/// A live collector attached to a [`Tracer`]: spawn before the workload,
/// snapshot during, finish after.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use tfr_obs::{Collector, CollectorConfig};
/// use tfr_registers::ProcId;
/// use tfr_telemetry::{EventKind, Trace, Tracer};
///
/// let tracer = Arc::new(Tracer::new(2));
/// let collector = Collector::spawn(Arc::clone(&tracer), CollectorConfig::default());
/// let trace = Trace::attached(Arc::clone(&tracer));
/// trace.emit(ProcId(0), EventKind::BatchCommit { shard: 0, slot: 0, size: 3 });
/// let report = collector.finish();
/// assert_eq!(report.ops, 3);
/// assert!(report.clean());
/// ```
pub struct Collector {
    stop: Arc<AtomicBool>,
    flagged_live: Arc<AtomicBool>,
    snapshot: Arc<Mutex<LiveSnapshot>>,
    tracer: Arc<Tracer>,
    handle: JoinHandle<(CollectorState, DrainCursor)>,
}

impl Collector {
    /// Starts the background drain thread over `tracer`'s rings.
    pub fn spawn(tracer: Arc<Tracer>, cfg: CollectorConfig) -> Collector {
        let stop = Arc::new(AtomicBool::new(false));
        let flagged_live = Arc::new(AtomicBool::new(false));
        let snapshot = Arc::new(Mutex::new(LiveSnapshot::default()));
        let handle = {
            let tracer = Arc::clone(&tracer);
            let stop = Arc::clone(&stop);
            let flagged_live = Arc::clone(&flagged_live);
            let snapshot = Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let mut state = CollectorState::new(cfg.window);
                let mut cursor = DrainCursor::new();
                let mut buf = Vec::new();
                loop {
                    let stopping = stop.load(Ordering::Acquire);
                    buf.clear();
                    tracer.drain_new(&mut cursor, &mut buf);
                    for e in &buf {
                        state.observe(e);
                    }
                    state.polls += 1;
                    if !stopping && !state.bank.clean() {
                        flagged_live.store(true, Ordering::Release);
                    }
                    *snapshot.lock().unwrap_or_else(|e| e.into_inner()) =
                        state.snapshot(tracer.dropped());
                    if stopping {
                        return (state, cursor);
                    }
                    std::thread::sleep(cfg.poll_interval);
                }
            })
        };
        Collector {
            stop,
            flagged_live,
            snapshot,
            tracer,
            handle,
        }
    }

    /// The latest [`LiveSnapshot`] (refreshed every poll).
    pub fn snapshot(&self) -> LiveSnapshot {
        self.snapshot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// True as soon as any monitor flags a violation during a live poll.
    pub fn flagged_live(&self) -> bool {
        self.flagged_live.load(Ordering::Acquire)
    }

    /// Stops the drain thread, drains whatever remains, runs the
    /// finalize-only checks, and returns the complete report. Call at
    /// quiescence (after the workload's threads have joined).
    pub fn finish(self) -> ObsReport {
        self.stop.store(true, Ordering::Release);
        let (mut state, mut cursor) = self.handle.join().expect("the collector thread panicked");
        // The thread's final pass already drained post-stop events, but a
        // straggler lane may have published between its last load and our
        // join; one more drain is cheap and closes the window.
        let mut buf = Vec::new();
        self.tracer.drain_new(&mut cursor, &mut buf);
        for e in &buf {
            state.observe(e);
        }
        state.bank.finalize();
        let snap = state.snapshot(self.tracer.dropped());
        ObsReport {
            events: snap.events,
            dropped: snap.dropped,
            ops: snap.ops,
            batches: snap.batches,
            faults: snap.faults,
            recoveries: snap.recoveries,
            violations: state.bank.violations().to_vec(),
            flagged_live: self.flagged_live.load(Ordering::Acquire),
            polls: snap.polls,
            stages: snap.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::ProcId;
    use tfr_telemetry::Trace;

    fn fast() -> CollectorConfig {
        CollectorConfig {
            poll_interval: Duration::from_millis(1),
            window: Duration::from_millis(50),
        }
    }

    #[test]
    fn collects_totals_and_stages_from_a_live_stream() {
        let tracer = Arc::new(Tracer::new(2));
        let collector = Collector::spawn(Arc::clone(&tracer), fast());
        let trace = Trace::attached(Arc::clone(&tracer));
        for i in 0..10u64 {
            trace.emit(
                ProcId(0),
                EventKind::SpanStart {
                    span: i + 1,
                    parent: 0,
                    label: "client.op",
                },
            );
            trace.emit(
                ProcId(0),
                EventKind::BatchCommit {
                    shard: 0,
                    slot: i,
                    size: 4,
                },
            );
            trace.emit(ProcId(0), EventKind::SpanEnd { span: i + 1 });
        }
        let report = collector.finish();
        assert_eq!(report.ops, 40);
        assert_eq!(report.batches, 10);
        assert_eq!(report.events, 30);
        assert!(report.clean());
        let stage = &report.stages[0];
        assert_eq!(stage.label, "client.op");
        assert_eq!(stage.count, 10);
        assert!(stage.p99_ns >= stage.p50_ns);
    }

    #[test]
    fn snapshot_updates_while_running() {
        let tracer = Arc::new(Tracer::new(1));
        let collector = Collector::spawn(Arc::clone(&tracer), fast());
        let trace = Trace::attached(Arc::clone(&tracer));
        trace.emit(
            ProcId(0),
            EventKind::BatchCommit {
                shard: 0,
                slot: 0,
                size: 7,
            },
        );
        // Wait out a few polls for the snapshot to reflect the commit.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = collector.snapshot();
            if snap.ops == 7 {
                assert_eq!(snap.batches, 1);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "snapshot never caught up: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!collector.flagged_live());
        let report = collector.finish();
        assert!(report.polls >= 1);
        assert!(report.clean());
    }

    #[test]
    fn live_violation_sets_the_flag_before_finish() {
        let tracer = Arc::new(Tracer::new(2));
        let collector = Collector::spawn(Arc::clone(&tracer), fast());
        let trace = Trace::attached(Arc::clone(&tracer));
        // Two lanes claim the same (shard, slot): a duplicate commit.
        for pid in 0..2 {
            trace.emit(
                ProcId(pid),
                EventKind::BatchCommit {
                    shard: 0,
                    slot: 0,
                    size: 1,
                },
            );
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !collector.flagged_live() {
            assert!(
                std::time::Instant::now() < deadline,
                "the collector never flagged the duplicate live"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = collector.finish();
        assert!(report.flagged_live);
        assert!(!report.clean());
        assert_eq!(report.violations[0].monitor, "batch");
    }

    #[test]
    fn dropped_events_are_reported_end_to_end() {
        // A deliberately tiny ring: 4 slots, 10 events → 6 dropped.
        let tracer = Arc::new(Tracer::with_capacity(1, 4));
        let collector = Collector::spawn(Arc::clone(&tracer), fast());
        let trace = Trace::attached(Arc::clone(&tracer));
        for _ in 0..10 {
            trace.emit(ProcId(0), EventKind::LockReleased);
        }
        let report = collector.finish();
        assert_eq!(report.events, 4, "the ring kept what fits");
        assert_eq!(report.dropped, 6, "and reports exactly the overflow");
        let json = report.to_json();
        assert_eq!(
            json.get("dropped_events").and_then(|j| j.as_num()),
            Some(6.0)
        );
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let tracer = Arc::new(Tracer::new(1));
        let collector = Collector::spawn(Arc::clone(&tracer), fast());
        let trace = Trace::attached(Arc::clone(&tracer));
        trace.emit(
            ProcId(0),
            EventKind::BatchCommit {
                shard: 1,
                slot: 0,
                size: 2,
            },
        );
        let report = collector.finish();
        let parsed = Json::parse(&report.to_json().to_string()).expect("valid JSON");
        assert_eq!(parsed.get("ops").and_then(|j| j.as_num()), Some(2.0));
        assert_eq!(
            parsed.get("clean").and_then(|j| match j {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true)
        );
    }
}
