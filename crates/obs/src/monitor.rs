//! Online invariant monitors: streaming checkers that consume the event
//! stream *while the workload runs* and flag safety violations the moment
//! the evidence arrives.
//!
//! # Soundness contract
//!
//! Every monitor here is **sound but not complete**: a raised
//! [`Violation`] is a true violation of the stated invariant (assuming
//! honest event emission), but the *absence* of a flag proves nothing —
//! the violating events may have been dropped by a full ring, pruned from
//! a monitor's bounded memory, or simply never sampled. This is the only
//! honest contract an online checker over a lossy, multi-lane event
//! stream can offer; quiescent-state proofs stay with the audit and the
//! linearizability checkers.
//!
//! # Arrival-order robustness
//!
//! Monitors receive events lane by lane (per-process order preserved, no
//! cross-lane merge — the contract of
//! [`tfr_telemetry::Tracer::drain_new`]). Each monitor therefore keys its
//! state per process where per-lane order suffices
//! ([`QuorumMonitor`], [`RecoveryMonitor`]), or reasons only about
//! *completed* intervals with explicit timestamps where cross-lane
//! comparison is needed ([`MutexMonitor`]), or uses order-free set logic
//! ([`BatchMonitor`]). None of them can be fooled into a false positive
//! by lanes arriving in any interleaving.

use std::collections::HashMap;
use tfr_telemetry::json::Json;
use tfr_telemetry::{Event, EventKind};

/// Completed critical-section intervals kept for cross-lane overlap
/// checks before old ones are pruned. Bounds memory; pruning can only
/// cost detections, never invent them.
const MUTEX_INTERVALS_KEPT: usize = 4096;

/// A monitor's verdict that an invariant was violated, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which monitor raised it (`"mutex"`, `"batch"`, `"quorum"`,
    /// `"recovery"`, `"log"`).
    pub monitor: &'static str,
    /// Timestamp of the event that completed the evidence.
    pub ts_ns: u64,
    /// Human-readable description of the violated invariant instance.
    pub detail: String,
}

impl Violation {
    fn json(&self) -> Json {
        Json::obj([
            ("monitor", Json::str(self.monitor)),
            ("ts_ns", Json::Num(self.ts_ns as f64)),
            ("detail", Json::str(&self.detail)),
        ])
    }
}

/// Streams lock events and flags **mutual-exclusion intrusions**: two
/// completed critical-section intervals on different processes that
/// strictly overlap in time.
///
/// An interval opens at `LockAcquired` and closes at the same lane's next
/// `LockReleased`. Only *completed* intervals are compared, so a lane
/// drained late can never produce a false positive — at worst a real
/// overlap goes unflagged until its release event arrives.
#[derive(Debug, Default)]
pub struct MutexMonitor {
    /// Open critical section per process: acquisition timestamp.
    open: HashMap<u32, u64>,
    /// Completed `(pid, start, end)` intervals, oldest first.
    done: Vec<(u32, u64, u64)>,
}

impl MutexMonitor {
    fn observe(&mut self, e: &Event, out: &mut Vec<Violation>) {
        match e.kind {
            EventKind::LockAcquired { .. } => {
                self.open.insert(e.pid.0 as u32, e.ts_ns);
            }
            EventKind::LockReleased => {
                let Some(start) = self.open.remove(&(e.pid.0 as u32)) else {
                    return;
                };
                let (pid, end) = (e.pid.0 as u32, e.ts_ns);
                for &(q, qs, qe) in &self.done {
                    if q != pid && start < qe && qs < end {
                        out.push(Violation {
                            monitor: "mutex",
                            ts_ns: end,
                            detail: format!(
                                "critical sections overlap: p{pid} [{start}, {end}] ∩ \
                                 p{q} [{qs}, {qe}]"
                            ),
                        });
                    }
                }
                if self.done.len() == MUTEX_INTERVALS_KEPT {
                    self.done.remove(0);
                }
                self.done.push((pid, start, end));
            }
            _ => {}
        }
    }
}

/// Streams `BatchCommit` events and flags **duplicate slots**: two
/// committed batches claiming the same `(shard, slot)`. On a correct
/// service exactly one worker (the proposer) reports each decided slot,
/// so a duplicate means two combiners both believe they committed it.
///
/// At [`MonitorBank::finalize`] it additionally flags **gaps**: a shard
/// whose reported slots do not form the contiguous prefix `0..max+1`.
/// The gap check must wait for quiescence (mid-run, a slot's proposer may
/// simply not have drained yet), which is why it is not an online flag.
#[derive(Debug, Default)]
pub struct BatchMonitor {
    /// Per shard: the set of slots reported committed.
    slots: HashMap<u32, HashMap<u64, u32>>,
}

impl BatchMonitor {
    fn observe(&mut self, e: &Event, out: &mut Vec<Violation>) {
        if let EventKind::BatchCommit { shard, slot, .. } = e.kind {
            let pid = e.pid.0 as u32;
            match self.slots.entry(shard).or_default().insert(slot, pid) {
                Some(prev) if prev != pid => out.push(Violation {
                    monitor: "batch",
                    ts_ns: e.ts_ns,
                    detail: format!(
                        "shard {shard} slot {slot} committed twice (p{prev} and p{pid})"
                    ),
                }),
                Some(_) => out.push(Violation {
                    monitor: "batch",
                    ts_ns: e.ts_ns,
                    detail: format!("shard {shard} slot {slot} committed twice by p{pid}"),
                }),
                None => {}
            }
        }
    }

    fn finalize(&self, out: &mut Vec<Violation>) {
        for (&shard, slots) in &self.slots {
            let max = slots.keys().copied().max().unwrap_or(0);
            let missing: Vec<u64> = (0..=max).filter(|s| !slots.contains_key(s)).collect();
            if !missing.is_empty() {
                out.push(Violation {
                    monitor: "batch",
                    ts_ns: 0,
                    detail: format!(
                        "shard {shard} log has gaps: slots {missing:?} of 0..={max} never \
                         reported committed"
                    ),
                });
            }
        }
    }
}

/// Streams `QuorumVersion` events and flags **version regressions**: a
/// client lane whose completed quorum operation on a register returned a
/// version `(ts, wid)` lexicographically *below* one the same lane saw
/// earlier on the same register — the new/old inversion ABD's write-back
/// phase exists to prevent. Per-lane order is exactly what
/// `drain_new` guarantees, so this check needs no cross-lane reasoning.
#[derive(Debug, Default)]
pub struct QuorumMonitor {
    /// Per `(pid, reg)`: the highest `(ts, wid)` observed.
    floor: HashMap<(u32, u64), (u64, u64)>,
}

impl QuorumMonitor {
    fn observe(&mut self, e: &Event, out: &mut Vec<Violation>) {
        if let EventKind::QuorumVersion { reg, ts, wid } = e.kind {
            let key = (e.pid.0 as u32, reg);
            let seen = self.floor.entry(key).or_insert((ts, wid));
            if (ts, wid) < *seen {
                out.push(Violation {
                    monitor: "quorum",
                    ts_ns: e.ts_ns,
                    detail: format!(
                        "p{} register {reg} regressed: saw v{ts}.{wid} after v{}.{}",
                        key.0, seen.0, seen.1
                    ),
                });
            } else {
                *seen = (ts, wid);
            }
        }
    }
}

/// Streams `Recovered` events and flags **non-monotone incarnations**: a
/// process whose recovery section installed an incarnation number not
/// strictly above its previous one — which would mean two incarnations
/// could be alive under the same identity, the failure mode the
/// recoverable-mutex incarnation counter exists to exclude.
#[derive(Debug, Default)]
pub struct RecoveryMonitor {
    /// Per process: the last installed incarnation.
    last: HashMap<u32, u64>,
}

impl RecoveryMonitor {
    fn observe(&mut self, e: &Event, out: &mut Vec<Violation>) {
        if let EventKind::Recovered { incarnation, .. } = e.kind {
            let pid = e.pid.0 as u32;
            if let Some(&prev) = self.last.get(&pid) {
                if incarnation <= prev {
                    out.push(Violation {
                        monitor: "recovery",
                        ts_ns: e.ts_ns,
                        detail: format!(
                            "p{pid} incarnation went {prev} → {incarnation} (not increasing)"
                        ),
                    });
                    return;
                }
            }
            self.last.insert(pid, incarnation);
        }
    }
}

/// Streams replicated-log events and flags **applied-prefix
/// divergence** — the replicated log's core safety property, checked
/// online in three sound, per-lane/order-free ways:
///
/// * **height sequence** — an applier lane must apply heights
///   `0, 1, 2, …` with no skip or swap ([`EventKind::LogApply`] events
///   on one lane arrive in per-lane order, which `drain_new`
///   guarantees). A `CrashRecover` on the lane resets the expectation:
///   the next incarnation resynchronises from the registers and resumes
///   at its recovered frontier, so its first apply may land at any
///   height (and is strict again from there).
/// * **digest agreement** — two lanes applying the same height must
///   report the same chained prefix digest. The digest is
///   order-sensitive, so this is cross-lane prefix equality in an
///   order-free, set-logic form: no lane-arrival interleaving can fake
///   a mismatch.
/// * **winner uniqueness** — [`EventKind::HeightDecide`] is emitted
///   exactly once, by the winning proposer; a height announced twice
///   means two proposers both believe their batch committed there.
#[derive(Debug, Default)]
pub struct LogPrefixMonitor {
    /// Per lane: the next in-order height (`None` = just recovered,
    /// accept any height once).
    expected: HashMap<u32, Option<u64>>,
    /// Per height: the first reported `(digest, lane)`.
    digests: HashMap<u64, (u64, u32)>,
    /// Per height: the winning proposer that announced the decision.
    winners: HashMap<u64, u32>,
}

impl LogPrefixMonitor {
    fn observe(&mut self, e: &Event, out: &mut Vec<Violation>) {
        match e.kind {
            EventKind::LogApply { height, digest } => {
                let pid = e.pid.0 as u32;
                let slot = self.expected.entry(pid).or_insert(Some(0));
                if let Some(exp) = *slot {
                    if height != exp {
                        out.push(Violation {
                            monitor: "log",
                            ts_ns: e.ts_ns,
                            detail: format!(
                                "p{pid} applied height {height} but its next in-order \
                                 height is {exp}"
                            ),
                        });
                    }
                }
                *slot = Some(height + 1);
                match self.digests.entry(height) {
                    std::collections::hash_map::Entry::Occupied(seen) => {
                        let &(first_digest, first_pid) = seen.get();
                        if first_digest != digest {
                            out.push(Violation {
                                monitor: "log",
                                ts_ns: e.ts_ns,
                                detail: format!(
                                    "applied-prefix divergence at height {height}: \
                                     p{pid} digest {digest:#x} ≠ p{first_pid} digest \
                                     {first_digest:#x}"
                                ),
                            });
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert((digest, pid));
                    }
                }
            }
            EventKind::HeightDecide { height, winner, .. } => {
                if let Some(&prev) = self.winners.get(&height) {
                    out.push(Violation {
                        monitor: "log",
                        ts_ns: e.ts_ns,
                        detail: format!(
                            "height {height} decided twice (winner p{prev}, then p{winner})"
                        ),
                    });
                } else {
                    self.winners.insert(height, winner as u32);
                }
            }
            EventKind::CrashRecover { .. } => {
                // The lane's next incarnation replays from the registers
                // and resumes wherever its recovered frontier is.
                self.expected.insert(e.pid.0 as u32, None);
            }
            _ => {}
        }
    }
}

/// All five monitors behind one `observe` call, accumulating violations.
///
/// Feed it every drained event (irrelevant kinds are ignored), call
/// [`MonitorBank::finalize`] once at quiescence for the checks that need
/// the complete stream, then read [`MonitorBank::violations`].
///
/// # Example
///
/// ```
/// use tfr_obs::MonitorBank;
/// use tfr_registers::ProcId;
/// use tfr_telemetry::{Event, EventKind};
///
/// let mut bank = MonitorBank::new();
/// // Two workers both claim (shard 0, slot 3): a combining bug.
/// for pid in [0, 1] {
///     bank.observe(&Event {
///         ts_ns: 10 + pid as u64,
///         pid: ProcId(pid),
///         kind: EventKind::BatchCommit { shard: 0, slot: 3, size: 4 },
///     });
/// }
/// assert!(!bank.clean());
/// assert_eq!(bank.violations()[0].monitor, "batch");
/// ```
#[derive(Debug, Default)]
pub struct MonitorBank {
    mutex: MutexMonitor,
    batch: BatchMonitor,
    quorum: QuorumMonitor,
    recovery: RecoveryMonitor,
    log: LogPrefixMonitor,
    violations: Vec<Violation>,
    finalized: bool,
}

impl MonitorBank {
    /// A bank with every monitor armed and no violations yet.
    pub fn new() -> MonitorBank {
        MonitorBank::default()
    }

    /// Feeds one event to every monitor.
    pub fn observe(&mut self, e: &Event) {
        self.mutex.observe(e, &mut self.violations);
        self.batch.observe(e, &mut self.violations);
        self.quorum.observe(e, &mut self.violations);
        self.recovery.observe(e, &mut self.violations);
        self.log.observe(e, &mut self.violations);
    }

    /// Runs the quiescence-only checks (currently: batch-log gaps).
    /// Idempotent; call after the last event has been observed.
    pub fn finalize(&mut self) {
        if !self.finalized {
            self.finalized = true;
            self.batch.finalize(&mut self.violations);
        }
    }

    /// Every violation flagged so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no monitor has flagged anything.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations as a JSON array (for run summaries and CI gates).
    pub fn violations_json(&self) -> Json {
        Json::Arr(self.violations.iter().map(Violation::json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::ProcId;

    fn ev(ts_ns: u64, pid: usize, kind: EventKind) -> Event {
        Event {
            ts_ns,
            pid: ProcId(pid),
            kind,
        }
    }

    #[test]
    fn mutex_overlap_is_flagged_and_disjoint_is_clean() {
        let mut bank = MonitorBank::new();
        // p0 holds [10, 20]; p1 holds [30, 40]: disjoint, clean.
        bank.observe(&ev(10, 0, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(20, 0, EventKind::LockReleased));
        bank.observe(&ev(30, 1, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(40, 1, EventKind::LockReleased));
        assert!(bank.clean());
        // p2 holds [35, 50]: overlaps p1's completed [30, 40].
        bank.observe(&ev(35, 2, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(50, 2, EventKind::LockReleased));
        assert_eq!(bank.violations().len(), 1);
        assert_eq!(bank.violations()[0].monitor, "mutex");
    }

    #[test]
    fn mutex_is_robust_to_lane_arrival_order() {
        // The same overlap, but p2's lane drains first: still exactly one
        // flag (raised when the second interval completes), no false
        // positive from the order change.
        let mut bank = MonitorBank::new();
        bank.observe(&ev(35, 2, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(50, 2, EventKind::LockReleased));
        bank.observe(&ev(30, 1, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(40, 1, EventKind::LockReleased));
        assert_eq!(bank.violations().len(), 1);
    }

    #[test]
    fn touching_intervals_do_not_count_as_overlap() {
        // p0 releases at the very instant p1 acquires: a hand-off, not an
        // intrusion (strict inequality in the check).
        let mut bank = MonitorBank::new();
        bank.observe(&ev(10, 0, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(20, 0, EventKind::LockReleased));
        bank.observe(&ev(20, 1, EventKind::LockAcquired { wait_ns: 1 }));
        bank.observe(&ev(30, 1, EventKind::LockReleased));
        assert!(bank.clean());
    }

    #[test]
    fn duplicate_slot_is_flagged_online_gaps_only_at_finalize() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::BatchCommit {
                shard: 0,
                slot: 0,
                size: 2,
            },
        ));
        bank.observe(&ev(
            2,
            1,
            EventKind::BatchCommit {
                shard: 0,
                slot: 2,
                size: 2,
            },
        ));
        assert!(bank.clean(), "a missing slot 1 is not yet a violation");
        bank.observe(&ev(
            3,
            1,
            EventKind::BatchCommit {
                shard: 0,
                slot: 0,
                size: 1,
            },
        ));
        assert_eq!(bank.violations().len(), 1, "duplicate flags immediately");
        assert!(bank.violations()[0].detail.contains("slot 0"));
        bank.finalize();
        assert_eq!(bank.violations().len(), 2, "the gap flags at finalize");
        assert!(bank.violations()[1].detail.contains("gaps"));
    }

    #[test]
    fn contiguous_per_shard_logs_finalize_clean() {
        let mut bank = MonitorBank::new();
        for shard in 0..3u32 {
            for slot in 0..5u64 {
                let pid = (slot % 2) as usize;
                bank.observe(&ev(
                    slot,
                    pid,
                    EventKind::BatchCommit {
                        shard,
                        slot,
                        size: 1,
                    },
                ));
            }
        }
        bank.finalize();
        assert!(bank.clean());
    }

    #[test]
    fn quorum_regression_on_one_lane_is_flagged() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::QuorumVersion {
                reg: 7,
                ts: 3,
                wid: 1,
            },
        ));
        bank.observe(&ev(
            2,
            0,
            EventKind::QuorumVersion {
                reg: 7,
                ts: 3,
                wid: 2,
            },
        ));
        // A different lane at a lower version is fine (lanes race).
        bank.observe(&ev(
            3,
            1,
            EventKind::QuorumVersion {
                reg: 7,
                ts: 1,
                wid: 1,
            },
        ));
        assert!(bank.clean());
        // The same lane regressing is the ABD inversion.
        bank.observe(&ev(
            4,
            0,
            EventKind::QuorumVersion {
                reg: 7,
                ts: 2,
                wid: 9,
            },
        ));
        assert_eq!(bank.violations().len(), 1);
        assert_eq!(bank.violations()[0].monitor, "quorum");
    }

    #[test]
    fn recovery_incarnations_must_strictly_increase() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::Recovered {
                incarnation: 1,
                repaired: false,
            },
        ));
        bank.observe(&ev(
            2,
            0,
            EventKind::Recovered {
                incarnation: 2,
                repaired: true,
            },
        ));
        bank.observe(&ev(
            3,
            1,
            EventKind::Recovered {
                incarnation: 1,
                repaired: false,
            },
        ));
        assert!(bank.clean(), "per-process counters are independent");
        bank.observe(&ev(
            4,
            0,
            EventKind::Recovered {
                incarnation: 2,
                repaired: false,
            },
        ));
        assert_eq!(bank.violations().len(), 1);
        assert_eq!(bank.violations()[0].monitor, "recovery");
    }

    #[test]
    fn log_out_of_order_apply_is_flagged() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::LogApply {
                height: 0,
                digest: 0xA,
            },
        ));
        bank.observe(&ev(
            2,
            0,
            EventKind::LogApply {
                height: 1,
                digest: 0xB,
            },
        ));
        assert!(bank.clean(), "in-order applies are fine");
        // Lane 1 applies height 1 before height 0: the pipelining bug.
        bank.observe(&ev(
            3,
            1,
            EventKind::LogApply {
                height: 1,
                digest: 0xC,
            },
        ));
        // Both the sequence skip and the digest mismatch at height 1 flag.
        assert_eq!(bank.violations().len(), 2);
        assert!(bank.violations().iter().all(|v| v.monitor == "log"));
        assert!(bank.violations()[1].detail.contains("divergence"));
    }

    #[test]
    fn log_digest_divergence_is_flagged_even_in_order() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::LogApply {
                height: 0,
                digest: 0xA,
            },
        ));
        bank.observe(&ev(
            2,
            1,
            EventKind::LogApply {
                height: 0,
                digest: 0xA,
            },
        ));
        assert!(bank.clean(), "identical digests agree");
        bank.observe(&ev(
            3,
            2,
            EventKind::LogApply {
                height: 0,
                digest: 0xF,
            },
        ));
        assert_eq!(bank.violations().len(), 1);
        assert!(bank.violations()[0]
            .detail
            .contains("divergence at height 0"));
    }

    #[test]
    fn log_lane_recovery_resets_the_height_expectation() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::LogApply {
                height: 0,
                digest: 0xA,
            },
        ));
        bank.observe(&ev(
            2,
            0,
            EventKind::LogApply {
                height: 1,
                digest: 0xB,
            },
        ));
        // p0 crashes and its next incarnation resumes past heights other
        // proposers decided meanwhile (it replayed them from registers).
        bank.observe(&ev(
            3,
            0,
            EventKind::CrashRecover {
                point: "log.propose-batch",
                down_ns: 500,
            },
        ));
        bank.observe(&ev(
            9,
            0,
            EventKind::LogApply {
                height: 5,
                digest: 0xD,
            },
        ));
        bank.observe(&ev(
            10,
            0,
            EventKind::LogApply {
                height: 6,
                digest: 0xE,
            },
        ));
        assert!(bank.clean(), "a recovered lane may resume at any height");
        // …but it is strict again after the resume point.
        bank.observe(&ev(
            11,
            0,
            EventKind::LogApply {
                height: 9,
                digest: 0xF,
            },
        ));
        assert_eq!(bank.violations().len(), 1);
    }

    #[test]
    fn log_double_height_decide_is_flagged() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::HeightDecide {
                height: 3,
                winner: 0,
                size: 2,
            },
        ));
        assert!(bank.clean());
        bank.observe(&ev(
            2,
            1,
            EventKind::HeightDecide {
                height: 3,
                winner: 1,
                size: 1,
            },
        ));
        assert_eq!(bank.violations().len(), 1);
        assert!(bank.violations()[0].detail.contains("decided twice"));
    }

    #[test]
    fn violations_serialize() {
        let mut bank = MonitorBank::new();
        bank.observe(&ev(
            1,
            0,
            EventKind::BatchCommit {
                shard: 1,
                slot: 0,
                size: 1,
            },
        ));
        bank.observe(&ev(
            2,
            1,
            EventKind::BatchCommit {
                shard: 1,
                slot: 0,
                size: 1,
            },
        ));
        let json = bank.violations_json().to_string();
        let parsed = Json::parse(&json).expect("violations serialize to valid JSON");
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("monitor").unwrap().as_str().unwrap(), "batch");
    }
}
