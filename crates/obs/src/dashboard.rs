//! A `tfr-top`-style text dashboard: renders a [`LiveSnapshot`] as one
//! fixed-width frame suitable for printing in a loop (the `obs_top`
//! example clears the screen between frames).

use crate::collector::LiveSnapshot;
use std::fmt::Write;

/// Formats a nanosecond duration with a human unit (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Renders one dashboard frame.
///
/// # Example
///
/// ```
/// use tfr_obs::{dashboard, LiveSnapshot};
///
/// let frame = dashboard::render(&LiveSnapshot::default());
/// assert!(frame.contains("monitors: CLEAN"));
/// ```
pub fn render(snap: &LiveSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tfr-top — events {} (dropped {})   polls {}",
        snap.events, snap.dropped, snap.polls
    );
    let _ = writeln!(
        out,
        "ops {}   batches {}   window {:.0} ops/s",
        snap.ops, snap.batches, snap.window_ops_per_sec
    );
    let _ = writeln!(
        out,
        "faults {}   recoveries {}   Δ {}",
        snap.faults,
        snap.recoveries,
        snap.delta_ns.map_or("—".to_string(), fmt_ns)
    );
    match (snap.violations, &snap.last_violation) {
        (0, _) => {
            let _ = writeln!(out, "monitors: CLEAN");
        }
        (n, Some(last)) => {
            let _ = writeln!(out, "monitors: {n} VIOLATION(S) — last: {last}");
        }
        (n, None) => {
            let _ = writeln!(out, "monitors: {n} VIOLATION(S)");
        }
    }
    if !snap.stages.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9} {:>9} {:>9}",
            "stage", "count", "p50", "p99", "max"
        );
        for s in &snap.stages {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>9} {:>9} {:>9}",
                s.label,
                s.count,
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns),
                fmt_ns(s.max_ns)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::StageStats;

    #[test]
    fn renders_violations_and_stage_rows() {
        let snap = LiveSnapshot {
            events: 100,
            dropped: 2,
            ops: 50,
            batches: 10,
            violations: 1,
            last_violation: Some("shard 0 slot 3 committed twice".to_string()),
            delta_ns: Some(20_000),
            stages: vec![StageStats {
                label: "consensus".to_string(),
                count: 10,
                p50_ns: 4096,
                p99_ns: 65_536,
                max_ns: 70_000,
            }],
            ..LiveSnapshot::default()
        };
        let frame = render(&snap);
        assert!(frame.contains("dropped 2"));
        assert!(frame.contains("1 VIOLATION(S)"));
        assert!(frame.contains("committed twice"));
        assert!(frame.contains("consensus"));
        assert!(frame.contains("20.0µs"), "{frame}");
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(20_000), "20.0µs");
        assert_eq!(fmt_ns(15_000_000), "15.0ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
