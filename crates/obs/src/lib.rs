//! Live observability for the timing-failure workspace: background
//! collectors that drain event rings *during* execution, windowed
//! throughput and per-stage latency tracks, a text dashboard, and sound
//! **online invariant monitors** that flag safety violations while the
//! chaos nemeses are still running.
//!
//! # The pipeline
//!
//! 1. Algorithms and backends emit [`tfr_telemetry`] events into
//!    per-process rings; causal [`tfr_telemetry::Span`]s connect a client
//!    operation to the batches, consensus decisions, and quorum phases it
//!    caused.
//! 2. A [`Collector`] thread polls [`tfr_telemetry::Tracer::drain_new`]
//!    — lane by lane, per-lane order preserved — and feeds every event to
//!    the [`MonitorBank`] and the stage/throughput tracks.
//! 3. [`Collector::snapshot`] serves live dashboards ([`dashboard`]);
//!    [`Collector::finish`] produces the final [`ObsReport`] with
//!    violations, stage percentiles, and ring-overflow counts.
//!
//! # Soundness
//!
//! A monitor flag is a **true violation** of the stated invariant; the
//! absence of a flag proves **nothing** (rings drop under overflow,
//! monitors bound their memory, sampling is partial). See [`monitor`]
//! for the per-monitor arguments.

pub mod collector;
pub mod dashboard;
pub mod monitor;

pub use collector::{Collector, CollectorConfig, LiveSnapshot, ObsReport, StageStats};
pub use monitor::{
    BatchMonitor, LogPrefixMonitor, MonitorBank, MutexMonitor, QuorumMonitor, RecoveryMonitor,
    Violation,
};
