//! Static register-usage accounting (experiment E9).
//!
//! Theorem 3.1 of the paper (following Burns–Lynch and Lynch–Shavit): any
//! mutual exclusion algorithm for `n` processes that is resilient to timing
//! failures must use at least `n` shared registers, *regardless* of its
//! time complexity ψ. Every algorithm in this workspace reports its register
//! usage through [`RegisterUsage`]; the experiment harness tabulates them
//! against the lower bound.

use core::fmt;

/// How many registers an algorithm instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterCount {
    /// A finite count (for the given number of processes).
    Finite(u64),
    /// The algorithm uses unbounded register arrays (Algorithm 1's
    /// `x[1..∞, 0..1]` / `y[1..∞]`; registers are allocated per round).
    Unbounded,
}

impl fmt::Display for RegisterCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterCount::Finite(c) => write!(f, "{c}"),
            RegisterCount::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A register-usage report for one algorithm at one process count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterUsage {
    /// Human-readable algorithm name.
    pub algorithm: &'static str,
    /// Number of processes the instance is configured for.
    pub n: usize,
    /// Registers used.
    pub count: RegisterCount,
}

impl RegisterUsage {
    /// Creates a finite-count report.
    pub fn finite(algorithm: &'static str, n: usize, count: u64) -> RegisterUsage {
        RegisterUsage {
            algorithm,
            n,
            count: RegisterCount::Finite(count),
        }
    }

    /// Creates an unbounded report.
    pub fn unbounded(algorithm: &'static str, n: usize) -> RegisterUsage {
        RegisterUsage {
            algorithm,
            n,
            count: RegisterCount::Unbounded,
        }
    }

    /// Whether the usage satisfies the Theorem 3.1 lower bound of `n`
    /// registers (trivially true for unbounded usage).
    pub fn satisfies_lower_bound(&self) -> bool {
        match self.count {
            RegisterCount::Finite(c) => c >= self.n as u64,
            RegisterCount::Unbounded => true,
        }
    }
}

impl fmt::Display for RegisterUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n={}): {} registers",
            self.algorithm, self.n, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_lower_bound() {
        assert!(RegisterUsage::finite("x", 4, 4).satisfies_lower_bound());
        assert!(RegisterUsage::finite("x", 4, 9).satisfies_lower_bound());
        assert!(!RegisterUsage::finite("x", 4, 3).satisfies_lower_bound());
    }

    #[test]
    fn unbounded_always_satisfies() {
        assert!(RegisterUsage::unbounded("consensus", 1000).satisfies_lower_bound());
    }

    #[test]
    fn display() {
        assert_eq!(
            RegisterUsage::finite("bakery", 3, 6).to_string(),
            "bakery (n=3): 6 registers"
        );
        assert_eq!(
            RegisterUsage::unbounded("alg1", 2).to_string(),
            "alg1 (n=2): unbounded registers"
        );
    }
}
