//! Register durability for the crash-*recovery* failure model.
//!
//! The paper's failure modes are timing failures and crash-*stop*: a
//! crashed process never runs again, so the question of which registers
//! survive the crash never arises. Recoverable mutual exclusion
//! (Golab–Ramaraju; Dhoked & Mittal, see PAPERS.md) asks the harsher
//! question: a process crashes, loses its **volatile** state, and later
//! restarts as a new *incarnation* that must repair whatever its previous
//! incarnation left behind. Two primitives make that model precise:
//!
//! * [`DurableSpace`] — a [`RegisterSpace`] wrapper that partitions the
//!   register address space into *persistent* registers (survive any
//!   crash — the default) and per-process *volatile* segments whose
//!   contents reset to zero when their owner crashes. It also counts
//!   accesses, which is how the bench layer measures super-passage cost.
//! * [`Incarnations`] — per-process incarnation (epoch) counters stored
//!   in persistent registers, with [`stamp`]/[`split`] helpers that pack
//!   an epoch into the high bits of a register value so a reader can
//!   detect a **stale write**: a value written by a pre-crash incarnation
//!   of its owner.
//!
//! Nothing here injects crashes — the chaos layer does that. `crash(pid)`
//! is the *memory side* of a crash: the recovery nemesis calls it when it
//! restarts a process, modelling the new incarnation starting from zeroed
//! volatile memory.
//!
//! # Example
//!
//! ```
//! use tfr_registers::durable::DurableSpace;
//! use tfr_registers::space::{NativeSpace, RegisterSpace};
//! use tfr_registers::ProcId;
//!
//! // Registers 100..110 are p0's volatile scratchpad; everything else
//! // is persistent.
//! let space = DurableSpace::new(NativeSpace::new()).volatile(ProcId(0), 100..110);
//! space.write(0, 7); // persistent
//! space.write(100, 9); // volatile, owned by p0
//! space.crash(ProcId(0));
//! assert_eq!(space.read(0), 7, "persistent registers survive");
//! assert_eq!(space.read(100), 0, "volatile registers reset on crash");
//! ```

use crate::space::RegisterSpace;
use crate::ProcId;
use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One volatile segment: a half-open register range owned by a process,
/// wiped (reset to zero) when that process crashes.
#[derive(Debug)]
struct VolatileSeg {
    owner: ProcId,
    range: Range<u64>,
    /// Indices written since the owner's last crash. Wiping only dirty
    /// cells keeps `crash` O(writes) instead of O(range).
    dirty: Mutex<HashSet<u64>>,
}

/// A [`RegisterSpace`] with a durability partition and access counters.
///
/// Every register is **persistent** unless claimed by a
/// [`DurableSpace::volatile`] segment. A volatile segment belongs to one
/// process; [`DurableSpace::crash`] resets that process's volatile
/// registers to zero, modelling the loss of volatile memory when the
/// process restarts. Persistent registers — the only ones a recoverable
/// algorithm may rely on across a crash — are untouched.
///
/// Reads and writes through the wrapper are counted ([`DurableSpace::reads`],
/// [`DurableSpace::writes`]), which is how experiment E21 measures the
/// shared-memory cost of a passage with and without recent failures.
#[derive(Debug)]
pub struct DurableSpace<S> {
    inner: S,
    segs: Vec<VolatileSeg>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl<S: RegisterSpace> DurableSpace<S> {
    /// Wraps `inner` with every register persistent and no accesses
    /// counted yet.
    pub fn new(inner: S) -> DurableSpace<S> {
        DurableSpace {
            inner,
            segs: Vec::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Declares the half-open range `indices` volatile, owned by `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps a previously declared volatile
    /// segment — a register cannot be lost with two different processes.
    pub fn volatile(mut self, owner: ProcId, indices: Range<u64>) -> DurableSpace<S> {
        for seg in &self.segs {
            let disjoint = indices.end <= seg.range.start || seg.range.end <= indices.start;
            assert!(
                disjoint,
                "volatile segment {indices:?} overlaps existing segment {:?} (owner {})",
                seg.range, seg.owner
            );
        }
        self.segs.push(VolatileSeg {
            owner,
            range: indices,
            dirty: Mutex::new(HashSet::new()),
        });
        self
    }

    /// The memory side of a crash of `pid`: resets every volatile
    /// register owned by `pid` to zero. Returns how many registers were
    /// wiped.
    ///
    /// Persistent registers — and other processes' volatile segments —
    /// are untouched, exactly the recoverable-ME contract: a restarting
    /// incarnation sees zeroed volatile memory and intact persistent
    /// memory.
    pub fn crash(&self, pid: ProcId) -> usize {
        let mut wiped = 0;
        for seg in self.segs.iter().filter(|s| s.owner == pid) {
            let mut dirty = seg.dirty.lock().unwrap();
            for &index in dirty.iter() {
                self.inner.write(index, 0);
                wiped += 1;
            }
            dirty.clear();
        }
        wiped
    }

    /// Whether `index` lies in some volatile segment.
    pub fn is_volatile(&self, index: u64) -> bool {
        self.segs.iter().any(|s| s.range.contains(&index))
    }

    /// Total reads issued through this wrapper since construction (or the
    /// last [`DurableSpace::reset_counters`]).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total writes issued through this wrapper since construction (or
    /// the last [`DurableSpace::reset_counters`]).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reads + writes, the E21 passage-cost unit.
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zeroes both access counters (between bench phases).
    pub fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

impl<S: RegisterSpace> RegisterSpace for DurableSpace<S> {
    fn read(&self, index: u64) -> u64 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read(index)
    }

    fn write(&self, index: u64, value: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(seg) = self.segs.iter().find(|s| s.range.contains(&index)) {
            seg.dirty.lock().unwrap().insert(index);
        }
        self.inner.write(index, value);
    }
}

/// Per-process incarnation (epoch) counters in persistent registers.
///
/// Incarnation `0` is the process's first life; every restart bumps the
/// counter. The epoch lives in a *persistent* register (`base + pid`), so
/// it survives the crash it is counting — which is the whole point: a
/// value [`stamp`]ed with an old epoch is recognizably stale once the
/// owner has restarted.
///
/// # Example
///
/// ```
/// use tfr_registers::durable::{split, stamp, Incarnations};
/// use tfr_registers::space::NativeSpace;
/// use tfr_registers::ProcId;
///
/// let space = std::sync::Arc::new(NativeSpace::new());
/// let inc = Incarnations::new(space, 0);
/// assert_eq!(inc.current(ProcId(2)), 0);
/// assert_eq!(inc.restart(ProcId(2)), 1);
///
/// // A register value written by incarnation 0 of p2:
/// let old = stamp(0, ProcId(2).token());
/// let (epoch, token) = split(old);
/// assert_eq!(token, ProcId(2).token());
/// assert!(epoch < inc.current(ProcId(2)), "stale: pre-crash incarnation");
/// ```
#[derive(Debug, Clone)]
pub struct Incarnations<S> {
    space: S,
    base: u64,
}

impl<S: RegisterSpace> Incarnations<S> {
    /// Stores process `p`'s epoch in register `base + p` of `space`.
    ///
    /// The registers must be persistent (not claimed by any
    /// [`DurableSpace::volatile`] segment) for the counter to mean
    /// anything.
    pub fn new(space: S, base: u64) -> Incarnations<S> {
        Incarnations { space, base }
    }

    /// The current incarnation of `pid` (0 = never crashed).
    pub fn current(&self, pid: ProcId) -> u64 {
        self.space.read(self.base + pid.0 as u64)
    }

    /// Records a restart of `pid`: bumps and returns its new epoch.
    ///
    /// Only `pid`'s own recovery code calls this (single writer per
    /// register), so read-then-write is atomic enough.
    pub fn restart(&self, pid: ProcId) -> u64 {
        let next = self.current(pid) + 1;
        self.space.write(self.base + pid.0 as u64, next);
        next
    }
}

/// Number of low bits [`stamp`] keeps for the payload value.
pub const STAMP_VALUE_BITS: u32 = 32;

/// Packs `(epoch, value)` into one register word: epoch in the high 32
/// bits, value in the low 32.
///
/// A register owner writes `stamp(my_epoch, payload)`; any reader can
/// [`split`] the word and compare the epoch against
/// [`Incarnations::current`] to detect a write left behind by a pre-crash
/// incarnation.
///
/// # Panics
///
/// Panics if either half exceeds 32 bits — lock tokens and realistic
/// restart counts are far below that.
pub fn stamp(epoch: u64, value: u64) -> u64 {
    assert!(epoch < (1 << STAMP_VALUE_BITS), "epoch overflows stamp");
    assert!(value < (1 << STAMP_VALUE_BITS), "value overflows stamp");
    (epoch << STAMP_VALUE_BITS) | value
}

/// Inverse of [`stamp`]: `(epoch, value)`.
pub fn split(word: u64) -> (u64, u64) {
    (
        word >> STAMP_VALUE_BITS,
        word & ((1 << STAMP_VALUE_BITS) - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::NativeSpace;
    use std::sync::Arc;

    #[test]
    fn persistent_registers_survive_a_crash() {
        let s = DurableSpace::new(NativeSpace::new()).volatile(ProcId(0), 10..20);
        s.write(0, 1);
        s.write(5, 2);
        s.crash(ProcId(0));
        assert_eq!(s.read(0), 1);
        assert_eq!(s.read(5), 2);
    }

    #[test]
    fn volatile_registers_reset_on_owner_crash_only() {
        let s = DurableSpace::new(NativeSpace::new())
            .volatile(ProcId(0), 10..20)
            .volatile(ProcId(1), 20..30);
        s.write(11, 7);
        s.write(21, 8);

        // p1's crash leaves p0's segment alone.
        assert_eq!(s.crash(ProcId(1)), 1);
        assert_eq!(s.read(11), 7);
        assert_eq!(s.read(21), 0);

        assert_eq!(s.crash(ProcId(0)), 1);
        assert_eq!(s.read(11), 0);
    }

    #[test]
    fn crash_is_idempotent_and_only_wipes_dirty_cells() {
        let s = DurableSpace::new(NativeSpace::new()).volatile(ProcId(0), 0..1000);
        s.write(3, 9);
        assert_eq!(s.crash(ProcId(0)), 1, "only the written cell is wiped");
        assert_eq!(s.crash(ProcId(0)), 0, "second crash finds nothing dirty");
        s.write(3, 10);
        assert_eq!(s.crash(ProcId(0)), 1, "re-dirtied after rejoin");
    }

    #[test]
    fn access_counters_track_reads_and_writes() {
        let s = DurableSpace::new(NativeSpace::new());
        s.write(0, 1);
        s.write(1, 2);
        let _ = s.read(0);
        assert_eq!((s.reads(), s.writes()), (1, 2));
        assert_eq!(s.accesses(), 3);
        s.reset_counters();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn volatility_is_queryable() {
        let s = DurableSpace::new(NativeSpace::new()).volatile(ProcId(1), 4..6);
        assert!(!s.is_volatile(3));
        assert!(s.is_volatile(4));
        assert!(s.is_volatile(5));
        assert!(!s.is_volatile(6));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_volatile_segments_are_rejected() {
        let _ = DurableSpace::new(NativeSpace::new())
            .volatile(ProcId(0), 0..10)
            .volatile(ProcId(1), 5..15);
    }

    #[test]
    fn incarnations_start_at_zero_and_count_restarts() {
        let space = Arc::new(NativeSpace::new());
        let inc = Incarnations::new(space, 100);
        assert_eq!(inc.current(ProcId(0)), 0);
        assert_eq!(inc.restart(ProcId(0)), 1);
        assert_eq!(inc.restart(ProcId(0)), 2);
        assert_eq!(inc.current(ProcId(0)), 2);
        assert_eq!(inc.current(ProcId(1)), 0, "per process");
    }

    #[test]
    fn incarnations_survive_volatile_wipes() {
        let space = Arc::new(DurableSpace::new(NativeSpace::new()).volatile(ProcId(0), 0..50));
        let inc = Incarnations::new(space.clone(), 100); // persistent region
        inc.restart(ProcId(0));
        space.crash(ProcId(0));
        assert_eq!(inc.current(ProcId(0)), 1, "epoch is persistent");
    }

    #[test]
    fn stamp_round_trips_and_detects_staleness() {
        let word = stamp(3, ProcId(4).token());
        assert_eq!(split(word), (3, ProcId(4).token()));
        assert_eq!(split(0), (0, 0), "zero register splits to epoch 0, free");

        let space = Arc::new(NativeSpace::new());
        let inc = Incarnations::new(space, 0);
        let old = stamp(inc.current(ProcId(0)), ProcId(0).token());
        inc.restart(ProcId(0));
        let (epoch, _) = split(old);
        assert!(epoch < inc.current(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "overflows stamp")]
    fn stamp_rejects_oversized_values() {
        let _ = stamp(0, 1 << 32);
    }
}
