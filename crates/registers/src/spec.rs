//! The *specification form* of an algorithm: an explicit state machine whose
//! atomic steps are single shared-register accesses.
//!
//! The paper's model charges time only for statements that access the shared
//! memory (each such access takes at most Δ, unless a timing failure
//! occurs), for `delay(d)` statements (at least — and, for complexity
//! accounting, exactly — `d`), and treats local computation as free. An
//! [`Automaton`] mirrors that: [`Automaton::next_action`] names the single
//! shared-memory access (or delay) the process performs next, and
//! [`Automaton::apply`] performs the unbounded local computation that
//! follows it.
//!
//! The same automaton is executed by
//!
//! * the discrete-event simulator (`tfr-sim`), which assigns each action a
//!   duration from a timing model and linearizes it at its completion
//!   instant, and
//! * the model checker (`tfr-modelcheck`), which explores *all* possible
//!   linearization orders (the asynchronous closure of the timing-based
//!   model — exactly the behaviours possible under arbitrary timing
//!   failures).
//!
//! # Protocol
//!
//! For a state `s` that is not halted the driver:
//!
//! 1. calls `next_action(&s)`;
//! 2. linearizes the action against the register bank — a `Read` observes
//!    the register's value at that instant, a `Write` installs its value;
//! 3. calls `apply(&mut s, observed, &mut obs)` where `observed` is
//!    `Some(value)` for a `Read` and `None` otherwise.
//!
//! Once `next_action` returns [`Action::Halt`] the process has terminated
//! and is never stepped again.

use crate::{ProcId, RegId, Ticks};
use core::fmt;

/// The next atomic step of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Atomically read a shared register; the observed value is passed to
    /// [`Automaton::apply`].
    Read(RegId),
    /// Atomically write a value to a shared register.
    Write(RegId, u64),
    /// Execute `delay(d)`: suspend for at least `d` ticks. Under timing
    /// failures the suspension may be longer; it is never shorter.
    Delay(Ticks),
    /// The process has terminated (or, for long-lived algorithms, finished
    /// its scripted workload).
    Halt,
}

impl Action {
    /// Whether this action accesses the shared memory (and is therefore
    /// subject to the Δ bound and to timing failures).
    #[inline]
    pub fn is_shared_access(&self) -> bool {
        matches!(self, Action::Read(_) | Action::Write(_, _))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Read(r) => write!(f, "read {r}"),
            Action::Write(r, v) => write!(f, "write {r} := {v}"),
            Action::Delay(d) => write!(f, "delay({d})"),
            Action::Halt => write!(f, "halt"),
        }
    }
}

/// An observable event emitted by a process while applying a step.
///
/// Events drive the simulator's metrics (decision latency, the mutual
/// exclusion time-complexity metric of §3) and the model checker's safety
/// predicates (agreement, validity, mutual exclusion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Obs {
    /// A consensus participant irrevocably decided this value.
    Decided(u64),
    /// A consensus participant started round `r` (1-based).
    StartedRound(u64),
    /// A mutex participant entered its entry code (started *trying*).
    EnterTrying,
    /// A mutex participant entered its critical section.
    EnterCritical,
    /// A mutex participant left its critical section (started exit code).
    ExitCritical,
    /// A mutex participant finished its exit code (back in the remainder).
    EnterRemainder,
    /// Algorithm-specific annotation, for traces and tests.
    Note(&'static str, u64),
}

/// An algorithm in specification form: a Mealy machine over atomic register
/// accesses.
///
/// Implementations must be deterministic: `next_action` is a pure function
/// of the state, and `apply` of the state and the observed value. All
/// nondeterminism lives in the driver (step durations, interleavings) —
/// this is what makes simulation runs replayable and model checking sound.
pub trait Automaton {
    /// Per-process state. `Clone + Eq + Hash` so the model checker can
    /// store and deduplicate global states.
    type State: Clone + fmt::Debug + PartialEq + Eq + core::hash::Hash;

    /// The initial state of process `pid`.
    fn init(&self, pid: ProcId) -> Self::State;

    /// The next atomic action of a process in state `state`.
    fn next_action(&self, state: &Self::State) -> Action;

    /// Advance the state past the action most recently returned by
    /// [`Automaton::next_action`]. `observed` is `Some(v)` iff that action
    /// was a `Read` that observed `v`. Events are appended to `obs`.
    fn apply(&self, state: &mut Self::State, observed: Option<u64>, obs: &mut Vec<Obs>);

    /// Whether `state` is halted (defaults to checking `next_action`).
    fn is_halted(&self, state: &Self::State) -> bool {
        matches!(self.next_action(state), Action::Halt)
    }
}

/// Blanket impl so `&A` can be used wherever an automaton is expected.
impl<A: Automaton + ?Sized> Automaton for &A {
    type State = A::State;
    fn init(&self, pid: ProcId) -> Self::State {
        (**self).init(pid)
    }
    fn next_action(&self, state: &Self::State) -> Action {
        (**self).next_action(state)
    }
    fn apply(&self, state: &mut Self::State, observed: Option<u64>, obs: &mut Vec<Obs>) {
        (**self).apply(state, observed, obs)
    }
}

/// A permutation of process ids, used for symmetry reduction.
///
/// `map[i]` is the image of process `i`: applying the permutation to a
/// global configuration relabels process `i` as process `map[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Perm {
    map: Vec<usize>,
}

impl Perm {
    /// The identity permutation on `n` processes.
    pub fn identity(n: usize) -> Perm {
        Perm {
            map: (0..n).collect(),
        }
    }

    /// A permutation from an explicit image vector (`map[i]` = image of
    /// `i`).
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_map(map: Vec<usize>) -> Perm {
        let mut hit = vec![false; map.len()];
        for &m in &map {
            assert!(m < map.len() && !hit[m], "not a permutation: {map:?}");
            hit[m] = true;
        }
        Perm { map }
    }

    /// Number of processes this permutation acts on.
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// The image of process index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The image of a [`ProcId`].
    #[inline]
    pub fn apply_pid(&self, pid: ProcId) -> ProcId {
        ProcId(self.map[pid.0])
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &m)| i == m)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0; self.map.len()];
        for (i, &m) in self.map.iter().enumerate() {
            inv[m] = i;
        }
        Perm { map: inv }
    }

    /// All `n!` permutations of `0..n`, in lexicographic order (Heap's
    /// algorithm would not be ordered; this enumerates recursively).
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` — the symmetry group is enumerated exhaustively
    /// and 8! = 40 320 is the sensible ceiling for model checking.
    pub fn all(n: usize) -> Vec<Perm> {
        assert!(n <= 8, "refusing to enumerate {n}! permutations");
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(n);
        let mut used = vec![false; n];
        fn rec(n: usize, current: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Perm>) {
            if current.len() == n {
                out.push(Perm {
                    map: current.clone(),
                });
                return;
            }
            for i in 0..n {
                if !used[i] {
                    used[i] = true;
                    current.push(i);
                    rec(n, current, used, out);
                    current.pop();
                    used[i] = false;
                }
            }
        }
        rec(n, &mut current, &mut used, &mut out);
        out
    }
}

/// An [`Automaton`] whose transition relation commutes with process
/// relabelling — the contract behind symmetry reduction in the model
/// checker.
///
/// Implementors assert *equivariance*: for every valid permutation `π`
/// (the checker only uses permutations that fix the initial global
/// configuration),
///
/// ```text
/// next_action(permute_state(s, π)) = π(next_action(s))
/// ```
///
/// where `π` acts on actions by [`Symmetric::permute_reg`] on register
/// ids and [`Symmetric::permute_value`] on written values, and `apply`
/// commutes the same way. Two global configurations that differ only by
/// such a relabelling then generate isomorphic futures and can be
/// deduplicated to one canonical representative.
///
/// The defaults (`permute_reg`/`permute_value` = identity) fit automata
/// whose register layout and values are pid-free; an automaton with
/// per-process registers or pid-valued writes (e.g. Fischer's `x :=
/// token(pid)`) overrides them.
pub trait Symmetric: Automaton {
    /// The state of process `perm.apply_pid(old_pid)` when process
    /// `old_pid`'s state is `state` — i.e. `state` with every embedded
    /// process id mapped through `perm`.
    fn permute_state(&self, state: &Self::State, perm: &Perm) -> Self::State;

    /// The image of a register id under the relabelling (identity for
    /// pid-free register layouts).
    fn permute_reg(&self, reg: RegId, _perm: &Perm) -> RegId {
        reg
    }

    /// The image of the *value stored in* `reg` under the relabelling
    /// (identity unless values encode process ids).
    fn permute_value(&self, _reg: RegId, value: u64, _perm: &Perm) -> u64 {
        value
    }

    /// Whether equivariance actually holds for `perm`. The checker's
    /// stabilizer computation filters candidate permutations through
    /// this *in addition to* requiring that they fix the initial
    /// configuration.
    ///
    /// Override when per-process parameters that the initial
    /// configuration does not expose break the symmetry — e.g. a
    /// heterogeneous per-process `delay(Δ)` table: two processes with
    /// different estimates are distinguishable later even though their
    /// initial states and actions coincide.
    fn respects(&self, _perm: &Perm) -> bool {
        true
    }
}

impl<A: Symmetric + ?Sized> Symmetric for &A {
    fn permute_state(&self, state: &Self::State, perm: &Perm) -> Self::State {
        (**self).permute_state(state, perm)
    }
    fn permute_reg(&self, reg: RegId, perm: &Perm) -> RegId {
        (**self).permute_reg(reg, perm)
    }
    fn permute_value(&self, reg: RegId, value: u64, perm: &Perm) -> u64 {
        (**self).permute_value(reg, value, perm)
    }
    fn respects(&self, perm: &Perm) -> bool {
        (**self).respects(perm)
    }
}

/// Runs a single process of `automaton` to completion against `bank`,
/// with every action linearizing immediately (no concurrency, no timing
/// failures). Returns the events emitted and the number of shared-memory
/// accesses performed.
///
/// This is the *solo execution* of the paper's "fast" property: Theorem
/// 2.1(4) states a solo process decides after exactly 7 such steps. It is
/// also handy in unit tests of individual automata.
///
/// # Panics
///
/// Panics if the process takes more than `step_limit` actions without
/// halting — solo executions of all algorithms in this workspace terminate.
pub fn run_solo<A: Automaton>(
    automaton: &A,
    pid: ProcId,
    bank: &mut dyn crate::bank::RegisterBank,
    step_limit: usize,
) -> SoloRun {
    let mut state = automaton.init(pid);
    let mut obs = Vec::new();
    let mut shared_accesses = 0usize;
    let mut delays = 0usize;
    for _ in 0..step_limit {
        match automaton.next_action(&state) {
            Action::Halt => {
                return SoloRun {
                    obs,
                    shared_accesses,
                    delays,
                };
            }
            Action::Read(r) => {
                shared_accesses += 1;
                let v = bank.read(r);
                automaton.apply(&mut state, Some(v), &mut obs);
            }
            Action::Write(r, v) => {
                shared_accesses += 1;
                bank.write(r, v);
                automaton.apply(&mut state, None, &mut obs);
            }
            Action::Delay(_) => {
                delays += 1;
                automaton.apply(&mut state, None, &mut obs);
            }
        }
    }
    panic!("solo run of {pid} did not halt within {step_limit} steps");
}

/// Result of [`run_solo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoloRun {
    /// Events emitted, in order.
    pub obs: Vec<Obs>,
    /// Number of shared-memory accesses performed (the paper's step count).
    pub shared_accesses: usize,
    /// Number of `delay` statements executed.
    pub delays: usize,
}

impl SoloRun {
    /// The decided value, if the run emitted a [`Obs::Decided`] event.
    pub fn decision(&self) -> Option<u64> {
        self.obs.iter().find_map(|o| match o {
            Obs::Decided(v) => Some(*v),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::{ArrayBank, RegisterBank};

    /// A toy automaton: reads register 0, writes the value + 1 to register
    /// 1, decides it, halts.
    struct Incr;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum IncrState {
        ReadIn,
        WriteOut(u64),
        Done,
    }

    impl Automaton for Incr {
        type State = IncrState;
        fn init(&self, _pid: ProcId) -> IncrState {
            IncrState::ReadIn
        }
        fn next_action(&self, state: &IncrState) -> Action {
            match state {
                IncrState::ReadIn => Action::Read(RegId(0)),
                IncrState::WriteOut(v) => Action::Write(RegId(1), *v),
                IncrState::Done => Action::Halt,
            }
        }
        fn apply(&self, state: &mut IncrState, observed: Option<u64>, obs: &mut Vec<Obs>) {
            *state = match state {
                IncrState::ReadIn => IncrState::WriteOut(observed.expect("read observes") + 1),
                IncrState::WriteOut(v) => {
                    obs.push(Obs::Decided(*v));
                    IncrState::Done
                }
                IncrState::Done => unreachable!("halted automaton stepped"),
            };
        }
    }

    #[test]
    fn solo_run_counts_steps_and_collects_obs() {
        let mut bank = ArrayBank::new();
        bank.write(RegId(0), 41);
        let run = run_solo(&Incr, ProcId(0), &mut bank, 10);
        assert_eq!(run.shared_accesses, 2);
        assert_eq!(run.delays, 0);
        assert_eq!(run.decision(), Some(42));
        assert_eq!(bank.read(RegId(1)), 42);
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn solo_run_enforces_step_limit() {
        /// Spins forever re-reading register 0.
        struct Spin;
        impl Automaton for Spin {
            type State = ();
            fn init(&self, _pid: ProcId) {}
            fn next_action(&self, _state: &()) -> Action {
                Action::Read(RegId(0))
            }
            fn apply(&self, _state: &mut (), _observed: Option<u64>, _obs: &mut Vec<Obs>) {}
        }
        let mut bank = ArrayBank::new();
        let _ = run_solo(&Spin, ProcId(0), &mut bank, 5);
    }

    #[test]
    fn action_display_and_shared_access() {
        assert!(Action::Read(RegId(1)).is_shared_access());
        assert!(Action::Write(RegId(1), 2).is_shared_access());
        assert!(!Action::Delay(Ticks(5)).is_shared_access());
        assert!(!Action::Halt.is_shared_access());
        assert_eq!(Action::Write(RegId(2), 9).to_string(), "write r2 := 9");
        assert_eq!(Action::Delay(Ticks(5)).to_string(), "delay(5t)");
    }

    #[test]
    fn automaton_usable_through_reference() {
        let mut bank = ArrayBank::new();
        let run = run_solo(&&Incr, ProcId(1), &mut bank, 10);
        assert_eq!(run.decision(), Some(1));
    }

    #[test]
    fn perm_enumeration_inverse_and_identity() {
        let all = Perm::all(3);
        assert_eq!(all.len(), 6);
        assert!(all[0].is_identity());
        for p in &all {
            let inv = p.inverse();
            for i in 0..3 {
                assert_eq!(inv.apply(p.apply(i)), i);
            }
        }
        let swap = Perm::from_map(vec![1, 0]);
        assert_eq!(swap.apply_pid(ProcId(0)), ProcId(1));
        assert!(!swap.is_identity());
        assert_eq!(swap.n(), 2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn perm_rejects_non_permutation() {
        let _ = Perm::from_map(vec![0, 0]);
    }
}
