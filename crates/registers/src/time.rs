//! Virtual time: [`Ticks`] and the Δ bound ([`Delta`]).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration or instant of virtual time, in abstract *ticks*.
///
/// The simulator measures everything in ticks; the Δ bound of the paper's
/// timing-based model is itself a number of ticks ([`Delta`]). Using an
/// integer keeps simulation runs exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ticks(pub u64);

impl Ticks {
    /// Zero duration / the initial instant.
    pub const ZERO: Ticks = Ticks(0);
    /// The largest representable instant — used as "never" (crashed
    /// processes are scheduled to complete at `Ticks::NEVER`).
    pub const NEVER: Ticks = Ticks(u64::MAX);

    /// Saturating addition; `NEVER` is absorbing.
    #[inline]
    pub fn saturating_add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_add(rhs.0))
    }

    /// `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Expresses this duration as a (possibly fractional) multiple of Δ.
    #[inline]
    pub fn in_deltas(self, delta: Delta) -> f64 {
        self.0 as f64 / delta.ticks().0 as f64
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Ticks::NEVER {
            write!(f, "∞")
        } else {
            write!(f, "{}t", self.0)
        }
    }
}

impl Add for Ticks {
    type Output = Ticks;
    #[inline]
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    #[inline]
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    #[inline]
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    #[inline]
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Div<u64> for Ticks {
    type Output = Ticks;
    #[inline]
    fn div(self, rhs: u64) -> Ticks {
        Ticks(self.0 / rhs)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        iter.fold(Ticks::ZERO, |a, b| a + b)
    }
}

/// The known upper bound Δ on the duration of a single shared-memory access.
///
/// In the paper's timing-based model Δ is *known* to all processes, so
/// `delay(Δ)` statements can refer to it directly. A **timing failure** is
/// any access that takes longer than Δ. Algorithms may also run with an
/// *optimistic* estimate of Δ (`optimistic(Δ)` in §1.2 of the paper) that is
/// smaller than the true bound; resilience guarantees that an under-estimate
/// can cost time but never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Delta(Ticks);

impl Delta {
    /// Creates a Δ bound of `ticks` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero: a zero access-time bound makes the model
    /// degenerate (every access is a timing failure).
    pub fn from_ticks(ticks: u64) -> Delta {
        assert!(ticks > 0, "Δ must be positive");
        Delta(Ticks(ticks))
    }

    /// The bound as a tick count.
    #[inline]
    pub fn ticks(self) -> Ticks {
        self.0
    }

    /// `c · Δ` — the paper states every time-complexity bound as a small
    /// constant multiple of Δ.
    #[inline]
    pub fn times(self, c: u64) -> Ticks {
        self.0 * c
    }

    /// A scaled estimate of this bound (used by the adaptive
    /// `optimistic(Δ)` machinery). Rounds down, clamped to at least 1 tick.
    pub fn scaled(self, factor: f64) -> Delta {
        let t = ((self.0 .0 as f64) * factor).floor().max(1.0) as u64;
        Delta(Ticks(t))
    }
}

impl Default for Delta {
    /// 1000 ticks, the workspace-wide conventional Δ.
    fn default() -> Self {
        Delta::from_ticks(1000)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        assert_eq!(Ticks(3) + Ticks(4), Ticks(7));
        assert_eq!(Ticks(10) - Ticks(4), Ticks(6));
        assert_eq!(Ticks(3) * 5, Ticks(15));
        assert_eq!(Ticks(15) / 3, Ticks(5));
        assert_eq!(Ticks(10).saturating_sub(Ticks(20)), Ticks::ZERO);
        assert_eq!(Ticks::NEVER.saturating_add(Ticks(1)), Ticks::NEVER);
    }

    #[test]
    fn tick_sum() {
        let total: Ticks = [Ticks(1), Ticks(2), Ticks(3)].into_iter().sum();
        assert_eq!(total, Ticks(6));
    }

    #[test]
    fn delta_multiples() {
        let d = Delta::from_ticks(100);
        assert_eq!(d.times(15), Ticks(1500));
        assert_eq!(Ticks(250).in_deltas(d), 2.5);
    }

    #[test]
    fn delta_scaling_clamps() {
        let d = Delta::from_ticks(10);
        assert_eq!(d.scaled(0.5).ticks(), Ticks(5));
        assert_eq!(d.scaled(0.0001).ticks(), Ticks(1));
        assert_eq!(d.scaled(3.0).ticks(), Ticks(30));
    }

    #[test]
    #[should_panic(expected = "Δ must be positive")]
    fn zero_delta_rejected() {
        let _ = Delta::from_ticks(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ticks(5).to_string(), "5t");
        assert_eq!(Ticks::NEVER.to_string(), "∞");
        assert_eq!(Delta::from_ticks(7).to_string(), "Δ=7t");
    }
}
