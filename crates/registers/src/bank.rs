//! Register files that the specification form of an algorithm executes
//! against.
//!
//! Both banks model the paper's shared memory: an unbounded collection of
//! atomic `u64` registers, all zero-initialized. [`ArrayBank`] is the dense,
//! fast bank used by the simulator; [`MapBank`] is the sparse, *canonical*
//! bank used by the model checker (equal register contents always compare
//! and hash equal, regardless of write history).

use crate::RegId;
use std::collections::BTreeMap;

/// A file of atomic registers addressed by [`RegId`].
///
/// Every register conceptually exists and holds `0` until written.
pub trait RegisterBank {
    /// Atomically reads register `reg` (zero if never written).
    fn read(&self, reg: RegId) -> u64;
    /// Atomically writes `value` to register `reg`.
    fn write(&mut self, reg: RegId, value: u64);
}

/// Dense register file backed by a growable `Vec`.
///
/// Reads beyond the written range return 0 without allocating; writes grow
/// the vector. Suitable when register ids are reasonably dense (every
/// algorithm in this workspace packs its registers densely from 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayBank {
    regs: Vec<u64>,
}

impl ArrayBank {
    /// Creates an empty (all-zero) register file.
    pub fn new() -> ArrayBank {
        ArrayBank::default()
    }

    /// Number of registers that have been materialized (written at least
    /// once, directly or by growth). Used by tests and accounting.
    pub fn materialized(&self) -> usize {
        self.regs.len()
    }
}

impl RegisterBank for ArrayBank {
    fn read(&self, reg: RegId) -> u64 {
        self.regs.get(reg.0 as usize).copied().unwrap_or(0)
    }

    fn write(&mut self, reg: RegId, value: u64) {
        let idx = reg.0 as usize;
        if idx >= self.regs.len() {
            if value == 0 {
                return; // writing the default value needs no storage
            }
            self.regs.resize(idx + 1, 0);
        }
        self.regs[idx] = value;
    }
}

/// Sparse, canonical register file backed by a `BTreeMap`.
///
/// Registers holding 0 are absent from the map, so two `MapBank`s are `==`
/// (and hash identically) exactly when every register holds the same value.
/// The model checker relies on this for state deduplication.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MapBank {
    regs: BTreeMap<u64, u64>,
}

impl MapBank {
    /// Creates an empty (all-zero) register file.
    pub fn new() -> MapBank {
        MapBank::default()
    }

    /// Number of registers currently holding a nonzero value.
    pub fn nonzero_count(&self) -> usize {
        self.regs.len()
    }

    /// Iterates over `(RegId, value)` pairs with nonzero values, in id
    /// order. Useful for printing counterexample states.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, u64)> + '_ {
        self.regs.iter().map(|(&k, &v)| (RegId(k), v))
    }
}

impl RegisterBank for MapBank {
    fn read(&self, reg: RegId) -> u64 {
        self.regs.get(&reg.0).copied().unwrap_or(0)
    }

    fn write(&mut self, reg: RegId, value: u64) {
        if value == 0 {
            self.regs.remove(&reg.0);
        } else {
            self.regs.insert(reg.0, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn array_bank_default_zero() {
        let bank = ArrayBank::new();
        assert_eq!(bank.read(RegId(0)), 0);
        assert_eq!(bank.read(RegId(1 << 20)), 0);
        assert_eq!(bank.materialized(), 0);
    }

    #[test]
    fn array_bank_read_back() {
        let mut bank = ArrayBank::new();
        bank.write(RegId(7), 99);
        assert_eq!(bank.read(RegId(7)), 99);
        assert_eq!(bank.read(RegId(6)), 0);
        assert_eq!(bank.materialized(), 8);
    }

    #[test]
    fn array_bank_zero_write_to_fresh_register_is_free() {
        let mut bank = ArrayBank::new();
        bank.write(RegId(1 << 30), 0);
        assert_eq!(bank.materialized(), 0);
        assert_eq!(bank.read(RegId(1 << 30)), 0);
    }

    #[test]
    fn map_bank_canonical_on_zero() {
        let mut a = MapBank::new();
        let b = MapBank::new();
        a.write(RegId(3), 5);
        assert_ne!(a, b);
        a.write(RegId(3), 0);
        assert_eq!(a, b, "writing 0 must restore the canonical empty state");
        assert_eq!(a.nonzero_count(), 0);
    }

    #[test]
    fn map_bank_iter_in_id_order() {
        let mut bank = MapBank::new();
        bank.write(RegId(9), 1);
        bank.write(RegId(2), 2);
        let pairs: Vec<_> = bank.iter().collect();
        assert_eq!(pairs, vec![(RegId(2), 2), (RegId(9), 1)]);
    }

    /// Both banks implement the same register semantics: after an
    /// arbitrary sequence of writes, every register reads back the last
    /// value written to it (or zero). Randomized over a fixed seed so
    /// failures replay exactly.
    #[test]
    fn banks_agree() {
        let mut rng = SplitMix64::new(0x7f4b_0001);
        for _case in 0..64 {
            let mut array = ArrayBank::new();
            let mut map = MapBank::new();
            let ops = rng.random_range(0..=199);
            for _ in 0..ops {
                let reg = rng.random_range(0..=63);
                let val = rng.next_u64();
                array.write(RegId(reg), val);
                map.write(RegId(reg), val);
            }
            for reg in 0..64 {
                assert_eq!(array.read(RegId(reg)), map.read(RegId(reg)));
            }
        }
    }

    /// MapBank equality is extensional: two different write histories
    /// ending in the same contents compare equal.
    #[test]
    fn map_bank_extensional() {
        let mut rng = SplitMix64::new(0x7f4b_0002);
        for _case in 0..64 {
            let mut direct = MapBank::new();
            let mut indirect = MapBank::new();
            let len = rng.random_range(1..=19);
            for i in 0..len {
                let v = rng.next_u64();
                direct.write(RegId(i), v);
                // Indirect: write garbage first, then overwrite.
                indirect.write(RegId(i), v.wrapping_add(1));
                indirect.write(RegId(i), v);
            }
            assert_eq!(direct, indirect);
        }
    }
}
