//! The backend-neutral register abstraction: [`RegisterSpace`].
//!
//! The paper's algorithms are written against one primitive — the atomic
//! read/write register — and nothing else. A *register space* is an
//! unbounded, zero-initialized array of such registers behind a uniform
//! `read`/`write` interface, so the same algorithm source can execute
//! against:
//!
//! * [`NativeSpace`] — real `std::sync::atomic` cells in shared memory
//!   (the [`crate::native::UnboundedAtomicArray`] this crate already
//!   provides), where the Δ bound comes from the hardware, or
//! * a message-passing emulation (the `tfr-net` crate's majority-quorum
//!   ABD registers), where message delays and partitions are the timing
//!   failures.
//!
//! The trait deliberately mirrors the paper's model: `read` and `write`
//! on single registers, nothing stronger (no CAS, no fences beyond the
//! register's own atomicity). Any correct implementation must be
//! **atomic** (linearizable) per register — `tfr-linearize` can check
//! that claim against recorded histories.
//!
//! [`SubSpace`] carves disjoint unbounded regions out of one space so a
//! composite algorithm can hand each sub-instance its own private
//! register array, and [`SharedRegister`] names one register of a space
//! as a standalone handle.

use crate::native::UnboundedAtomicArray;
use std::sync::Arc;

/// An unbounded, zero-initialized array of atomic `u64` read/write
/// registers — the paper's shared memory, abstracted over its physical
/// realization.
///
/// Implementations must make each register individually atomic
/// (linearizable): concurrent `read`s and `write`s on the same index
/// behave as if executed in some total order consistent with real time.
/// Nothing is promised *across* registers; the algorithms layered on top
/// assume only the single-register model of the paper.
pub trait RegisterSpace: Send + Sync {
    /// Atomically reads register `index` (0 if never written).
    fn read(&self, index: u64) -> u64;

    /// Atomically writes `value` to register `index`.
    fn write(&self, index: u64, value: u64);
}

impl<S: RegisterSpace + ?Sized> RegisterSpace for Arc<S> {
    fn read(&self, index: u64) -> u64 {
        (**self).read(index)
    }
    fn write(&self, index: u64, value: u64) {
        (**self).write(index, value)
    }
}

impl<S: RegisterSpace + ?Sized> RegisterSpace for &S {
    fn read(&self, index: u64) -> u64 {
        (**self).read(index)
    }
    fn write(&self, index: u64, value: u64) {
        (**self).write(index, value)
    }
}

impl<S: RegisterSpace + ?Sized> RegisterSpace for Box<S> {
    fn read(&self, index: u64) -> u64 {
        (**self).read(index)
    }
    fn write(&self, index: u64, value: u64) {
        (**self).write(index, value)
    }
}

/// The shared-memory register space: [`UnboundedAtomicArray`] cells.
///
/// This is the default backend of every native algorithm — `SeqCst`
/// atomics at stable addresses. Accesses through the space fire **no**
/// chaos injection points: a register space is the *medium*, and the
/// medium cannot know which accesses an algorithm considers
/// fault-interesting (the quorum backend has no array access to
/// instrument at all). Algorithms that want the
/// [`crate::chaos::points::ARRAY_LOAD`] / `ARRAY_STORE` points fire them
/// themselves, right before the corresponding space access — which is
/// exactly what the consensus layer does, keeping its chaos schedule
/// identical across backends.
///
/// # Example
///
/// ```
/// use tfr_registers::space::{NativeSpace, RegisterSpace};
///
/// let space = NativeSpace::new();
/// assert_eq!(space.read(9_999), 0);
/// space.write(9_999, 7);
/// assert_eq!(space.read(9_999), 7);
/// ```
#[derive(Debug, Default)]
pub struct NativeSpace {
    cells: UnboundedAtomicArray,
}

impl NativeSpace {
    /// Creates an empty space (chunks allocate on first write).
    pub fn new() -> NativeSpace {
        NativeSpace {
            cells: UnboundedAtomicArray::new(),
        }
    }

    /// Creates a space with the first `n` registers pre-allocated.
    pub fn with_capacity(n: usize) -> NativeSpace {
        NativeSpace {
            cells: UnboundedAtomicArray::with_capacity(n),
        }
    }
}

impl RegisterSpace for NativeSpace {
    fn read(&self, index: u64) -> u64 {
        self.cells.load_quiet(index as usize)
    }
    fn write(&self, index: u64, value: u64) {
        self.cells.store_quiet(index as usize, value)
    }
}

/// A strided view into another space: local index `i` maps to
/// `base + i × stride` of the parent.
///
/// With stride `s`, the sub-spaces at bases `0..s` (stride `s` each) tile
/// the parent into `s` disjoint unbounded arrays — how a composite
/// algorithm (bit-by-bit multi-consensus, the universal construction)
/// hands each sub-instance its own private register region without
/// bounding anyone's address space.
///
/// # Example
///
/// ```
/// use tfr_registers::space::{NativeSpace, RegisterSpace, SubSpace};
///
/// let parent = std::sync::Arc::new(NativeSpace::new());
/// let even = SubSpace::new(parent.clone(), 0, 2);
/// let odd = SubSpace::new(parent.clone(), 1, 2);
/// even.write(3, 10); // parent register 6
/// odd.write(3, 11); // parent register 7
/// assert_eq!(parent.read(6), 10);
/// assert_eq!(parent.read(7), 11);
/// ```
#[derive(Debug, Clone)]
pub struct SubSpace<S> {
    inner: S,
    base: u64,
    stride: u64,
}

impl<S: RegisterSpace> SubSpace<S> {
    /// Creates the view `i ↦ base + i × stride` of `inner`.
    ///
    /// `stride` must be nonzero (a zero stride would alias every local
    /// index onto one parent register).
    pub fn new(inner: S, base: u64, stride: u64) -> SubSpace<S> {
        assert!(stride > 0, "a SubSpace stride of 0 aliases all registers");
        SubSpace {
            inner,
            base,
            stride,
        }
    }

    /// The parent index local index 0 maps to.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The distance between consecutive local indices in the parent.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The parent index local index `i` maps to — for alias analysis in
    /// tests; reads and writes go through [`RegisterSpace`].
    pub fn parent_index(&self, i: u64) -> u64 {
        self.base + i * self.stride
    }
}

impl<S: RegisterSpace + Clone> SubSpace<S> {
    /// Tiles `inner` into `count` disjoint unbounded regions: tile `t` is
    /// the view `i ↦ t + i × count`. The tiles cover the parent exactly —
    /// every parent index belongs to exactly one `(tile, local)` pair —
    /// which is how the sharded service hands each shard its own private
    /// register region over one shared backend.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use tfr_registers::space::{NativeSpace, RegisterSpace, SubSpace};
    ///
    /// let parent = std::sync::Arc::new(NativeSpace::new());
    /// let tiles = SubSpace::tile(parent.clone(), 4);
    /// tiles[3].write(2, 9); // parent register 3 + 2·4 = 11
    /// assert_eq!(parent.read(11), 9);
    /// ```
    pub fn tile(inner: S, count: u64) -> Vec<SubSpace<S>> {
        assert!(count > 0, "cannot tile a space into 0 regions");
        (0..count)
            .map(|t| SubSpace::new(inner.clone(), t, count))
            .collect()
    }
}

impl<S: RegisterSpace> RegisterSpace for SubSpace<S> {
    fn read(&self, index: u64) -> u64 {
        self.inner.read(self.base + index * self.stride)
    }
    fn write(&self, index: u64, value: u64) {
        self.inner.write(self.base + index * self.stride, value)
    }
}

/// One named register of a space, as a standalone handle.
///
/// # Example
///
/// ```
/// use tfr_registers::space::{NativeSpace, SharedRegister};
///
/// let space = std::sync::Arc::new(NativeSpace::new());
/// let x = SharedRegister::new(space, 0);
/// assert_eq!(x.read(), 0);
/// x.write(41);
/// assert_eq!(x.read(), 41);
/// ```
#[derive(Debug, Clone)]
pub struct SharedRegister<S> {
    space: S,
    index: u64,
}

impl<S: RegisterSpace> SharedRegister<S> {
    /// Names register `index` of `space`.
    pub fn new(space: S, index: u64) -> SharedRegister<S> {
        SharedRegister { space, index }
    }

    /// Atomically reads the register.
    pub fn read(&self) -> u64 {
        self.space.read(self.index)
    }

    /// Atomically writes the register.
    pub fn write(&self, value: u64) {
        self.space.write(self.index, value)
    }

    /// The index this handle names inside its space.
    pub fn index(&self) -> u64 {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_space_is_zero_initialized_and_persistent() {
        let s = NativeSpace::new();
        assert_eq!(s.read(0), 0);
        s.write(0, 1);
        s.write(1 << 20, 2);
        assert_eq!(s.read(0), 1);
        assert_eq!(s.read(1 << 20), 2);
    }

    #[test]
    fn sub_spaces_with_common_stride_are_disjoint() {
        let parent = Arc::new(NativeSpace::new());
        let stride = 3u64;
        let subs: Vec<SubSpace<Arc<NativeSpace>>> = (0..stride)
            .map(|b| SubSpace::new(parent.clone(), b, stride))
            .collect();
        for (b, sub) in subs.iter().enumerate() {
            for i in 0..50u64 {
                sub.write(i, (b as u64) * 1000 + i);
            }
        }
        for (b, sub) in subs.iter().enumerate() {
            for i in 0..50u64 {
                assert_eq!(sub.read(i), (b as u64) * 1000 + i, "sub {b} index {i}");
            }
        }
    }

    #[test]
    fn nested_sub_spaces_compose() {
        let parent = Arc::new(NativeSpace::new());
        let outer = SubSpace::new(parent.clone(), 1, 2);
        let inner = SubSpace::new(outer, 0, 2); // i ↦ 1 + 4i of the parent
        inner.write(3, 9);
        assert_eq!(parent.read(13), 9);
    }

    #[test]
    #[should_panic(expected = "stride of 0")]
    fn zero_stride_is_rejected() {
        let _ = SubSpace::new(NativeSpace::new(), 0, 0);
    }

    #[test]
    fn tile_partitions_the_parent_exactly() {
        let parent = Arc::new(NativeSpace::new());
        let tiles = SubSpace::tile(parent.clone(), 5);
        assert_eq!(tiles.len(), 5);
        // Each parent index 0..100 is hit by exactly one (tile, local).
        let mut owners = vec![0u32; 100];
        for tile in &tiles {
            for i in 0..20u64 {
                let p = tile.parent_index(i);
                assert_eq!(p, tile.base() + i * tile.stride());
                owners[p as usize] += 1;
            }
        }
        assert!(owners.iter().all(|&c| c == 1), "{owners:?}");
    }

    #[test]
    fn arc_and_ref_blanket_impls_delegate() {
        let s = Arc::new(NativeSpace::new());
        RegisterSpace::write(&s, 4, 44);
        assert_eq!(RegisterSpace::read(&s, 4), 44);
        let r: &NativeSpace = &s;
        assert_eq!(RegisterSpace::read(&r, 4), 44);
    }

    #[test]
    fn shared_register_names_one_cell() {
        let space = Arc::new(NativeSpace::new());
        let a = SharedRegister::new(space.clone(), 2);
        let b = SharedRegister::new(space.clone(), 3);
        a.write(1);
        b.write(2);
        assert_eq!(a.read(), 1);
        assert_eq!(b.read(), 2);
        assert_eq!(a.index(), 2);
        assert_eq!(space.read(2), 1);
    }
}
