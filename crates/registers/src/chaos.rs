//! Native fault injection: timing failures and crash-stops on real threads.
//!
//! The simulator can script any adversarial schedule, but the paper's
//! headline claims are about *real* executions: Fischer's lock loses mutual
//! exclusion when a store to `x` outlasts Δ (§2), while Algorithm 1 and
//! Algorithm 3 keep their safety under the same failures (§2, §3). This
//! module makes those failures injectable into the native
//! (`std::sync::atomic` + real threads) stack:
//!
//! * **Injection points** — named places in the native protocol code
//!   ([`points`]) where a registered thread consults the active
//!   [`FaultInjector`]. When chaos is off (the common case) a point is a
//!   single relaxed atomic load.
//! * **Stalls** — [`FaultAction::Stall`] freezes the thread at the point
//!   for a chosen duration, simulating preemption or a page fault: exactly
//!   the "timing failure" of §1.3. Stalling a thread at
//!   [`points::FISCHER_WRITE_X`] for longer than Δ reproduces the paper's
//!   mutual exclusion violation on real hardware.
//! * **Crash-stops** — [`FaultAction::Crash`] stops the thread mid-protocol
//!   by unwinding with a private [`CrashToken`] payload that
//!   [`run_as`] catches. The thread performs *no further shared-memory
//!   operations*; whatever it already wrote stays (the paper's crash
//!   model). No locks are poisoned: all protocol state is atomics, and
//!   points are never hit while an internal lock is held. A crash-stopped
//!   pid is marked **dead** in the injector: no further faults are ever
//!   scheduled onto it, even if a thread re-registers under its id.
//! * **Crash-recoveries** — [`FaultAction::CrashRecover`] is the
//!   recoverable-mutual-exclusion failure: the same mid-protocol unwind,
//!   but [`run_as`] reports [`ThreadOutcome::CrashedRecoverable`] with a
//!   down time, and the caller (the recovery nemesis) may re-enter
//!   `run_as` under the same pid as a new *incarnation*. Visit counters
//!   reset per incarnation, so every fault is **one-shot**: it fires at
//!   most once per session, which keeps a recovered incarnation from
//!   tripping over its predecessor's fault and crash-looping.
//! * **Determinism** — a fault fires at the *n-th* visit of a given point
//!   by a given process, not at a wall-clock time, so a schedule replays
//!   identically regardless of machine speed.
//!
//! Faults are described by [`Fault`] records and installed for the
//! duration of a [`ChaosSession`]. Sessions are process-global and
//! serialized (tests in one binary cannot interfere); threads opt in with
//! [`run_as`], so unrelated threads in the same process are never affected.
//!
//! The `tfr-chaos` crate builds the nemesis on top: seeded random
//! schedules, invariant-checked workloads, shrinking, and native
//! resilience reports.

use crate::ProcId;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// The vocabulary of injection points threaded through the native stack.
///
/// Names are dotted `layer.step` identifiers. The list is the contract
/// between the protocol code (which hits the points) and the nemesis
/// (which aims faults at them); [`points::ALL`] enumerates them for
/// random schedule generation.
pub mod points {
    /// `UnboundedAtomicArray::load`, before the read.
    pub const ARRAY_LOAD: &str = "array.load";
    /// `UnboundedAtomicArray::store`, before the write.
    pub const ARRAY_STORE: &str = "array.store";
    /// `precise_delay`, before the wait begins (a stall here models a
    /// preemption that makes the delay overshoot — harmless by §1.2).
    pub const DELAY: &str = "delay.pre";
    /// Fischer's read→write window: after `await x = 0` observed 0, before
    /// `x := i`. A stall here longer than Δ breaks mutual exclusion — the
    /// paper's §2 violation.
    pub const FISCHER_WRITE_X: &str = "fischer.write-x";
    /// Fischer, before the `until x = i` check read.
    pub const FISCHER_CHECK_X: &str = "fischer.check-x";
    /// Fischer's exit, before `x := 0`.
    pub const FISCHER_EXIT: &str = "fischer.exit";
    /// Algorithm 3's Fischer-stage read→write window (same hazard window
    /// as [`FISCHER_WRITE_X`], but wrapped by the asynchronous inner lock).
    pub const RESILIENT_WRITE_X: &str = "resilient.write-x";
    /// Algorithm 3, after winning the Fischer stage, before entering the
    /// inner lock `A`.
    pub const RESILIENT_INNER: &str = "resilient.inner-entry";
    /// Algorithm 3's exit, before the line-8 conditional reset of `x`.
    pub const RESILIENT_EXIT: &str = "resilient.exit";
    /// Algorithm 1, top of the round loop (before reading `decide`).
    pub const CONSENSUS_ROUND: &str = "consensus.round";
    /// Algorithm 1, after seeing `x[r, v̄] = 0`, before `decide := v`.
    pub const CONSENSUS_DECIDE: &str = "consensus.write-decide";
    /// `AdaptiveDelta::on_contended` — the estimate-doubling feedback path.
    pub const ADAPTIVE_CONTENDED: &str = "adaptive.on-contended";
    /// `AdaptiveDelta::on_uncontended` — the streak/decrease feedback path.
    pub const ADAPTIVE_UNCONTENDED: &str = "adaptive.on-uncontended";
    /// Nemesis workload, between iterations (the thread holds nothing) —
    /// the safe place to crash-stop a mutex workload thread.
    pub const WORKLOAD_NCS: &str = "workload.ncs";
    /// Nemesis workload, inside the critical section — where a
    /// crash-*recover* fault orphans the CS that the recovery section
    /// must repair.
    pub const WORKLOAD_CS: &str = "workload.cs";
    /// Recoverable lock: after the per-process state register says
    /// ACQUIRING, before the inner lock is entered. A crash here is
    /// abandoned by recovery (no CS was reached).
    pub const RECOVERABLE_ACQUIRE: &str = "recoverable.acquire";
    /// Recoverable lock: after the state register says IN_CS and the
    /// owner register is stamped — the inner lock is held. A crash here
    /// orphans the critical section; recovery must release it.
    pub const RECOVERABLE_CS: &str = "recoverable.in-cs";
    /// Recoverable lock: after the state register says RELEASING, before
    /// the owner reset and inner unlock. Recovery finishes the release.
    pub const RECOVERABLE_RELEASE: &str = "recoverable.release";
    /// Recoverable lock: inside the recovery section itself (the section
    /// is idempotent, so a crash here simply re-runs it).
    pub const RECOVERY_SECTION: &str = "recoverable.recovery-section";
    /// Universal construction: at the start of an announce burst, before
    /// any payload or counter register is written. A crash-recovery here
    /// leaves the whole burst unannounced, so a new incarnation may
    /// safely re-announce it.
    pub const UNIVERSAL_ANNOUNCE: &str = "universal.announce";
    /// Universal construction: in the combiner, before a batch record is
    /// published and proposed for the current slot. A crash-recovery here
    /// proves the recovering process never proposed at any undecided
    /// slot, so a new incarnation may safely rejoin and propose.
    pub const UNIVERSAL_COMBINE: &str = "universal.combine";
    /// Replicated log: in a proposer, before its batch is published and
    /// proposed at the current height. A crash-recovery here leaves the
    /// height either undecided or won by someone else; the published
    /// arena is only ever read after a decision names it, so a new
    /// incarnation may safely republish and re-propose.
    pub const LOG_PROPOSE: &str = "log.propose-batch";
    /// Replicated log: in an applier, before the committed entry at the
    /// next height is applied to the local state machine. Application is
    /// a pure register read plus a deterministic replay, so a new
    /// incarnation rebuilds the exact same prefix from the registers.
    pub const LOG_APPLY: &str = "log.apply-entry";

    /// Every injection point, for schedule generators.
    pub const ALL: &[&str] = &[
        ARRAY_LOAD,
        ARRAY_STORE,
        DELAY,
        FISCHER_WRITE_X,
        FISCHER_CHECK_X,
        FISCHER_EXIT,
        RESILIENT_WRITE_X,
        RESILIENT_INNER,
        RESILIENT_EXIT,
        CONSENSUS_ROUND,
        CONSENSUS_DECIDE,
        ADAPTIVE_CONTENDED,
        ADAPTIVE_UNCONTENDED,
        WORKLOAD_NCS,
        WORKLOAD_CS,
        RECOVERABLE_ACQUIRE,
        RECOVERABLE_CS,
        RECOVERABLE_RELEASE,
        RECOVERY_SECTION,
        UNIVERSAL_ANNOUNCE,
        UNIVERSAL_COMBINE,
        LOG_PROPOSE,
        LOG_APPLY,
    ];
}

/// What happens to the thread that trips a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Freeze the thread for this long (a timing failure: models
    /// preemption, a page fault, GC, SMI, ...).
    Stall(Duration),
    /// Crash-stop the thread: it performs no further shared-memory
    /// operations. Implemented as an unwind caught by [`run_as`].
    Crash,
    /// Crash the thread, to be *recovered* after the given down time: the
    /// same unwind as [`FaultAction::Crash`], but [`run_as`] reports
    /// [`ThreadOutcome::CrashedRecoverable`] so the nemesis can restart
    /// the process as a new incarnation.
    CrashRecover(Duration),
}

/// One scheduled fault: `pid`'s `nth` visit (1-based) to `point` triggers
/// `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The victim process.
    pub pid: ProcId,
    /// The injection point name (see [`points`]).
    pub point: &'static str,
    /// Fires on the n-th visit of `point` by `pid` (1-based).
    pub nth: u64,
    /// What happens.
    pub action: FaultAction,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.action {
            FaultAction::Stall(d) => {
                write!(
                    f,
                    "{} stalls {:?} at {}#{}",
                    self.pid, d, self.point, self.nth
                )
            }
            FaultAction::Crash => {
                write!(f, "{} crashes at {}#{}", self.pid, self.point, self.nth)
            }
            FaultAction::CrashRecover(d) => {
                write!(
                    f,
                    "{} crashes (recovers after {:?}) at {}#{}",
                    self.pid, d, self.point, self.nth
                )
            }
        }
    }
}

/// A fault that actually fired during a session, with when it did.
#[derive(Debug, Clone, Copy)]
pub struct FiredFault {
    /// The scheduled fault.
    pub fault: Fault,
    /// When it fired. For a stall, the instant the stall *ended* — the
    /// moment from which "failures have stopped" convergence clocks run.
    pub at: Instant,
}

/// The process-global fault plan: routes each (pid, point, visit-count)
/// triple to an action and records what fired.
///
/// Faults are **one-shot** (each fires at most once per session — visit
/// counters reset per incarnation, so a recovered process would
/// otherwise re-trip its own crash) and **dead pids are deregistered**
/// (a crash-stopped pid attracts no further faults, even if a thread
/// re-registers under its id).
#[derive(Debug)]
pub struct FaultInjector {
    plan: HashMap<(usize, &'static str), Vec<(u64, FaultAction)>>,
    fired: Mutex<Vec<FiredFault>>,
    consumed: Mutex<HashSet<(usize, &'static str, u64)>>,
    dead: Mutex<HashSet<usize>>,
}

impl FaultInjector {
    fn new(faults: &[Fault]) -> FaultInjector {
        let mut plan: HashMap<(usize, &'static str), Vec<(u64, FaultAction)>> = HashMap::new();
        for f in faults {
            plan.entry((f.pid.0, f.point))
                .or_default()
                .push((f.nth, f.action));
        }
        FaultInjector {
            plan,
            fired: Mutex::new(Vec::new()),
            consumed: Mutex::new(HashSet::new()),
            dead: Mutex::new(HashSet::new()),
        }
    }

    /// Looks up — and consumes — the fault for this visit. Dead pids and
    /// already-fired faults get `None`.
    fn action_for(&self, pid: usize, point: &'static str, visit: u64) -> Option<FaultAction> {
        if self.is_dead(ProcId(pid)) {
            return None;
        }
        let action = self
            .plan
            .get(&(pid, point))?
            .iter()
            .find(|(nth, _)| *nth == visit)
            .map(|(_, action)| *action)?;
        let fresh = self
            .consumed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((pid, point, visit));
        fresh.then_some(action)
    }

    /// Marks `pid` dead: no further faults will be scheduled onto it.
    /// [`run_as`] calls this when a [`FaultAction::Crash`] stops the
    /// thread for good (crash-*recoveries* do not kill the pid).
    pub fn mark_dead(&self, pid: ProcId) {
        self.dead
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(pid.0);
    }

    /// Whether `pid` has been crash-stopped this session.
    pub fn is_dead(&self, pid: ProcId) -> bool {
        self.dead
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&pid.0)
    }

    /// Every pid crash-stopped so far, ascending.
    pub fn dead_pids(&self) -> Vec<ProcId> {
        let mut pids: Vec<ProcId> = self
            .dead
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|&p| ProcId(p))
            .collect();
        pids.sort();
        pids
    }

    fn record(&self, fault: Fault) {
        self.fired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(FiredFault {
                fault,
                at: Instant::now(),
            });
    }

    /// Every fault that fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The instant the last fault finished firing, if any fired — the
    /// "failures stop" reference point for convergence measurements.
    pub fn last_fired_at(&self) -> Option<Instant> {
        self.fired().last().map(|f| f.at)
    }
}

// --------------------------------------------------------------------
// Global session state
// --------------------------------------------------------------------

/// Fast-path gate: points return immediately while this is zero. Bit 0 is
/// set while a [`ChaosSession`] is installed; bit 1 while a
/// [`PointObserver`] is installed. Keeping both consumers behind one byte
/// keeps the disarmed cost of [`point`] at a single relaxed load.
static FLAGS: AtomicU8 = AtomicU8::new(0);

const FLAG_CHAOS: u8 = 1 << 0;
const FLAG_OBSERVER: u8 = 1 << 1;

fn active_cell() -> &'static RwLock<Option<Arc<FaultInjector>>> {
    static ACTIVE: OnceLock<RwLock<Option<Arc<FaultInjector>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(None))
}

fn observer_cell() -> &'static RwLock<Option<Arc<dyn PointObserver>>> {
    static OBSERVER: OnceLock<RwLock<Option<Arc<dyn PointObserver>>>> = OnceLock::new();
    OBSERVER.get_or_init(|| RwLock::new(None))
}

fn session_mutex() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

thread_local! {
    static THREAD_CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    pid: usize,
    visits: HashMap<&'static str, u64>,
}

/// An installed fault plan; dropping it disarms every point.
///
/// Sessions are serialized process-wide: `install` blocks until any other
/// session (e.g. a concurrently running chaos test) has been dropped.
/// Every nemesis run — including fault-free baseline runs — should hold a
/// session so that its registered threads can never observe another run's
/// plan.
#[must_use = "the session disarms when dropped"]
pub struct ChaosSession {
    injector: Arc<FaultInjector>,
    _serialize: MutexGuard<'static, ()>,
}

impl ChaosSession {
    /// Installs `faults` as the process-global plan and arms the points.
    pub fn install(faults: &[Fault]) -> ChaosSession {
        silence_crash_unwinds();
        let guard = session_mutex().lock().unwrap_or_else(|e| e.into_inner());
        let injector = Arc::new(FaultInjector::new(faults));
        *active_cell().write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&injector));
        FLAGS.fetch_or(FLAG_CHAOS, Ordering::SeqCst);
        ChaosSession {
            injector,
            _serialize: guard,
        }
    }

    /// The live injector, for firing statistics.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl Drop for ChaosSession {
    fn drop(&mut self) {
        FLAGS.fetch_and(!FLAG_CHAOS, Ordering::SeqCst);
        *active_cell().write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// A passive listener on the injection-point stream.
///
/// Observers see every point visit by [`run_as`]-registered threads and
/// every fault that fires, *on the visiting thread itself* — so a
/// per-process single-writer recorder (like `tfr-telemetry`'s tracer) can
/// consume the callbacks without extra synchronization. Unregistered
/// threads never reach an observer.
///
/// Callbacks run inside protocol hot paths; implementations should be
/// wait-free and must not themselves hit injection points.
pub trait PointObserver: Send + Sync {
    /// A registered thread reached `point` (fires whether or not a fault
    /// is scheduled there).
    fn point_hit(&self, pid: ProcId, point: &'static str);

    /// A fault fired at `point`. For stalls, the callback runs after the
    /// stall completes and `stalled` is its duration; for crash-stops it
    /// runs just before the unwind with `crashed = true`.
    fn fault_fired(&self, pid: ProcId, point: &'static str, stalled: Duration, crashed: bool);

    /// A [`FaultAction::CrashRecover`] fault fired at `point`; the
    /// process will be down for `down_for` before its next incarnation
    /// starts. Runs just before the unwind. The default forwards to
    /// [`PointObserver::fault_fired`] as a crash, so observers that do
    /// not distinguish recovery keep working.
    fn crash_recover_fired(&self, pid: ProcId, point: &'static str, down_for: Duration) {
        self.fault_fired(pid, point, down_for, true);
    }
}

/// Keeps a [`PointObserver`] installed; dropping it disarms the callbacks.
#[must_use = "the observer disarms when dropped"]
pub struct ObserverGuard {
    _private: (),
}

impl Drop for ObserverGuard {
    fn drop(&mut self) {
        FLAGS.fetch_and(!FLAG_OBSERVER, Ordering::SeqCst);
        *observer_cell().write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Installs `observer` as the process-global point listener. At most one
/// observer is active at a time; installing replaces the current one.
/// Observers work with or without a [`ChaosSession`], but callers that
/// want exclusivity should hold a session (sessions are serialized).
pub fn install_point_observer(observer: Arc<dyn PointObserver>) -> ObserverGuard {
    *observer_cell().write().unwrap_or_else(|e| e.into_inner()) = Some(observer);
    FLAGS.fetch_or(FLAG_OBSERVER, Ordering::SeqCst);
    ObserverGuard { _private: () }
}

fn current_observer() -> Option<Arc<dyn PointObserver>> {
    if FLAGS.load(Ordering::Relaxed) & FLAG_OBSERVER == 0 {
        return None;
    }
    observer_cell()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// The unwind payload of a crash. Private to the mechanism: it only
/// exists between the point that fires the crash and the [`run_as`] frame
/// that absorbs it. `down_for` distinguishes a permanent crash-stop
/// (`None`) from a crash-recovery (`Some(down time)`).
pub struct CrashToken {
    down_for: Option<Duration>,
}

/// Suppress the default "thread panicked" noise for crash-stop unwinds
/// while keeping it for genuine panics (e.g. failing assertions).
fn silence_crash_unwinds() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashToken>().is_none() {
                previous(info);
            }
        }));
    });
}

/// How a [`run_as`] thread ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOutcome<T> {
    /// The closure ran to completion.
    Completed(T),
    /// The thread was crash-stopped by a [`FaultAction::Crash`] fault;
    /// this pid is dead for the rest of the session.
    Crashed,
    /// The thread was crashed by a [`FaultAction::CrashRecover`] fault;
    /// after the given down time the caller may restart it as a new
    /// incarnation with another [`run_as`].
    CrashedRecoverable(Duration),
}

impl<T> ThreadOutcome<T> {
    /// `true` if the thread was crashed (recoverably or not).
    pub fn crashed(&self) -> bool {
        !matches!(self, ThreadOutcome::Completed(_))
    }

    /// The down time, if the thread crashed recoverably.
    pub fn recoverable_after(&self) -> Option<Duration> {
        match self {
            ThreadOutcome::CrashedRecoverable(d) => Some(*d),
            _ => None,
        }
    }

    /// The completion value, if the thread completed.
    pub fn completed(self) -> Option<T> {
        match self {
            ThreadOutcome::Completed(v) => Some(v),
            ThreadOutcome::Crashed | ThreadOutcome::CrashedRecoverable(_) => None,
        }
    }
}

/// Runs `f` as process `pid` under the chaos regime: injection points hit
/// by this thread consult the active session's plan, and a
/// [`FaultAction::Crash`] / [`FaultAction::CrashRecover`] fault stops `f`
/// right there.
///
/// Each call is one *incarnation* of `pid`: visit counters start from
/// zero. A permanent crash marks the pid dead in the injector; a
/// recoverable crash leaves it alive so the caller can re-enter `run_as`
/// after the reported down time.
///
/// Genuine panics (assertion failures, bugs) propagate unchanged.
pub fn run_as<T>(pid: ProcId, f: impl FnOnce() -> T) -> ThreadOutcome<T> {
    THREAD_CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(ThreadCtx {
            pid: pid.0,
            visits: HashMap::new(),
        });
    });
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    THREAD_CTX.with(|ctx| {
        *ctx.borrow_mut() = None;
    });
    match result {
        Ok(v) => ThreadOutcome::Completed(v),
        Err(payload) => match payload.downcast::<CrashToken>() {
            Ok(token) => match token.down_for {
                Some(down) => ThreadOutcome::CrashedRecoverable(down),
                None => {
                    if let Some(injector) = active_cell()
                        .read()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone()
                    {
                        injector.mark_dead(pid);
                    }
                    ThreadOutcome::Crashed
                }
            },
            Err(payload) => panic::resume_unwind(payload),
        },
    }
}

/// An injection point. Protocol code calls this at its named steps; the
/// cost with no active session or observer is one relaxed atomic load.
#[inline]
pub fn point(name: &'static str) {
    if FLAGS.load(Ordering::Relaxed) == 0 {
        return;
    }
    point_armed(name);
}

#[cold]
fn point_armed(name: &'static str) {
    // Count the visit (only registered threads participate).
    let hit = THREAD_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let ctx = ctx.as_mut()?;
        let visit = ctx.visits.entry(name).or_insert(0);
        *visit += 1;
        Some((ctx.pid, *visit))
    });
    let Some((pid, visit)) = hit else { return };
    let observer = current_observer();
    if let Some(obs) = &observer {
        obs.point_hit(ProcId(pid), name);
    }
    if FLAGS.load(Ordering::Relaxed) & FLAG_CHAOS == 0 {
        return;
    }
    let Some(injector) = active_cell()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    else {
        return;
    };
    let Some(action) = injector.action_for(pid, name, visit) else {
        return;
    };
    let fault = Fault {
        pid: ProcId(pid),
        point: name,
        nth: visit,
        action,
    };
    match action {
        FaultAction::Stall(d) => {
            stall_for(d);
            injector.record(fault);
            if let Some(obs) = &observer {
                obs.fault_fired(ProcId(pid), name, d, false);
            }
        }
        FaultAction::Crash => {
            injector.record(fault);
            if let Some(obs) = &observer {
                obs.fault_fired(ProcId(pid), name, Duration::ZERO, true);
            }
            panic::panic_any(CrashToken { down_for: None });
        }
        FaultAction::CrashRecover(down) => {
            injector.record(fault);
            if let Some(obs) = &observer {
                obs.crash_recover_fired(ProcId(pid), name, down);
            }
            panic::panic_any(CrashToken {
                down_for: Some(down),
            });
        }
    }
}

/// Freeze the calling thread for at least `d`. Deliberately point-free
/// (it must not recurse into the injector) and deliberately *blocking*:
/// the stalled thread, like a preempted one, makes no progress at all.
fn stall_for(d: Duration) {
    let deadline = Instant::now() + d;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn points_are_inert_without_a_session() {
        // No session, not even registered: must be a no-op.
        point(points::ARRAY_LOAD);
        let out = run_as(ProcId(0), || {
            point(points::ARRAY_LOAD);
            7
        });
        assert_eq!(out, ThreadOutcome::Completed(7));
    }

    #[test]
    fn stall_fires_on_the_scheduled_visit_only() {
        let session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: points::DELAY,
            nth: 2,
            action: FaultAction::Stall(Duration::from_millis(20)),
        }]);
        let elapsed = run_as(ProcId(0), || {
            let t0 = Instant::now();
            point(points::DELAY); // visit 1: no fault
            let first = t0.elapsed();
            let t1 = Instant::now();
            point(points::DELAY); // visit 2: 20ms stall
            (first, t1.elapsed())
        })
        .completed()
        .expect("no crash scheduled");
        assert!(
            elapsed.0 < Duration::from_millis(10),
            "visit 1 stalled: {:?}",
            elapsed.0
        );
        assert!(
            elapsed.1 >= Duration::from_millis(20),
            "visit 2 not stalled: {:?}",
            elapsed.1
        );
        assert_eq!(session.injector().fired().len(), 1);
        assert!(session.injector().last_fired_at().is_some());
    }

    #[test]
    fn crash_stops_the_thread_without_poisoning() {
        let counter = AtomicU64::new(0);
        let session = ChaosSession::install(&[Fault {
            pid: ProcId(1),
            point: points::WORKLOAD_NCS,
            nth: 3,
            action: FaultAction::Crash,
        }]);
        let out = run_as(ProcId(1), || {
            for _ in 0..10 {
                point(points::WORKLOAD_NCS);
                counter.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(out.crashed());
        // Two full iterations ran; the third visit crashed before the add.
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        let fired = session.injector().fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fault.action, FaultAction::Crash);
        drop(session);
        // The mechanism is fully disarmed afterwards.
        let out = run_as(ProcId(1), || {
            point(points::WORKLOAD_NCS);
            1
        });
        assert_eq!(out, ThreadOutcome::Completed(1));
    }

    #[test]
    fn faults_are_per_pid() {
        let _session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: points::ARRAY_STORE,
            nth: 1,
            action: FaultAction::Crash,
        }]);
        // A different pid sails through.
        let out = run_as(ProcId(1), || {
            point(points::ARRAY_STORE);
            42
        });
        assert_eq!(out, ThreadOutcome::Completed(42));
    }

    #[test]
    fn genuine_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_as(ProcId(0), || panic!("real bug"));
        });
        assert!(result.is_err(), "non-crash panics must not be swallowed");
    }

    #[test]
    fn observer_sees_hits_and_faults_until_disarmed() {
        struct Rec {
            hits: Mutex<Vec<(usize, &'static str)>>,
            faults: Mutex<Vec<(&'static str, Duration, bool)>>,
        }
        impl PointObserver for Rec {
            fn point_hit(&self, pid: ProcId, point: &'static str) {
                self.hits.lock().unwrap().push((pid.0, point));
            }
            fn fault_fired(
                &self,
                _pid: ProcId,
                point: &'static str,
                stalled: Duration,
                crashed: bool,
            ) {
                self.faults.lock().unwrap().push((point, stalled, crashed));
            }
        }
        // Hold a session throughout: sessions serialize chaos tests, so no
        // other test's registered threads can reach our observer.
        let _session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: points::DELAY,
            nth: 2,
            action: FaultAction::Stall(Duration::from_millis(1)),
        }]);
        let rec = Arc::new(Rec {
            hits: Mutex::new(Vec::new()),
            faults: Mutex::new(Vec::new()),
        });
        let guard = install_point_observer(rec.clone());
        // Unregistered threads never reach the observer.
        point(points::DELAY);
        run_as(ProcId(0), || {
            point(points::DELAY);
            point(points::DELAY);
        });
        assert_eq!(
            *rec.hits.lock().unwrap(),
            vec![(0, points::DELAY), (0, points::DELAY)]
        );
        let faults = rec.faults.lock().unwrap().clone();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].0, points::DELAY);
        assert_eq!(faults[0].1, Duration::from_millis(1));
        assert!(!faults[0].2);
        drop(guard);
        run_as(ProcId(0), || point(points::DELAY));
        assert_eq!(rec.hits.lock().unwrap().len(), 2, "disarmed after drop");
    }

    #[test]
    fn crash_recover_reports_the_down_time_and_keeps_the_pid_alive() {
        let session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: points::WORKLOAD_CS,
            nth: 2,
            action: FaultAction::CrashRecover(Duration::from_millis(3)),
        }]);
        let done = AtomicU64::new(0);
        let out = run_as(ProcId(0), || {
            for _ in 0..5 {
                point(points::WORKLOAD_CS);
                done.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(
            out.recoverable_after(),
            Some(Duration::from_millis(3)),
            "recoverable crash carries the down time"
        );
        assert!(out.crashed());
        assert_eq!(done.load(Ordering::SeqCst), 1, "crashed on the 2nd visit");
        assert!(
            !session.injector().is_dead(ProcId(0)),
            "a recoverable crash does not kill the pid"
        );
        // The next incarnation restarts with fresh visit counters, and the
        // consumed fault does NOT re-fire even though nth=2 matches again.
        let out = run_as(ProcId(0), || {
            for _ in 0..5 {
                point(points::WORKLOAD_CS);
                done.fetch_add(1, Ordering::SeqCst);
            }
            7
        });
        assert_eq!(out.completed(), Some(7), "faults are one-shot");
        assert_eq!(session.injector().fired().len(), 1);
    }

    #[test]
    fn dead_pids_attract_no_further_faults() {
        // Regression: a crash-stopped process used to keep its injection
        // points registered, so a later fault aimed at the dead pid could
        // still fire if a thread re-registered under that id.
        let session = ChaosSession::install(&[
            Fault {
                pid: ProcId(0),
                point: points::WORKLOAD_NCS,
                nth: 1,
                action: FaultAction::Crash,
            },
            Fault {
                pid: ProcId(0),
                point: points::DELAY,
                nth: 1,
                action: FaultAction::Stall(Duration::from_millis(50)),
            },
        ]);
        let out = run_as(ProcId(0), || point(points::WORKLOAD_NCS));
        assert_eq!(out, ThreadOutcome::Crashed);
        assert!(session.injector().is_dead(ProcId(0)));
        assert_eq!(session.injector().dead_pids(), vec![ProcId(0)]);

        let t0 = Instant::now();
        let out = run_as(ProcId(0), || {
            point(points::DELAY);
            1
        });
        assert_eq!(out, ThreadOutcome::Completed(1));
        assert!(
            t0.elapsed() < Duration::from_millis(25),
            "the stall scheduled on the dead pid must not fire"
        );
        assert_eq!(session.injector().fired().len(), 1, "only the crash fired");
    }

    #[test]
    fn faults_are_one_shot_across_incarnations() {
        let session = ChaosSession::install(&[Fault {
            pid: ProcId(3),
            point: points::DELAY,
            nth: 1,
            action: FaultAction::Stall(Duration::from_millis(30)),
        }]);
        let first = run_as(ProcId(3), || {
            let t0 = Instant::now();
            point(points::DELAY);
            t0.elapsed()
        })
        .completed()
        .unwrap();
        assert!(first >= Duration::from_millis(30), "first visit stalls");
        let second = run_as(ProcId(3), || {
            let t0 = Instant::now();
            point(points::DELAY);
            t0.elapsed()
        })
        .completed()
        .unwrap();
        assert!(
            second < Duration::from_millis(15),
            "the consumed fault must not re-fire on the next incarnation (took {second:?})"
        );
        assert_eq!(session.injector().fired().len(), 1);
    }

    #[test]
    fn observer_distinguishes_crash_recover_by_default_forwarding() {
        struct Rec {
            recovers: Mutex<Vec<(usize, &'static str, Duration)>>,
        }
        impl PointObserver for Rec {
            fn point_hit(&self, _pid: ProcId, _point: &'static str) {}
            fn fault_fired(
                &self,
                _pid: ProcId,
                _point: &'static str,
                _stalled: Duration,
                _crashed: bool,
            ) {
            }
            fn crash_recover_fired(&self, pid: ProcId, point: &'static str, down_for: Duration) {
                self.recovers.lock().unwrap().push((pid.0, point, down_for));
            }
        }
        let _session = ChaosSession::install(&[Fault {
            pid: ProcId(1),
            point: points::RECOVERABLE_CS,
            nth: 1,
            action: FaultAction::CrashRecover(Duration::from_millis(2)),
        }]);
        let rec = Arc::new(Rec {
            recovers: Mutex::new(Vec::new()),
        });
        let _guard = install_point_observer(rec.clone());
        let out = run_as(ProcId(1), || point(points::RECOVERABLE_CS));
        assert_eq!(out.recoverable_after(), Some(Duration::from_millis(2)));
        assert_eq!(
            *rec.recovers.lock().unwrap(),
            vec![(1, points::RECOVERABLE_CS, Duration::from_millis(2))]
        );
    }

    #[test]
    fn fault_display_names_the_parties() {
        let f = Fault {
            pid: ProcId(2),
            point: points::FISCHER_WRITE_X,
            nth: 1,
            action: FaultAction::Stall(Duration::from_millis(5)),
        };
        let s = f.to_string();
        assert!(s.contains("p2") && s.contains("fischer.write-x"), "{s}");
        let c = Fault {
            action: FaultAction::Crash,
            ..f
        };
        assert!(c.to_string().contains("crashes"));
        let r = Fault {
            action: FaultAction::CrashRecover(Duration::from_millis(7)),
            ..f
        };
        let s = r.to_string();
        assert!(s.contains("recovers after") && s.contains("7ms"), "{s}");
    }
}
