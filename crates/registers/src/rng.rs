//! A tiny, dependency-free, seedable PRNG for simulations and tests.
//!
//! The workspace needs reproducible randomness in three places: the
//! simulator's timing models, the chaos harness's fault schedules, and the
//! randomized tests. All three require *determinism across runs and
//! toolchains* — a printed seed must replay the exact same schedule years
//! later — which rules out `std`'s hasher-based randomness and makes an
//! external crate an unnecessary liability. [`SplitMix64`] (Steele,
//! Lea & Flood 2014) is the standard answer: 64 bits of state, full
//! period, passes BigCrush, and is four lines of code.
//!
//! The API mirrors the small subset of `rand` the workspace used:
//! [`SplitMix64::random_range`] and [`SplitMix64::random_bool`].

use std::ops::RangeInclusive;

/// SplitMix64: a fast, full-period, seedable 64-bit PRNG.
///
/// # Example
///
/// ```
/// use tfr_registers::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random value in the inclusive range.
    ///
    /// Uses rejection-free multiply-shift mapping; the bias for ranges far
    /// below 2⁶⁴ is negligible for simulation purposes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start > end`).
    pub fn random_range(&mut self, range: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo; // inclusive span − 1
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, the standard float-in-[0,1) trick.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Re-seeds the generator in place; the subsequent stream is exactly
    /// `SplitMix64::new(seed)`'s, regardless of prior draws.
    pub fn reseed(&mut self, seed: u64) {
        self.state = seed;
    }

    /// Splits off an independent child generator, advancing `self` by one
    /// draw (this is the "split" SplitMix64 is named for).
    ///
    /// The child is seeded from the parent's output run through a second
    /// mixing constant, so parent and child streams are statistically
    /// independent and forking at different points yields distinct
    /// children — use it to give each simulated process or fault
    /// schedule its own reproducible stream from one master seed.
    ///
    /// # Example
    ///
    /// ```
    /// use tfr_registers::rng::SplitMix64;
    ///
    /// let mut master = SplitMix64::new(42);
    /// let mut child_a = master.fork();
    /// let mut child_b = master.fork();
    /// assert_ne!(child_a.next_u64(), child_b.next_u64());
    /// ```
    pub fn fork(&mut self) -> SplitMix64 {
        // The golden-gamma odd constant keeps the child seed off the
        // parent's own state trajectory.
        SplitMix64::new(self.next_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// A uniformly random `usize` in `[0, n)` — handy for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot index an empty collection");
        self.random_range(0..=(n as u64 - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            let v = r.random_range(10..=20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.random_range(5..=5), 5);
    }

    #[test]
    fn full_range_supported() {
        let mut r = SplitMix64::new(9);
        let _ = r.random_range(0..=u64::MAX);
    }

    #[test]
    fn bool_extremes() {
        let mut r = SplitMix64::new(1);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
        let heads = (0..1000).filter(|_| r.random_bool(0.5)).count();
        assert!(
            (300..700).contains(&heads),
            "suspiciously biased: {heads}/1000"
        );
    }

    #[test]
    fn index_in_bounds() {
        let mut r = SplitMix64::new(2);
        for _ in 0..100 {
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn reseed_restarts_the_stream() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10 {
            r.next_u64();
        }
        r.reseed(3);
        assert_eq!(r, SplitMix64::new(3));
        assert_eq!(r.next_u64(), SplitMix64::new(3).next_u64());
    }

    #[test]
    fn fork_advances_the_parent_deterministically() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        let ca = a.fork();
        let cb = b.fork();
        assert_eq!(ca, cb, "same parent state, same child");
        assert_eq!(a, b, "fork advances both parents identically");
        assert_ne!(a.fork(), ca, "successive forks differ");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        #[allow(clippy::reversed_empty_ranges)]
        let _ = SplitMix64::new(0).random_range(5..=4);
    }
}
