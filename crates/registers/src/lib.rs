//! Register and execution-model substrate for the `tfr` workspace.
//!
//! The paper ("Computing in the Presence of Timing Failures", Taubenfeld,
//! ICDCS 2006) works in a shared-memory model whose only communication
//! primitive is the **atomic read/write register**, extended with a known
//! upper bound Δ on the duration of any single shared-memory access and an
//! explicit `delay(d)` statement. This crate provides the common vocabulary
//! that every other crate in the workspace builds on:
//!
//! * [`ProcId`] / [`RegId`] — process and register identities.
//! * [`Ticks`] / [`Delta`] — virtual time and the Δ bound.
//! * [`spec`] — the *specification form* of an algorithm: an explicit Mealy
//!   machine ([`spec::Automaton`]) whose atomic actions are single register
//!   accesses. The simulator (`tfr-sim`) and the model checker
//!   (`tfr-modelcheck`) both drive this form.
//! * [`bank`] — register files the spec form executes against.
//! * [`cow`] — the copy-on-write segmented register file used by the
//!   scaled simulator: snapshots share segments and clone on first write,
//!   so trace/replay checkpoints cost O(segments-touched) instead of
//!   O(registers).
//! * [`native`] — building blocks for the *native form* of the algorithms
//!   (real `std::sync::atomic` registers on real threads), most notably the
//!   unbounded atomic arrays that Algorithm 1's infinite `x[1..∞, 0..1]` and
//!   `y[1..∞]` arrays require.
//! * [`space`] — the backend-neutral [`space::RegisterSpace`] trait: an
//!   unbounded zero-initialized register array that both shared memory
//!   ([`space::NativeSpace`]) and the `tfr-net` quorum emulation
//!   implement, so the native algorithms run unchanged on either.
//! * [`chaos`] — native fault injection: named injection points threaded
//!   through the native stack, at which a registered thread can be stalled
//!   (a timing failure), crash-stopped, or crashed-for-recovery,
//!   deterministically by visit count.
//! * [`durable`] — the crash-*recovery* memory model: persistent vs
//!   volatile segments of a [`space::RegisterSpace`] (volatile contents
//!   reset when their owner crashes) and per-process incarnation counters
//!   for stale-write detection.
//! * [`rng`] — a tiny seedable PRNG (SplitMix64) for reproducible timing
//!   models, fault schedules, and randomized tests.
//! * [`accounting`] — static register-usage reports (experiment E9, the
//!   Burns–Lynch / Lynch–Shavit n-register lower bound of Theorem 3.1).
//!
//! # Example
//!
//! ```
//! use tfr_registers::bank::{ArrayBank, RegisterBank};
//! use tfr_registers::RegId;
//!
//! let mut bank = ArrayBank::new();
//! bank.write(RegId(3), 17);
//! assert_eq!(bank.read(RegId(3)), 17);
//! assert_eq!(bank.read(RegId(999)), 0); // registers are zero-initialized
//! ```

pub mod accounting;
pub mod bank;
pub mod chaos;
pub mod cow;
pub mod durable;
pub mod native;
pub mod rng;
pub mod space;
pub mod spec;
mod time;

pub use time::{Delta, Ticks};

use core::fmt;

/// Identity of a process (thread) participating in an algorithm.
///
/// Processes are numbered `0..n`. The paper numbers processes `1..n`; we use
/// zero-based ids throughout and encode "process i" register values as
/// `i + 1` wherever the paper stores a process id in a register whose zero
/// value means "free" (e.g. Fischer's `x` register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The register encoding of this process id where `0` means "no
    /// process" (Fischer's lock word, bakery tickets, ...).
    #[inline]
    pub fn token(self) -> u64 {
        self.0 as u64 + 1
    }

    /// Inverse of [`ProcId::token`].
    ///
    /// Returns `None` for the "no process" encoding `0`.
    #[inline]
    pub fn from_token(token: u64) -> Option<ProcId> {
        token.checked_sub(1).map(|i| ProcId(i as usize))
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId(i)
    }
}

/// Identity of a shared atomic register.
///
/// Registers hold a `u64` and are zero-initialized. Algorithms that need
/// unbounded register arrays (Algorithm 1 uses `x[1..∞, 0..1]` and
/// `y[1..∞]`) pack `(array, index)` into the 64-bit id space; each
/// algorithm's `layout` module documents its packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegId(pub u64);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for RegId {
    fn from(i: u64) -> Self {
        RegId(i)
    }
}

impl RegId {
    /// Returns the register id shifted by `base`, used to give
    /// sub-algorithms (e.g. the inner lock `A` of Algorithm 3) a private
    /// region of the register address space.
    #[inline]
    pub fn offset(self, base: u64) -> RegId {
        RegId(self.0 + base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_token_round_trip() {
        for i in [0usize, 1, 7, 1024] {
            let p = ProcId(i);
            assert_eq!(ProcId::from_token(p.token()), Some(p));
        }
        assert_eq!(ProcId::from_token(0), None);
    }

    #[test]
    fn proc_id_display() {
        assert_eq!(ProcId(3).to_string(), "p3");
    }

    #[test]
    fn reg_id_offset() {
        assert_eq!(RegId(5).offset(100), RegId(105));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<RegId> = [RegId(3), RegId(1), RegId(2)].into_iter().collect();
        assert_eq!(
            set.into_iter().collect::<Vec<_>>(),
            vec![RegId(1), RegId(2), RegId(3)]
        );
    }
}
