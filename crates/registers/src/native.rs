//! Building blocks for the *native form* of the algorithms: real
//! `std::sync::atomic` registers on real threads.
//!
//! The paper's Algorithm 1 uses the infinite register arrays
//! `x[1..∞, 0..1]` and `y[1..∞]`; a native implementation needs an array of
//! atomics that can grow without ever blocking readers for long or moving
//! existing elements (a relocated atomic would not be a register).
//! [`UnboundedAtomicArray`] provides that: a chunked, append-only array
//! where indexing takes a brief shared lock and growth takes an exclusive
//! lock, while the atomics themselves live at stable addresses inside
//! reference-counted chunks.
//!
//! [`precise_delay`] implements the `delay(d)` statement for native runs: a
//! hybrid sleep/spin wait that does not return before the deadline.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of registers per chunk (must be a power of two).
const CHUNK_LEN: usize = 1024;

struct Chunk {
    cells: Box<[AtomicU64]>,
}

impl Chunk {
    fn new() -> Arc<Chunk> {
        let cells: Vec<AtomicU64> = (0..CHUNK_LEN).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Chunk { cells: cells.into_boxed_slice() })
    }
}

/// An unbounded array of atomic `u64` registers, all zero-initialized.
///
/// * `load(i)` on a cell that was never stored to returns 0 without
///   allocating.
/// * `store(i, v)` allocates the containing chunk on demand.
/// * Cells never move once allocated, so loads and stores are genuine
///   single-register atomic operations (`SeqCst`, matching the atomic
///   register model).
///
/// # Example
///
/// ```
/// use tfr_registers::native::UnboundedAtomicArray;
///
/// let arr = UnboundedAtomicArray::new();
/// assert_eq!(arr.load(1_000_000), 0);
/// arr.store(1_000_000, 7);
/// assert_eq!(arr.load(1_000_000), 7);
/// ```
pub struct UnboundedAtomicArray {
    chunks: RwLock<Vec<Arc<Chunk>>>,
}

impl UnboundedAtomicArray {
    /// Creates an empty array (no chunks allocated).
    pub fn new() -> UnboundedAtomicArray {
        UnboundedAtomicArray { chunks: RwLock::new(Vec::new()) }
    }

    /// Creates an array with capacity for `n` registers pre-allocated, so
    /// the first `n` accesses never take the exclusive lock.
    pub fn with_capacity(n: usize) -> UnboundedAtomicArray {
        let chunks = (0..n.div_ceil(CHUNK_LEN)).map(|_| Chunk::new()).collect();
        UnboundedAtomicArray { chunks: RwLock::new(chunks) }
    }

    fn chunk_for(&self, index: usize) -> Option<Arc<Chunk>> {
        self.chunks.read().get(index / CHUNK_LEN).cloned()
    }

    fn ensure_chunk(&self, index: usize) -> Arc<Chunk> {
        if let Some(c) = self.chunk_for(index) {
            return c;
        }
        let want = index / CHUNK_LEN;
        let mut chunks = self.chunks.write();
        while chunks.len() <= want {
            chunks.push(Chunk::new());
        }
        chunks[want].clone()
    }

    /// Atomically reads register `index` (0 if never stored).
    pub fn load(&self, index: usize) -> u64 {
        match self.chunk_for(index) {
            Some(chunk) => chunk.cells[index % CHUNK_LEN].load(Ordering::SeqCst),
            None => 0,
        }
    }

    /// Atomically writes `value` to register `index`, allocating its chunk
    /// if needed.
    pub fn store(&self, index: usize, value: u64) {
        let chunk = self.ensure_chunk(index);
        chunk.cells[index % CHUNK_LEN].store(value, Ordering::SeqCst);
    }

    /// Number of registers currently backed by allocated chunks.
    pub fn capacity(&self) -> usize {
        self.chunks.read().len() * CHUNK_LEN
    }
}

impl Default for UnboundedAtomicArray {
    fn default() -> Self {
        UnboundedAtomicArray::new()
    }
}

impl std::fmt::Debug for UnboundedAtomicArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnboundedAtomicArray").field("capacity", &self.capacity()).finish()
    }
}

/// Executes the paper's `delay(d)` statement on a real thread: returns no
/// earlier than `d` after the call.
///
/// For sub-millisecond delays this spins (with [`std::hint::spin_loop`]) so
/// the overshoot stays small; longer delays sleep for the bulk of the wait
/// and spin only the final stretch. Overshoot is harmless in the paper's
/// model (`delay(d)` waits *at least* `d`); undershoot would be a
/// correctness bug for timing-based algorithms, hence the explicit deadline
/// check.
pub fn precise_delay(d: Duration) {
    let deadline = Instant::now() + d;
    // Sleep for the coarse part, leaving a spin margin for timer slop.
    const SPIN_MARGIN: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_MARGIN {
            std::thread::sleep(remaining - SPIN_MARGIN);
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cells_read_zero() {
        let arr = UnboundedAtomicArray::new();
        assert_eq!(arr.load(0), 0);
        assert_eq!(arr.load(12345678), 0);
        assert_eq!(arr.capacity(), 0, "loads must not allocate");
    }

    #[test]
    fn store_then_load() {
        let arr = UnboundedAtomicArray::new();
        arr.store(5, 42);
        arr.store(5000, 43);
        assert_eq!(arr.load(5), 42);
        assert_eq!(arr.load(5000), 43);
        assert_eq!(arr.load(4), 0);
    }

    #[test]
    fn with_capacity_preallocates() {
        let arr = UnboundedAtomicArray::with_capacity(3000);
        assert!(arr.capacity() >= 3000);
    }

    #[test]
    fn concurrent_growth_and_access() {
        let arr = UnboundedAtomicArray::new();
        let threads = 8;
        let per_thread = 2000usize;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let arr = &arr;
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        let idx = i * threads + t;
                        arr.store(idx, (idx as u64) + 1);
                        assert_eq!(arr.load(idx), (idx as u64) + 1);
                    }
                });
            }
        })
        .expect("threads join cleanly");
        for idx in 0..threads * per_thread {
            assert_eq!(arr.load(idx), (idx as u64) + 1);
        }
    }

    #[test]
    fn precise_delay_never_returns_early() {
        for micros in [50u64, 500, 2000] {
            let d = Duration::from_micros(micros);
            let start = Instant::now();
            precise_delay(d);
            assert!(start.elapsed() >= d, "delay({micros}µs) returned early");
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let arr = UnboundedAtomicArray::new();
        assert!(!format!("{arr:?}").is_empty());
    }
}
