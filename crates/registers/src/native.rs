//! Building blocks for the *native form* of the algorithms: real
//! `std::sync::atomic` registers on real threads.
//!
//! The paper's Algorithm 1 uses the infinite register arrays
//! `x[1..∞, 0..1]` and `y[1..∞]`; a native implementation needs an array of
//! atomics that can grow without ever blocking readers for long or moving
//! existing elements (a relocated atomic would not be a register).
//! [`UnboundedAtomicArray`] provides that: a chunked, append-only array
//! where indexing takes a brief shared lock and growth takes an exclusive
//! lock, while the atomics themselves live at stable addresses inside
//! reference-counted chunks.
//!
//! [`precise_delay`] implements the `delay(d)` statement for native runs: a
//! hybrid sleep/spin wait that does not return before the deadline.
//!
//! Both primitives carry [`crate::chaos`] injection points
//! ([`crate::chaos::points::ARRAY_LOAD`], [`ARRAY_STORE`][apt],
//! [`DELAY`][dpt]), so the chaos harness can stall or crash-stop a thread
//! at any shared-memory access of the native stack.
//!
//! [apt]: crate::chaos::points::ARRAY_STORE
//! [dpt]: crate::chaos::points::DELAY

use crate::chaos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of registers per chunk (must be a power of two).
const CHUNK_LEN: usize = 1024;

struct Chunk {
    cells: Box<[AtomicU64]>,
}

impl Chunk {
    fn new() -> Arc<Chunk> {
        let cells: Vec<AtomicU64> = (0..CHUNK_LEN).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Chunk {
            cells: cells.into_boxed_slice(),
        })
    }
}

/// An unbounded array of atomic `u64` registers, all zero-initialized.
///
/// * `load(i)` on a cell that was never stored to returns 0 without
///   allocating.
/// * `store(i, v)` allocates the containing chunk on demand — and *only*
///   that chunk: the directory is sparse, so a store at a huge index
///   costs one chunk plus directory slots, never every chunk below it.
///   Strided layouts (the sharded service tiles one space into
///   interleaved shard/slot regions) depend on this: their touched
///   indices are sparse in a vast index range, and memory must follow
///   what is touched, not the maximum index.
/// * Cells never move once allocated, so loads and stores are genuine
///   single-register atomic operations (`SeqCst`, matching the atomic
///   register model).
///
/// The internal `RwLock` guards only the chunk *directory*; it is never
/// held across an injection point or user-visible call, so a crash-stopped
/// thread cannot poison it (and a poisoned guard is recovered anyway).
///
/// # Example
///
/// ```
/// use tfr_registers::native::UnboundedAtomicArray;
///
/// let arr = UnboundedAtomicArray::new();
/// assert_eq!(arr.load(1_000_000), 0);
/// arr.store(1_000_000, 7);
/// assert_eq!(arr.load(1_000_000), 7);
/// ```
pub struct UnboundedAtomicArray {
    /// Sparse chunk directory: `None` entries cost a directory slot, not
    /// a chunk.
    chunks: RwLock<Vec<Option<Arc<Chunk>>>>,
}

impl UnboundedAtomicArray {
    /// Creates an empty array (no chunks allocated).
    pub fn new() -> UnboundedAtomicArray {
        UnboundedAtomicArray {
            chunks: RwLock::new(Vec::new()),
        }
    }

    /// Creates an array with capacity for `n` registers pre-allocated, so
    /// the first `n` accesses never take the exclusive lock.
    pub fn with_capacity(n: usize) -> UnboundedAtomicArray {
        let chunks = (0..n.div_ceil(CHUNK_LEN))
            .map(|_| Some(Chunk::new()))
            .collect();
        UnboundedAtomicArray {
            chunks: RwLock::new(chunks),
        }
    }

    fn chunk_for(&self, index: usize) -> Option<Arc<Chunk>> {
        self.chunks
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(index / CHUNK_LEN)
            .and_then(Option::clone)
    }

    fn ensure_chunk(&self, index: usize) -> Arc<Chunk> {
        if let Some(c) = self.chunk_for(index) {
            return c;
        }
        let want = index / CHUNK_LEN;
        let mut chunks = self.chunks.write().unwrap_or_else(|e| e.into_inner());
        if chunks.len() <= want {
            chunks.resize(want + 1, None);
        }
        chunks[want].get_or_insert_with(Chunk::new).clone()
    }

    /// Atomically reads register `index` (0 if never stored).
    pub fn load(&self, index: usize) -> u64 {
        chaos::point(chaos::points::ARRAY_LOAD);
        self.load_quiet(index)
    }

    /// Atomically writes `value` to register `index`, allocating its chunk
    /// if needed.
    pub fn store(&self, index: usize, value: u64) {
        chaos::point(chaos::points::ARRAY_STORE);
        self.store_quiet(index, value);
    }

    /// [`UnboundedAtomicArray::load`] without the chaos injection point.
    ///
    /// Backend-neutral algorithms fire their own points at the algorithm
    /// layer (a quorum backend has no array access to instrument, so the
    /// points must live above the [`crate::space::RegisterSpace`] seam);
    /// [`crate::space::NativeSpace`] therefore uses the quiet accessors.
    pub fn load_quiet(&self, index: usize) -> u64 {
        match self.chunk_for(index) {
            Some(chunk) => chunk.cells[index % CHUNK_LEN].load(Ordering::SeqCst),
            None => 0,
        }
    }

    /// [`UnboundedAtomicArray::store`] without the chaos injection point
    /// (see [`UnboundedAtomicArray::load_quiet`]).
    pub fn store_quiet(&self, index: usize, value: u64) {
        let chunk = self.ensure_chunk(index);
        chunk.cells[index % CHUNK_LEN].store(value, Ordering::SeqCst);
    }

    /// Number of registers currently backed by allocated chunks (`None`
    /// directory slots are not counted — they back nothing).
    pub fn capacity(&self) -> usize {
        self.chunks
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|c| c.is_some())
            .count()
            * CHUNK_LEN
    }

    /// The stable address of the cell backing `index`, if its chunk is
    /// allocated. A register that moved would not be a register: this is
    /// the observable contract the growth path must preserve, and the
    /// stress tests pin it down.
    pub fn cell_addr(&self, index: usize) -> Option<*const AtomicU64> {
        self.chunk_for(index)
            .map(|c| &c.cells[index % CHUNK_LEN] as *const AtomicU64)
    }
}

impl Default for UnboundedAtomicArray {
    fn default() -> Self {
        UnboundedAtomicArray::new()
    }
}

impl std::fmt::Debug for UnboundedAtomicArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnboundedAtomicArray")
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// Executes the paper's `delay(d)` statement on a real thread: returns no
/// earlier than `d` after the call.
///
/// For sub-millisecond delays this spins (with [`std::hint::spin_loop`]) so
/// the overshoot stays small; longer delays sleep for the bulk of the wait
/// and spin only the final stretch. Overshoot is harmless in the paper's
/// model (`delay(d)` waits *at least* `d`); undershoot would be a
/// correctness bug for timing-based algorithms, hence the explicit deadline
/// check. Delays too large to express as a deadline (`now + d` overflows
/// `Instant`) sleep in bounded slices instead — they still never return
/// early.
pub fn precise_delay(d: Duration) {
    chaos::point(chaos::points::DELAY);
    if d.is_zero() {
        return;
    }
    let Some(deadline) = Instant::now().checked_add(d) else {
        // Absurdly large delay: no representable deadline. Sleep in slices;
        // each iteration re-checks so the total wait is still ≥ d.
        let mut remaining = d;
        while !remaining.is_zero() {
            let slice = remaining.min(Duration::from_secs(3600));
            let start = Instant::now();
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(start.elapsed());
        }
        return;
    };
    // Sleep for the coarse part, leaving a spin margin for timer slop.
    const SPIN_MARGIN: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_MARGIN {
            std::thread::sleep(remaining - SPIN_MARGIN);
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cells_read_zero() {
        let arr = UnboundedAtomicArray::new();
        assert_eq!(arr.load(0), 0);
        assert_eq!(arr.load(12345678), 0);
        assert_eq!(arr.capacity(), 0, "loads must not allocate");
        assert!(arr.cell_addr(0).is_none(), "no chunk, no address");
    }

    #[test]
    fn store_then_load() {
        let arr = UnboundedAtomicArray::new();
        arr.store(5, 42);
        arr.store(5000, 43);
        assert_eq!(arr.load(5), 42);
        assert_eq!(arr.load(5000), 43);
        assert_eq!(arr.load(4), 0);
    }

    #[test]
    fn with_capacity_preallocates() {
        let arr = UnboundedAtomicArray::with_capacity(3000);
        assert!(arr.capacity() >= 3000);
    }

    /// A store at a huge index must allocate only its own chunk: strided
    /// register layouts (shard tiling, slot interleaving) touch sparse
    /// indices across a vast range, and memory has to track what is
    /// touched rather than the maximum index.
    #[test]
    fn high_index_store_allocates_sparsely() {
        let arr = UnboundedAtomicArray::new();
        arr.store(40_000_000, 7);
        arr.store(3, 9);
        assert_eq!(arr.load(40_000_000), 7);
        assert_eq!(arr.load(3), 9);
        assert_eq!(
            arr.capacity(),
            2 * CHUNK_LEN,
            "exactly the two touched chunks are backed"
        );
        // Untouched cells in between still read zero without allocating.
        assert_eq!(arr.load(20_000_000), 0);
        assert_eq!(arr.capacity(), 2 * CHUNK_LEN);
    }

    #[test]
    fn concurrent_growth_and_access() {
        let arr = UnboundedAtomicArray::new();
        let threads = 8;
        let per_thread = 2000usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let arr = &arr;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let idx = i * threads + t;
                        arr.store(idx, (idx as u64) + 1);
                        assert_eq!(arr.load(idx), (idx as u64) + 1);
                    }
                });
            }
        });
        for idx in 0..threads * per_thread {
            assert_eq!(arr.load(idx), (idx as u64) + 1);
        }
    }

    /// Chunk-growth stress: many threads hammer *distinct high indices*
    /// so nearly every store races the directory-growth path against
    /// other writers and readers. No write may be lost, and no cell may
    /// move (its address before and after arbitrary growth is identical).
    #[test]
    fn growth_stress_no_lost_writes_and_stable_addresses() {
        let arr = UnboundedAtomicArray::new();
        let threads = 8usize;
        let per_thread = 500usize;
        // Spread indices across many chunks: stride well past CHUNK_LEN.
        let index_of = |t: usize, i: usize| (i * threads + t) * 37 + t * 13;

        // Pin some early cells and record their addresses before the storm.
        arr.store(index_of(0, 0), u64::MAX);
        let pinned: Vec<(usize, *const AtomicU64)> = (0..threads)
            .map(|t| {
                let idx = index_of(t, 0);
                arr.store(idx, 999);
                (idx, arr.cell_addr(idx).expect("just stored"))
            })
            .collect();
        let pinned_addrs: Vec<(usize, usize)> =
            pinned.iter().map(|(i, p)| (*i, *p as usize)).collect();

        std::thread::scope(|s| {
            for t in 0..threads {
                let arr = &arr;
                s.spawn(move || {
                    for i in 1..per_thread {
                        let idx = index_of(t, i);
                        arr.store(idx, idx as u64 + 1);
                        // Immediate read-back through the directory.
                        assert_eq!(arr.load(idx), idx as u64 + 1, "lost write at {idx}");
                    }
                });
            }
        });

        // Every write from every thread is still there.
        for t in 0..threads {
            for i in 1..per_thread {
                let idx = index_of(t, i);
                assert_eq!(arr.load(idx), idx as u64 + 1, "lost write at {idx}");
            }
        }
        // The pre-growth cells neither moved nor changed.
        for (idx, addr) in pinned_addrs {
            assert_eq!(
                arr.cell_addr(idx).expect("chunk exists") as usize,
                addr,
                "cell {idx} was relocated by growth"
            );
            if idx != index_of(0, 0) {
                assert_eq!(arr.load(idx), 999);
            }
        }
    }

    #[test]
    fn precise_delay_never_returns_early() {
        for micros in [50u64, 500, 2000] {
            let d = Duration::from_micros(micros);
            let start = Instant::now();
            precise_delay(d);
            assert!(start.elapsed() >= d, "delay({micros}µs) returned early");
        }
    }

    /// The §1.2 guarantee the chaos harness leans on: `delay(d)` never
    /// undershoots, including the degenerate durations a nemesis schedule
    /// or an adaptive estimator can produce (zero, a single nanosecond,
    /// sub-millisecond values below the sleep granularity).
    #[test]
    fn precise_delay_never_early_for_degenerate_durations() {
        // Zero must return (quickly) and trivially satisfies the bound.
        let start = Instant::now();
        precise_delay(Duration::ZERO);
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "zero delay must not block"
        );

        for d in [
            Duration::from_nanos(1),
            Duration::from_nanos(100),
            Duration::from_micros(1),
            Duration::from_micros(999),
            Duration::from_millis(1) - Duration::from_nanos(1),
        ] {
            for _ in 0..10 {
                let start = Instant::now();
                precise_delay(d);
                assert!(start.elapsed() >= d, "delay({d:?}) returned early");
            }
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let arr = UnboundedAtomicArray::new();
        assert!(!format!("{arr:?}").is_empty());
    }
}
