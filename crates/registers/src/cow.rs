//! Copy-on-write segmented register file.
//!
//! [`CowBank`] stores the same zero-initialized `u64` register space as
//! [`ArrayBank`](crate::bank::ArrayBank), but splits it into fixed-size
//! segments of [`SEGMENT_WORDS`] registers, each held behind an `Arc`.
//! Cloning the bank (a *snapshot*) copies only the segment table — every
//! segment is shared — and the first write into a shared segment clones
//! just that segment ([`Arc::make_mut`]). This is what makes periodic
//! snapshotting for trace/replay affordable at 10^5–10^6 processes: a
//! snapshot costs O(segments-touched), not O(registers), and two snapshots
//! that differ in one register share every other segment.
//!
//! Equality is extensional (missing segments read as zero), so two banks
//! with different materialization histories compare equal exactly when
//! every register holds the same value — the property the simulator's
//! differential tests rely on.

use crate::bank::RegisterBank;
use crate::RegId;
use std::sync::Arc;

/// Registers per copy-on-write segment (8 KiB of `u64`s).
///
/// Large enough that the per-segment `Arc` bookkeeping is noise, small
/// enough that a workload touching one register after a snapshot only
/// duplicates 8 KiB.
pub const SEGMENT_WORDS: usize = 1024;

type Segment = [u64; SEGMENT_WORDS];

/// Segmented register file with clone-on-first-write snapshots.
///
/// Semantically identical to [`ArrayBank`](crate::bank::ArrayBank): every
/// register exists and reads 0 until written; writing 0 into untouched
/// space allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct CowBank {
    segments: Vec<Option<Arc<Segment>>>,
}

impl CowBank {
    /// Creates an empty (all-zero) register file.
    pub fn new() -> CowBank {
        CowBank::default()
    }

    /// O(segments) snapshot: the new bank shares every segment with `self`
    /// until one of the two writes into it.
    pub fn snapshot(&self) -> CowBank {
        self.clone()
    }

    /// Number of segments that have been materialized (hold at least one
    /// historically-written register).
    pub fn materialized_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.is_some()).count()
    }

    /// Number of materialized segments currently shared with at least one
    /// snapshot (strong count > 1). Accounting hook for the COW tests and
    /// the scale bench.
    pub fn shared_segments(&self) -> usize {
        self.segments
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|s| Arc::strong_count(s) > 1)
            .count()
    }

    /// Iterates over `(RegId, value)` pairs with nonzero values, in id
    /// order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (RegId, u64)> + '_ {
        self.segments.iter().enumerate().flat_map(|(si, seg)| {
            seg.iter().flat_map(move |arc| {
                arc.iter().enumerate().filter_map(move |(off, &v)| {
                    if v != 0 {
                        Some((RegId((si * SEGMENT_WORDS + off) as u64), v))
                    } else {
                        None
                    }
                })
            })
        })
    }
}

impl RegisterBank for CowBank {
    fn read(&self, reg: RegId) -> u64 {
        let idx = reg.0 as usize;
        match self.segments.get(idx / SEGMENT_WORDS) {
            Some(Some(seg)) => seg[idx % SEGMENT_WORDS],
            _ => 0,
        }
    }

    fn write(&mut self, reg: RegId, value: u64) {
        let idx = reg.0 as usize;
        let (si, off) = (idx / SEGMENT_WORDS, idx % SEGMENT_WORDS);
        if si >= self.segments.len() || self.segments[si].is_none() {
            if value == 0 {
                return; // writing the default value needs no storage
            }
            if si >= self.segments.len() {
                self.segments.resize(si + 1, None);
            }
            self.segments[si] = Some(Arc::new([0u64; SEGMENT_WORDS]));
        }
        let seg = self.segments[si].as_mut().expect("just materialized");
        Arc::make_mut(seg)[off] = value;
    }
}

impl PartialEq for CowBank {
    fn eq(&self, other: &CowBank) -> bool {
        const ZEROS: Segment = [0u64; SEGMENT_WORDS];
        let len = self.segments.len().max(other.segments.len());
        for si in 0..len {
            let a: &Segment = match self.segments.get(si) {
                Some(Some(seg)) => seg,
                _ => &ZEROS,
            };
            let b: &Segment = match other.segments.get(si) {
                Some(Some(seg)) => seg,
                _ => &ZEROS,
            };
            // Shared segments (same allocation) are equal without scanning.
            if std::ptr::eq(a, b) {
                continue;
            }
            if a != b {
                return false;
            }
        }
        true
    }
}

impl Eq for CowBank {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::ArrayBank;
    use crate::rng::SplitMix64;

    #[test]
    fn default_zero_without_allocation() {
        let bank = CowBank::new();
        assert_eq!(bank.read(RegId(0)), 0);
        assert_eq!(bank.read(RegId(1 << 20)), 0);
        assert_eq!(bank.materialized_segments(), 0);
    }

    #[test]
    fn zero_write_to_fresh_space_is_free() {
        let mut bank = CowBank::new();
        bank.write(RegId(1 << 30), 0);
        assert_eq!(bank.materialized_segments(), 0);
    }

    #[test]
    fn read_back_and_extensional_equality() {
        let mut a = CowBank::new();
        let mut b = CowBank::new();
        a.write(RegId(7), 99);
        assert_eq!(a.read(RegId(7)), 99);
        assert_ne!(a, b);
        // Different histories, same contents: equal.
        b.write(RegId(9000), 1);
        b.write(RegId(9000), 0);
        b.write(RegId(7), 99);
        assert_eq!(a, b);
    }

    /// Random write patterns against the plain `ArrayBank` oracle: after
    /// any write sequence, every register reads back identically. 64 seeds
    /// so failures replay deterministically (seed printed in the assert).
    #[test]
    fn cow_bank_matches_array_oracle() {
        for case in 0..64u64 {
            let mut rng = SplitMix64::new(0x5e6_c0de ^ (case << 16));
            let mut cow = CowBank::new();
            let mut oracle = ArrayBank::new();
            let ops = rng.random_range(0..=299);
            for _ in 0..ops {
                // Bias toward segment boundaries so off==0 and off==MAX
                // edges are exercised.
                let reg = match rng.random_range(0..=3) {
                    0 => rng.random_range(0..=7) * SEGMENT_WORDS as u64,
                    1 => rng.random_range(1..=7) * SEGMENT_WORDS as u64 - 1,
                    _ => rng.random_range(0..=(4 * SEGMENT_WORDS as u64)),
                };
                let val = if rng.random_range(0..=4) == 0 {
                    0
                } else {
                    rng.next_u64()
                };
                cow.write(RegId(reg), val);
                oracle.write(RegId(reg), val);
            }
            for reg in 0..(8 * SEGMENT_WORDS as u64) {
                assert_eq!(
                    cow.read(RegId(reg)),
                    oracle.read(RegId(reg)),
                    "case {case} register {reg}"
                );
            }
        }
    }

    /// A snapshot is isolated from subsequent writes in either direction,
    /// and sharing accounting reflects the clone-on-first-write behaviour.
    #[test]
    fn snapshot_then_diverge_isolation() {
        let mut bank = CowBank::new();
        for i in 0..4 {
            bank.write(RegId(i * SEGMENT_WORDS as u64), i + 1);
        }
        let snap = bank.snapshot();
        assert_eq!(snap, bank);
        assert_eq!(bank.shared_segments(), 4, "snapshot shares all segments");

        // Diverge the original: only the touched segment is duplicated.
        bank.write(RegId(0), 42);
        assert_eq!(bank.read(RegId(0)), 42);
        assert_eq!(snap.read(RegId(0)), 1, "snapshot must keep the old value");
        assert_eq!(bank.shared_segments(), 3);
        assert_ne!(snap, bank);

        // Diverge the snapshot too; the original is unaffected.
        let mut snap = snap;
        snap.write(RegId(SEGMENT_WORDS as u64), 77);
        assert_eq!(bank.read(RegId(SEGMENT_WORDS as u64)), 2);
        assert_eq!(snap.read(RegId(SEGMENT_WORDS as u64)), 77);
    }

    /// Repeated snapshots under a sliding write pattern stay equal to an
    /// `ArrayBank` replay of the same prefix — the trace/replay use case.
    #[test]
    fn snapshot_history_matches_prefix_replay() {
        let mut rng = SplitMix64::new(0x5e6_0003);
        let mut bank = CowBank::new();
        let mut writes: Vec<(u64, u64)> = Vec::new();
        let mut snaps: Vec<(usize, CowBank)> = Vec::new();
        for step in 0..200 {
            let reg = rng.random_range(0..=(2 * SEGMENT_WORDS as u64));
            let val = rng.next_u64();
            bank.write(RegId(reg), val);
            writes.push((reg, val));
            if step % 40 == 0 {
                snaps.push((writes.len(), bank.snapshot()));
            }
        }
        for (prefix, snap) in snaps {
            let mut replay = ArrayBank::new();
            for &(reg, val) in &writes[..prefix] {
                replay.write(RegId(reg), val);
            }
            for reg in 0..(2 * SEGMENT_WORDS as u64 + 1) {
                assert_eq!(snap.read(RegId(reg)), replay.read(RegId(reg)));
            }
        }
    }

    #[test]
    fn iter_nonzero_in_id_order() {
        let mut bank = CowBank::new();
        bank.write(RegId(SEGMENT_WORDS as u64 + 3), 5);
        bank.write(RegId(2), 9);
        let pairs: Vec<_> = bank.iter_nonzero().collect();
        assert_eq!(
            pairs,
            vec![(RegId(2), 9), (RegId(SEGMENT_WORDS as u64 + 3), 5)]
        );
    }
}
