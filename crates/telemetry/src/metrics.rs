//! The metrics registry: atomic counters and log-bucketed histograms,
//! updatable inline from any thread or derived after the fact from a
//! recorded event stream.

use crate::event::{Event, EventKind};
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
///
/// # Example
///
/// ```
/// use tfr_telemetry::Counter;
///
/// let c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of `u64`, plus a
/// zero bucket at index 0.
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `i ≥ 1` covers `[2^(i−1), 2^i)`; bucket 0 holds exact zeros.
/// Log bucketing trades precision for a fixed footprint and wait-free
/// recording — the right trade for latency distributions spanning
/// nanoseconds to seconds.
///
/// # Example
///
/// ```
/// use tfr_telemetry::Histogram;
///
/// let h = Histogram::default();
/// for v in [100u64, 200, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 10_700);
/// // Quantiles report the upper edge of the owning bucket.
/// assert!(h.quantile(0.5) >= 200);
/// assert!(h.quantile(1.0) >= 10_000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        match v {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        match self.count() {
            0 => 0.0,
            n => self.sum() as f64 / n as f64,
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. Within-bucket position is unknown,
    /// so this overestimates by at most 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    i => 1u64 << i,
                };
            }
        }
        self.max()
    }

    /// `(bucket upper bound, count)` for every non-empty bucket.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| match b.load(Ordering::Relaxed) {
                0 => None,
                c => Some((
                    match i {
                        0 => 0,
                        64 => u64::MAX,
                        i => 1u64 << i,
                    },
                    c,
                )),
            })
            .collect()
    }

    /// A JSON snapshot: count, sum, mean, max, p50/p99, buckets.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count() as f64)),
            ("sum", Json::Num(self.sum() as f64)),
            ("mean", Json::Num(self.mean())),
            ("max", Json::Num(self.max() as f64)),
            ("p50", Json::Num(self.quantile(0.5) as f64)),
            ("p99", Json::Num(self.quantile(0.99) as f64)),
            (
                "buckets",
                Json::Arr(
                    self.nonempty_buckets()
                        .into_iter()
                        .map(|(le, c)| {
                            Json::obj([
                                ("le", Json::Num(le as f64)),
                                ("count", Json::Num(c as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A named registry of counters and histograms.
///
/// Handles are `Arc`s: get one once, update it lock-free forever after —
/// the registry lock is only taken at get-or-create and snapshot time.
///
/// # Example
///
/// ```
/// use tfr_telemetry::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("retries").incr();
/// reg.histogram("entry_wait_ns").record(1_500);
/// let snapshot = reg.to_json();
/// assert!(snapshot.get("counters").unwrap().get("retries").is_some());
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A JSON snapshot of every metric, keys sorted.
    pub fn to_json(&self) -> Json {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Json::obj([
            (
                "counters",
                Json::Obj(
                    counters
                        .iter()
                        .map(|(k, c)| (k.clone(), Json::Num(c.get() as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Derives the standard metrics from a recorded event stream:
    ///
    /// * `entry_wait_ns` — histogram of lock entry latencies;
    /// * `delay_ns` — histogram of requested `delay(d)` durations;
    /// * `rounds_to_decide` — histogram of the round each decider was in;
    /// * `retries`, `faults_fired`, `delta_changes`, `cs_entries`,
    ///   `decisions` — counters.
    ///
    /// Network-backend streams additionally yield `msgs_sent`,
    /// `msgs_dropped` and `quorum_ops` counters plus
    /// `quorum_read_rtt_ns` / `quorum_write_rtt_ns` histograms; these are
    /// created lazily on the first network event, so shared-memory runs
    /// keep their exact metric set.
    pub fn from_events(events: &[Event]) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let entry_wait = reg.histogram("entry_wait_ns");
        let delay = reg.histogram("delay_ns");
        let rounds = reg.histogram("rounds_to_decide");
        let retries = reg.counter("retries");
        let faults = reg.counter("faults_fired");
        let delta_changes = reg.counter("delta_changes");
        let cs_entries = reg.counter("cs_entries");
        let decisions = reg.counter("decisions");
        let mut last_round: BTreeMap<usize, u64> = BTreeMap::new();
        let mut down_since: BTreeMap<usize, u64> = BTreeMap::new();
        for e in events {
            match e.kind {
                EventKind::LockAcquired { wait_ns } => {
                    cs_entries.incr();
                    entry_wait.record(wait_ns);
                }
                EventKind::DelayStart { requested_ns } => delay.record(requested_ns),
                EventKind::Retry { .. } => retries.incr(),
                EventKind::FaultFired { .. } => faults.incr(),
                EventKind::DeltaChanged { .. } => delta_changes.incr(),
                EventKind::RoundStart { round } => {
                    last_round.insert(e.pid.0, round);
                }
                EventKind::Decided { .. } => {
                    decisions.incr();
                    rounds.record(last_round.get(&e.pid.0).copied().unwrap_or(1));
                }
                // Recovery metrics are created lazily on the first
                // crash-recover event, like the network set, so runs
                // without recoveries keep their exact metric set.
                EventKind::CrashRecover { .. } => {
                    reg.counter("crash_recoveries").incr();
                    down_since.insert(e.pid.0, e.ts_ns);
                }
                EventKind::Recovered { repaired, .. } => {
                    if let Some(t0) = down_since.remove(&e.pid.0) {
                        reg.histogram("recovery_ns")
                            .record(e.ts_ns.saturating_sub(t0));
                    }
                    if repaired {
                        reg.counter("cs_repairs").incr();
                    }
                }
                // Service metrics are created lazily on the first service
                // event, like the network set.
                EventKind::ServiceEnqueue { .. } => reg.counter("service_enqueues").incr(),
                EventKind::BatchCommit { size, .. } => {
                    reg.counter("batch_commits").incr();
                    reg.histogram("batch_size").record(size);
                }
                EventKind::MsgSend { .. } => reg.counter("msgs_sent").incr(),
                EventKind::MsgDropped { .. } => reg.counter("msgs_dropped").incr(),
                EventKind::QuorumEnd { write, rtt_ns, .. } => {
                    reg.counter("quorum_ops").incr();
                    let name = if write {
                        "quorum_write_rtt_ns"
                    } else {
                        "quorum_read_rtt_ns"
                    };
                    reg.histogram(name).record(rtt_ns);
                }
                _ => {}
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::ProcId;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16) → upper bound 16
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 16);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonempty_buckets().is_empty());
    }

    #[test]
    fn bucket_boundaries_hold_for_every_power_of_two() {
        // Bucket i ≥ 1 covers [2^(i−1), 2^i): an exact power of two is the
        // *lowest* value of its bucket, and the value just below it is the
        // highest value of the previous one.
        for k in 1..64usize {
            let v = 1u64 << k;
            assert_eq!(
                Histogram::bucket_of(v),
                k + 1,
                "2^{k} opens bucket {}",
                k + 1
            );
            assert_eq!(Histogram::bucket_of(v - 1), k, "2^{k}−1 closes bucket {k}");
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Single-sample histograms at the edges: the quantile must be an
        // upper bound of the recorded value.
        for v in [0u64, 1, 2, u64::MAX, u64::MAX - 1, 1u64 << 63] {
            let h = Histogram::default();
            h.record(v);
            assert!(h.quantile(1.0) >= v, "quantile bound broken for {v}");
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn quantiles_are_monotone_over_seeded_samples() {
        use tfr_registers::rng::SplitMix64;
        // 64 seeded sample sets spanning the full u64 range: quantiles
        // must be monotone in q, bounded by the bucket guarantee (at most
        // 2× above the true max), and p100 must cover every sample.
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(seed);
            let h = Histogram::default();
            let mut true_max = 0u64;
            for _ in 0..512 {
                // A random magnitude keeps all 65 buckets reachable.
                let shift = rng.random_range(0..=63) as u32;
                let v = rng.random_range(0..=u64::MAX) >> shift;
                h.record(v);
                true_max = true_max.max(v);
            }
            let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
            assert!(
                qs.windows(2).all(|w| w[0] <= w[1]),
                "quantiles regress for seed {seed}: {qs:?}"
            );
            assert!(
                h.quantile(1.0) >= true_max,
                "p100 below max for seed {seed}"
            );
            assert_eq!(h.max(), true_max);
            assert_eq!(h.count(), 512);
        }
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        assert_eq!(b.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_recording_is_exact_for_counts() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = reg.histogram("lat");
                let c = reg.counter("ops");
                s.spawn(move || {
                    for v in 0..1_000u64 {
                        h.record(v);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(reg.histogram("lat").count(), 4_000);
        assert_eq!(reg.counter("ops").get(), 4_000);
    }

    #[test]
    fn from_events_derives_the_standard_metrics() {
        let mk = |ts_ns, kind| Event {
            ts_ns,
            pid: ProcId(0),
            kind,
        };
        let events = vec![
            mk(0, EventKind::LockWaitStart),
            mk(
                10,
                EventKind::Retry {
                    point: "fischer.check-x",
                },
            ),
            mk(
                20,
                EventKind::DeltaChanged {
                    estimate_ns: 100,
                    contended: true,
                },
            ),
            mk(30, EventKind::LockAcquired { wait_ns: 30 }),
            mk(40, EventKind::DelayStart { requested_ns: 500 }),
            mk(
                50,
                EventKind::FaultFired {
                    point: "delay.pre",
                    stall_ns: 9,
                    crashed: false,
                },
            ),
            mk(60, EventKind::RoundStart { round: 2 }),
            mk(70, EventKind::Decided { value: 1 }),
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counter("retries").get(), 1);
        assert_eq!(reg.counter("faults_fired").get(), 1);
        assert_eq!(reg.counter("delta_changes").get(), 1);
        assert_eq!(reg.counter("cs_entries").get(), 1);
        assert_eq!(reg.histogram("entry_wait_ns").sum(), 30);
        assert_eq!(reg.histogram("delay_ns").sum(), 500);
        assert_eq!(reg.histogram("rounds_to_decide").sum(), 2);
    }
}
