//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the Trace Event Format (the `{"traceEvents": [...]}` JSON that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev) load
//! directly): one *trace process* per added run, one *trace thread* per
//! [`ProcId`], complete (`"X"`) spans for delays / entry sections /
//! critical sections, instant (`"i"`) markers for retries, faults,
//! decisions and point hits, and a counter (`"C"`) track following the
//! AIMD Δ estimate over time.
//!
//! Timestamps in the format are microseconds; events carry nanoseconds,
//! so exported `ts` values are fractional µs (allowed by the format).

use crate::event::{Event, EventKind};
use crate::json::Json;
use std::collections::BTreeMap;
use tfr_registers::ProcId;

fn us(ts_ns: u64) -> Json {
    Json::Num(ts_ns as f64 / 1_000.0)
}

fn base(name: String, ph: &str, pid: u64, tid: usize, ts_ns: u64) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::Str(name)),
        ("ph".to_string(), Json::str(ph)),
        ("pid".to_string(), Json::Num(pid as f64)),
        ("tid".to_string(), Json::Num(tid as f64)),
        ("ts".to_string(), us(ts_ns)),
    ]
}

fn complete(name: String, pid: u64, tid: usize, start_ns: u64, end_ns: u64, args: Json) -> Json {
    let mut ev = base(name, "X", pid, tid, start_ns);
    ev.push(("dur".to_string(), us(end_ns.saturating_sub(start_ns))));
    ev.push(("args".to_string(), args));
    Json::Obj(ev)
}

fn instant(name: String, pid: u64, tid: usize, ts_ns: u64, args: Json) -> Json {
    let mut ev = base(name, "i", pid, tid, ts_ns);
    ev.push(("s".to_string(), Json::str("t")));
    ev.push(("args".to_string(), args));
    Json::Obj(ev)
}

fn metadata(name: &str, pid: u64, tid: usize, label: String) -> Json {
    let mut ev = base(name.to_string(), "M", pid, tid, 0);
    ev.push(("args".to_string(), Json::obj([("name", Json::Str(label))])));
    Json::Obj(ev)
}

/// A flow event (`ph:"s"` at the send, `ph:"f"` at the receive). The
/// viewer binds the pair by matching `cat` + `name` + `id`; `bp:"e"` on
/// the finish end attaches the arrow to the enclosing slice.
fn flow(ph: &str, id: u64, name: String, pid: u64, tid: usize, ts_ns: u64) -> Json {
    let mut ev = base(name, ph, pid, tid, ts_ns);
    ev.push(("cat".to_string(), Json::str("net")));
    ev.push(("id".to_string(), Json::Num(id as f64)));
    if ph == "f" {
        ev.push(("bp".to_string(), Json::str("e")));
    }
    Json::Obj(ev)
}

/// Builds one combined Chrome trace out of any number of runs — native
/// and simulated timelines side by side in one viewer.
///
/// # Example
///
/// ```
/// use tfr_telemetry::chrome::ChromeTraceBuilder;
/// use tfr_telemetry::json::Json;
/// use tfr_telemetry::{Event, EventKind};
/// use tfr_registers::ProcId;
///
/// let events = [
///     Event { ts_ns: 0, pid: ProcId(0), kind: EventKind::LockWaitStart },
///     Event { ts_ns: 2_000, pid: ProcId(0), kind: EventKind::LockAcquired { wait_ns: 2_000 } },
///     Event { ts_ns: 5_000, pid: ProcId(0), kind: EventKind::LockReleased },
/// ];
/// let mut builder = ChromeTraceBuilder::new();
/// builder.add_run("native resilient-mutex", &events);
/// let text = builder.render();
/// // The export is valid JSON with a non-empty traceEvents array.
/// let parsed = Json::parse(&text).unwrap();
/// assert!(!parsed.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<Json>,
    next_pid: u64,
    next_flow: u64,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> ChromeTraceBuilder {
        ChromeTraceBuilder::default()
    }

    /// Adds one run as its own trace process named `name`. Events must be
    /// a merged timeline (sorted by `ts_ns`, as [`crate::Tracer::events`]
    /// returns).
    pub fn add_run(&mut self, name: &str, events: &[Event]) -> &mut ChromeTraceBuilder {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.events
            .push(metadata("process_name", pid, 0, name.to_string()));

        let mut seen_tids: BTreeMap<usize, ()> = BTreeMap::new();
        // Per-process open spans, closed by the matching end event.
        let mut delay_open: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        let mut wait_open: BTreeMap<usize, u64> = BTreeMap::new();
        let mut cs_open: BTreeMap<usize, u64> = BTreeMap::new();
        let mut quorum_open: BTreeMap<usize, u64> = BTreeMap::new();
        let mut down_open: BTreeMap<usize, u64> = BTreeMap::new();
        // Causal spans: id → (tid, start, parent, label). Ids are global,
        // so one map covers every lane of the run.
        let mut span_open: BTreeMap<u64, (usize, u64, u64, &'static str)> = BTreeMap::new();
        // Message flow pairing: a send on (span, from, to) waits for the
        // matching receive; the timeline is sorted, so sends come first.
        let mut pending_sends: BTreeMap<(u64, usize, usize), std::collections::VecDeque<u64>> =
            BTreeMap::new();

        for e in events {
            let ProcId(tid) = e.pid;
            if seen_tids.insert(tid, ()).is_none() {
                self.events
                    .push(metadata("thread_name", pid, tid, format!("p{tid}")));
            }
            match e.kind {
                EventKind::DelayStart { requested_ns } => {
                    delay_open.insert(tid, (e.ts_ns, requested_ns));
                }
                EventKind::DelayEnd => {
                    if let Some((start, requested_ns)) = delay_open.remove(&tid) {
                        self.events.push(complete(
                            "delay(Δ)".to_string(),
                            pid,
                            tid,
                            start,
                            e.ts_ns,
                            Json::obj([("requested_ns", Json::Num(requested_ns as f64))]),
                        ));
                    }
                }
                EventKind::LockWaitStart => {
                    wait_open.insert(tid, e.ts_ns);
                }
                EventKind::LockAcquired { wait_ns } => {
                    let start = wait_open
                        .remove(&tid)
                        .unwrap_or(e.ts_ns.saturating_sub(wait_ns));
                    self.events.push(complete(
                        "entry".to_string(),
                        pid,
                        tid,
                        start,
                        e.ts_ns,
                        Json::obj([("wait_ns", Json::Num(wait_ns as f64))]),
                    ));
                    cs_open.insert(tid, e.ts_ns);
                }
                EventKind::LockReleased => {
                    if let Some(start) = cs_open.remove(&tid) {
                        self.events.push(complete(
                            "critical section".to_string(),
                            pid,
                            tid,
                            start,
                            e.ts_ns,
                            Json::obj([] as [(&str, Json); 0]),
                        ));
                    }
                }
                EventKind::DeltaChanged {
                    estimate_ns,
                    contended,
                } => {
                    // An instant marker on the thread's own track…
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([
                            ("estimate_ns", Json::Num(estimate_ns as f64)),
                            ("contended", Json::Bool(contended)),
                        ]),
                    ));
                    // …and a counter sample so Perfetto draws the estimate
                    // as a curve over time.
                    let mut ev = base("Δ estimate (ns)".to_string(), "C", pid, tid, e.ts_ns);
                    ev.push((
                        "args".to_string(),
                        Json::obj([("estimate_ns", Json::Num(estimate_ns as f64))]),
                    ));
                    self.events.push(Json::Obj(ev));
                }
                EventKind::FaultFired {
                    point,
                    stall_ns,
                    crashed,
                } => {
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([
                            ("point", Json::str(point)),
                            ("stall_ns", Json::Num(stall_ns as f64)),
                            ("crashed", Json::Bool(crashed)),
                        ]),
                    ));
                }
                EventKind::CrashRecover { point, down_ns } => {
                    // An instant marker where the crash hit…
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([
                            ("point", Json::str(point)),
                            ("down_ns", Json::Num(down_ns as f64)),
                        ]),
                    ));
                    // …and the start of the down-until-recovered span.
                    down_open.insert(tid, e.ts_ns);
                    // A crash inside an open span abandons it (the pid
                    // stopped mid-passage); drop the halves so the next
                    // incarnation's spans pair cleanly.
                    wait_open.remove(&tid);
                    cs_open.remove(&tid);
                    delay_open.remove(&tid);
                }
                EventKind::Recovered {
                    incarnation,
                    repaired,
                } => {
                    if let Some(start) = down_open.remove(&tid) {
                        self.events.push(complete(
                            "down + recovery".to_string(),
                            pid,
                            tid,
                            start,
                            e.ts_ns,
                            Json::obj([
                                ("incarnation", Json::Num(incarnation as f64)),
                                ("repaired", Json::Bool(repaired)),
                            ]),
                        ));
                    }
                }
                EventKind::QuorumStart { .. } => {
                    quorum_open.insert(tid, e.ts_ns);
                }
                EventKind::QuorumEnd { reg, write, rtt_ns } => {
                    let start = quorum_open
                        .remove(&tid)
                        .unwrap_or(e.ts_ns.saturating_sub(rtt_ns));
                    self.events.push(complete(
                        format!("quorum {} r{reg}", if write { "write" } else { "read" }),
                        pid,
                        tid,
                        start,
                        e.ts_ns,
                        Json::obj([("rtt_ns", Json::Num(rtt_ns as f64))]),
                    ));
                }
                EventKind::SpanStart {
                    span,
                    parent,
                    label,
                } => {
                    span_open.insert(span, (tid, e.ts_ns, parent, label));
                }
                EventKind::SpanEnd { span } => {
                    if let Some((span_tid, start, parent, label)) = span_open.remove(&span) {
                        self.events.push(complete(
                            label.to_string(),
                            pid,
                            span_tid,
                            start,
                            e.ts_ns,
                            Json::obj([
                                ("span", Json::Num(span as f64)),
                                ("parent", Json::Num(parent as f64)),
                            ]),
                        ));
                    }
                }
                EventKind::MsgSend { to, reg: _, span } => {
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([("span", Json::Num(span as f64))]),
                    ));
                    if span != 0 {
                        pending_sends
                            .entry((span, tid, to.0))
                            .or_default()
                            .push_back(e.ts_ns);
                    }
                }
                EventKind::MsgRecv { from, reg, span } => {
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([("span", Json::Num(span as f64))]),
                    ));
                    // Tie the receive back to the earliest unmatched send
                    // of the same span on this link with a flow arrow.
                    if span != 0 {
                        if let Some(sent_ts) = pending_sends
                            .get_mut(&(span, from.0, tid))
                            .and_then(|q| q.pop_front())
                        {
                            let id = self.next_flow;
                            self.next_flow += 1;
                            let name = format!("msg r{reg} #{span}");
                            self.events
                                .push(flow("s", id, name.clone(), pid, from.0, sent_ts));
                            self.events.push(flow("f", id, name, pid, tid, e.ts_ns));
                        }
                    }
                }
                EventKind::QuorumVersion { reg, ts, wid } => {
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([
                            ("reg", Json::Num(reg as f64)),
                            ("ts", Json::Num(ts as f64)),
                            ("wid", Json::Num(wid as f64)),
                        ]),
                    ));
                }
                EventKind::RegRead { .. }
                | EventKind::RegWrite { .. }
                | EventKind::RegCas { .. }
                | EventKind::Retry { .. }
                | EventKind::RoundStart { .. }
                | EventKind::Decided { .. }
                | EventKind::PointHit { .. }
                | EventKind::MsgDropped { .. }
                | EventKind::ServiceEnqueue { .. }
                | EventKind::BatchCommit { .. }
                | EventKind::HeightDecide { .. }
                | EventKind::LogApply { .. }
                | EventKind::Mark { .. } => {
                    self.events.push(instant(
                        e.kind.label(),
                        pid,
                        tid,
                        e.ts_ns,
                        Json::obj([] as [(&str, Json); 0]),
                    ));
                }
            }
        }

        // A crash-stopped thread can leave spans open; render them as
        // zero-length markers so nothing silently disappears.
        for (tid, (start, _)) in delay_open {
            self.events.push(instant(
                "delay (unfinished)".to_string(),
                pid,
                tid,
                start,
                Json::obj([] as [(&str, Json); 0]),
            ));
        }
        for (tid, start) in wait_open {
            self.events.push(instant(
                "entry (unfinished)".to_string(),
                pid,
                tid,
                start,
                Json::obj([] as [(&str, Json); 0]),
            ));
        }
        for (tid, start) in cs_open {
            self.events.push(instant(
                "critical section (unfinished)".to_string(),
                pid,
                tid,
                start,
                Json::obj([] as [(&str, Json); 0]),
            ));
        }
        for (tid, start) in quorum_open {
            self.events.push(instant(
                "quorum op (unfinished)".to_string(),
                pid,
                tid,
                start,
                Json::obj([] as [(&str, Json); 0]),
            ));
        }
        for (span, (tid, start, parent, label)) in span_open {
            self.events.push(instant(
                format!("{label} (unfinished)"),
                pid,
                tid,
                start,
                Json::obj([
                    ("span", Json::Num(span as f64)),
                    ("parent", Json::Num(parent as f64)),
                ]),
            ));
        }
        self
    }

    /// Number of emitted trace records so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The trace as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::str("ns")),
        ])
    }

    /// The trace serialized for writing to a `.json` file.
    pub fn render(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, pid: usize, kind: EventKind) -> Event {
        Event {
            ts_ns,
            pid: ProcId(pid),
            kind,
        }
    }

    fn events_named<'a>(json: &'a Json, name: &str) -> Vec<&'a Json> {
        json.get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    }

    #[test]
    fn runs_become_separate_trace_processes() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run("native", &[ev(0, 0, EventKind::LockWaitStart)]);
        b.add_run("sim", &[ev(0, 0, EventKind::RoundStart { round: 1 })]);
        let json = b.to_json();
        let meta = events_named(&json, "process_name");
        assert_eq!(meta.len(), 2);
        let pids: Vec<f64> = meta
            .iter()
            .map(|m| m.get("pid").unwrap().as_num().unwrap())
            .collect();
        assert_ne!(pids[0], pids[1]);
    }

    #[test]
    fn spans_pair_start_and_end() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[
                ev(1_000, 0, EventKind::DelayStart { requested_ns: 500 }),
                ev(3_000, 0, EventKind::DelayEnd),
            ],
        );
        let json = b.to_json();
        let spans = events_named(&json, "delay(Δ)");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(spans[0].get("ts").unwrap().as_num(), Some(1.0));
        assert_eq!(spans[0].get("dur").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn cs_span_runs_from_acquire_to_release() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[
                ev(0, 1, EventKind::LockWaitStart),
                ev(4_000, 1, EventKind::LockAcquired { wait_ns: 4_000 }),
                ev(9_000, 1, EventKind::LockReleased),
            ],
        );
        let json = b.to_json();
        assert_eq!(events_named(&json, "entry").len(), 1);
        let cs = events_named(&json, "critical section");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].get("dur").unwrap().as_num(), Some(5.0));
    }

    #[test]
    fn delta_changes_get_a_counter_track() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[ev(
                100,
                0,
                EventKind::DeltaChanged {
                    estimate_ns: 2_000,
                    contended: true,
                },
            )],
        );
        let json = b.to_json();
        let counters = events_named(&json, "Δ estimate (ns)");
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("ph").unwrap().as_str(), Some("C"));
    }

    #[test]
    fn unfinished_spans_surface_as_markers() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run("r", &[ev(0, 0, EventKind::LockWaitStart)]);
        let json = b.to_json();
        assert_eq!(events_named(&json, "entry (unfinished)").len(), 1);
    }

    #[test]
    fn causal_spans_become_nested_slices() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[
                ev(
                    0,
                    0,
                    EventKind::SpanStart {
                        span: 10,
                        parent: 0,
                        label: "client.op",
                    },
                ),
                ev(
                    1_000,
                    0,
                    EventKind::SpanStart {
                        span: 11,
                        parent: 10,
                        label: "quorum.phase1",
                    },
                ),
                ev(4_000, 0, EventKind::SpanEnd { span: 11 }),
                ev(5_000, 0, EventKind::SpanEnd { span: 10 }),
            ],
        );
        let json = b.to_json();
        let child = events_named(&json, "quorum.phase1");
        assert_eq!(child.len(), 1);
        assert_eq!(child[0].get("ph").unwrap().as_str(), Some("X"));
        let args = child[0].get("args").unwrap();
        assert_eq!(args.get("span").unwrap().as_num(), Some(11.0));
        assert_eq!(args.get("parent").unwrap().as_num(), Some(10.0));
        let root = events_named(&json, "client.op");
        assert_eq!(
            root[0].get("args").unwrap().get("parent").unwrap().as_num(),
            Some(0.0)
        );
        assert_eq!(root[0].get("dur").unwrap().as_num(), Some(5.0));
    }

    #[test]
    fn unfinished_span_surfaces_as_marker() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[ev(
                0,
                0,
                EventKind::SpanStart {
                    span: 1,
                    parent: 0,
                    label: "consensus",
                },
            )],
        );
        let json = b.to_json();
        assert_eq!(events_named(&json, "consensus (unfinished)").len(), 1);
    }

    #[test]
    fn stamped_messages_get_flow_arrows() {
        use tfr_registers::ProcId;
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[
                ev(
                    100,
                    0,
                    EventKind::MsgSend {
                        to: ProcId(2),
                        reg: 5,
                        span: 9,
                    },
                ),
                ev(
                    900,
                    2,
                    EventKind::MsgRecv {
                        from: ProcId(0),
                        reg: 5,
                        span: 9,
                    },
                ),
            ],
        );
        let json = b.to_json();
        let all = json.get("traceEvents").unwrap().as_arr().unwrap();
        let start: Vec<_> = all
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .collect();
        let finish: Vec<_> = all
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .collect();
        assert_eq!((start.len(), finish.len()), (1, 1));
        assert_eq!(
            start[0].get("id").unwrap().as_num(),
            finish[0].get("id").unwrap().as_num(),
            "the pair shares one flow id"
        );
        assert_eq!(start[0].get("tid").unwrap().as_num(), Some(0.0));
        assert_eq!(finish[0].get("tid").unwrap().as_num(), Some(2.0));
        assert_eq!(finish[0].get("bp").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn unstamped_messages_get_no_flow_arrows() {
        use tfr_registers::ProcId;
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[
                ev(
                    100,
                    0,
                    EventKind::MsgSend {
                        to: ProcId(1),
                        reg: 0,
                        span: 0,
                    },
                ),
                ev(
                    400,
                    1,
                    EventKind::MsgRecv {
                        from: ProcId(0),
                        reg: 0,
                        span: 0,
                    },
                ),
            ],
        );
        let json = b.to_json();
        let all = json.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(all
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("s")));
    }

    #[test]
    fn render_parses_back() {
        let mut b = ChromeTraceBuilder::new();
        b.add_run(
            "r",
            &[ev(
                10,
                0,
                EventKind::FaultFired {
                    point: "delay.pre",
                    stall_ns: 7,
                    crashed: false,
                },
            )],
        );
        let parsed = Json::parse(&b.render()).unwrap();
        assert!(!parsed
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }
}
