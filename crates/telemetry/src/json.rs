//! A minimal JSON value, writer, and parser — the workspace has zero
//! external dependencies, so the exporters hand-roll their JSON and the
//! smoke tests validate it by parsing it back.
//!
//! Objects preserve insertion order (they are association vectors, not
//! maps) so emitted files are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    ///
    /// This is a validation-grade parser for the workspace's own output —
    /// it accepts standard JSON and reports the byte offset of the first
    /// error — not a general-purpose library.
    ///
    /// # Example
    ///
    /// Exporter output round-trips:
    ///
    /// ```
    /// use tfr_telemetry::json::Json;
    ///
    /// let value = Json::obj([
    ///     ("name", Json::str("ψ")),
    ///     ("samples", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
    /// ]);
    /// let text = value.to_string();
    /// assert_eq!(Json::parse(&text).unwrap(), value);
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then handle the interesting one.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u digits")?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("a", Json::Num(1.5)),
            (
                "b",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\"y\\z\n")]),
            ),
            ("c", Json::obj([("empty", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v = Json::parse(" { \"k\" : [ -2.5 , 1e3 ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(-2.5));
        assert_eq!(arr[1].as_num(), Some(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("a\u{1}b").to_string();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::str("a\u{1}b"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::Num(3.0)), ("s", Json::str("t"))]);
        assert_eq!(v.get("n").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("t"));
        assert!(v.get("missing").is_none());
        assert!(v.as_arr().is_none());
    }
}
