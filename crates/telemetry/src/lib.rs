//! Unified telemetry for the timing-failure workspace: lock-free event
//! tracing, a metrics registry, and Chrome-trace/Perfetto export covering
//! both execution stacks (native threads and the virtual-time simulator).
//!
//! The paper's claims are *temporal* — Δ bounds, entry waits of at most
//! ψ, convergence after failures stop — so debugging and benchmarking
//! both want the same artifact: a timeline. This crate provides it in
//! three layers:
//!
//! * **Tracing core** ([`Tracer`], [`Trace`], [`Event`]) — per-process
//!   single-writer ring buffers (the same discipline as the
//!   linearizability checker's history recorder) holding typed protocol
//!   events stamped in nanoseconds. Attachment follows the workspace's
//!   probe pattern: a disabled [`Trace`] costs one `Option` check per
//!   hook, and construction defaults to disabled.
//! * **Metrics** ([`Counter`], [`Histogram`], [`MetricsRegistry`]) —
//!   atomic counters and log-bucketed histograms, derivable after the
//!   fact from any event stream with [`MetricsRegistry::from_events`].
//! * **Exporters** ([`ChromeTraceBuilder`], [`summary`]) — Chrome-trace /
//!   Perfetto JSON (one track per process; faults as instant events, the
//!   Δ estimate as a counter track) and the machine-readable
//!   `BENCH_telemetry.json` summary with the §1.3 convergence time.
//!
//! Both stacks feed the same schema: native code emits events live
//! through [`Trace`] hooks and the [`ChaosTraceObserver`] bridge, while
//! simulator runs convert after the fact with [`sim::events_from_run`]
//! (1 tick = 1 µs, the workspace convention).
//!
//! # Example
//!
//! Record events by hand, export, and parse the export back:
//!
//! ```
//! use std::sync::Arc;
//! use tfr_registers::ProcId;
//! use tfr_telemetry::{ChromeTraceBuilder, EventKind, Json, Trace, Tracer};
//!
//! let tracer = Arc::new(Tracer::new(2));
//! let trace = Trace::attached(Arc::clone(&tracer));
//! trace.emit(ProcId(0), EventKind::LockWaitStart);
//! trace.emit(ProcId(0), EventKind::LockAcquired { wait_ns: 120 });
//! trace.emit(ProcId(0), EventKind::LockReleased);
//!
//! let mut builder = ChromeTraceBuilder::new();
//! builder.add_run("demo", &tracer.events());
//! let parsed = Json::parse(&builder.render()).unwrap();
//! assert!(!parsed.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
//! ```

pub mod chrome;
pub mod event;
pub mod handle;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod ring;
pub mod sim;
pub mod span;
pub mod summary;

pub use chrome::ChromeTraceBuilder;
pub use event::{Event, EventKind};
pub use handle::{current_pid, with_pid, Trace};
pub use json::Json;
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use observer::ChaosTraceObserver;
pub use ring::{DrainCursor, Tracer};
pub use span::{current_span_id, Span};
pub use summary::{
    convergence_from_events, heal_convergence_from_events, recovery_spans_from_events,
    run_summary_json, ConvergenceReport, RecoverySpan,
};
