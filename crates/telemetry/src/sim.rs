//! Simulator-run conversion: a `tfr_sim::RunResult` as a telemetry event
//! stream, so virtual-time and native timelines share one schema (and one
//! trace viewer).
//!
//! The workspace convention is **1 tick = 1 µs**, so a virtual instant
//! `Ticks(t)` becomes `t × 1000` nanoseconds — directly comparable with
//! native timestamps.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use tfr_registers::spec::{Action, Obs};
use tfr_registers::Ticks;
use tfr_sim::RunResult;

const NS_PER_TICK: u64 = 1_000;

fn ns(t: Ticks) -> u64 {
    t.0.saturating_mul(NS_PER_TICK)
}

/// Converts a simulation run into a merged, timestamp-sorted event
/// stream.
///
/// Observable events (`Obs`) always convert; the register/delay level is
/// only present when the run was made with
/// `tfr_sim::RunConfig::record_trace` (otherwise `run.trace` is empty and
/// the stream contains just the protocol-level events).
///
/// # Example
///
/// Any simulated automaton converts; here a one-process protocol that
/// writes a register, delays, and decides:
///
/// ```
/// use tfr_registers::spec::{Action, Automaton, Obs};
/// use tfr_registers::{Delta, ProcId, RegId, Ticks};
/// use tfr_sim::timing::standard_no_failures;
/// use tfr_sim::{RunConfig, Sim};
/// use tfr_telemetry::sim::events_from_run;
/// use tfr_telemetry::EventKind;
///
/// # #[derive(Debug, Clone)]
/// # struct Decider;
/// # impl Automaton for Decider {
/// #     type State = u8;
/// #     fn init(&self, _pid: ProcId) -> u8 { 0 }
/// #     fn next_action(&self, s: &u8) -> Action {
/// #         match s {
/// #             0 => Action::Write(RegId(0), 1),
/// #             1 => Action::Delay(Ticks(50)),
/// #             _ => Action::Halt,
/// #         }
/// #     }
/// #     fn apply(&self, s: &mut u8, _observed: Option<u64>, obs: &mut Vec<Obs>) {
/// #         if *s == 1 { obs.push(Obs::Decided(1)); }
/// #         *s += 1;
/// #     }
/// # }
/// let delta = Delta::from_ticks(100);
/// let run = Sim::new(
///     Decider,
///     RunConfig::new(1, delta).record_trace(),
///     standard_no_failures(delta, 1),
/// )
/// .run();
///
/// let events = events_from_run(&run);
/// assert!(events.iter().any(|e| matches!(e.kind, EventKind::Decided { .. })));
/// assert!(events.iter().any(|e| matches!(e.kind, EventKind::RegWrite { .. })));
/// assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
/// ```
pub fn events_from_run(run: &RunResult) -> Vec<Event> {
    let mut events = Vec::new();
    // Entry-wait bookkeeping: the last EnterTrying per process.
    let mut trying_since: BTreeMap<usize, u64> = BTreeMap::new();

    for step in &run.trace {
        match step.action {
            Action::Read(reg) => events.push(Event {
                ts_ns: ns(step.completed),
                pid: step.pid,
                kind: EventKind::RegRead { reg: reg.0 },
            }),
            Action::Write(reg, value) => events.push(Event {
                ts_ns: ns(step.completed),
                pid: step.pid,
                kind: EventKind::RegWrite { reg: reg.0, value },
            }),
            Action::Delay(d) => {
                events.push(Event {
                    ts_ns: ns(step.issued),
                    pid: step.pid,
                    kind: EventKind::DelayStart {
                        requested_ns: ns(d),
                    },
                });
                events.push(Event {
                    ts_ns: ns(step.completed),
                    pid: step.pid,
                    kind: EventKind::DelayEnd,
                });
            }
            Action::Halt => events.push(Event {
                ts_ns: ns(step.completed),
                pid: step.pid,
                kind: EventKind::Mark {
                    name: "halt",
                    value: 0,
                },
            }),
        }
    }

    for obs in &run.obs {
        let ts_ns = ns(obs.time);
        let kind = match obs.obs {
            Obs::Decided(v) => EventKind::Decided { value: v },
            Obs::StartedRound(r) => EventKind::RoundStart { round: r },
            Obs::EnterTrying => {
                trying_since.insert(obs.pid.0, ts_ns);
                EventKind::LockWaitStart
            }
            Obs::EnterCritical => EventKind::LockAcquired {
                wait_ns: ts_ns - trying_since.get(&obs.pid.0).copied().unwrap_or(ts_ns),
            },
            Obs::ExitCritical => EventKind::LockReleased,
            Obs::EnterRemainder => EventKind::Mark {
                name: "remainder",
                value: 0,
            },
            Obs::Note(name, value) => EventKind::Mark { name, value },
        };
        events.push(Event {
            ts_ns,
            pid: obs.pid,
            kind,
        });
    }

    // One merged timeline; stable sort keeps issue order within a tick.
    events.sort_by_key(|e| e.ts_ns);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::Delta;
    use tfr_sim::timing::standard_no_failures;
    use tfr_sim::{RunConfig, Sim};

    // A tiny in-crate automaton: one process does read, write, delay, halt
    // while emitting the mutex observables (avoids a dev-dependency on
    // tfr-core for the conversion tests).
    #[derive(Debug, Clone)]
    struct Tiny;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TinyState {
        step: u8,
    }

    impl tfr_registers::spec::Automaton for Tiny {
        type State = TinyState;
        fn init(&self, _pid: tfr_registers::ProcId) -> TinyState {
            TinyState { step: 0 }
        }
        fn next_action(&self, s: &TinyState) -> Action {
            match s.step {
                0 => Action::Read(tfr_registers::RegId(0)),
                1 => Action::Write(tfr_registers::RegId(0), 7),
                2 => Action::Delay(Ticks(50)),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut TinyState, _observed: Option<u64>, obs: &mut Vec<Obs>) {
            match s.step {
                0 => obs.push(Obs::EnterTrying),
                1 => obs.push(Obs::EnterCritical),
                2 => obs.push(Obs::ExitCritical),
                _ => {}
            }
            s.step += 1;
        }
    }

    fn tiny_run(record_trace: bool) -> RunResult {
        let delta = Delta::from_ticks(100);
        let mut cfg = RunConfig::new(1, delta);
        if record_trace {
            cfg = cfg.record_trace();
        }
        Sim::new(Tiny, cfg, standard_no_failures(delta, 1)).run()
    }

    #[test]
    fn obs_map_to_protocol_events_with_microsecond_ticks() {
        let events = events_from_run(&tiny_run(false));
        let acquired = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::LockAcquired { .. }))
            .expect("EnterCritical converts");
        // Virtual instants are tick × 1000 ns.
        assert_eq!(acquired.ts_ns % 1_000, 0);
        let EventKind::LockAcquired { wait_ns } = acquired.kind else {
            unreachable!()
        };
        assert!(wait_ns > 0, "entry wait spans the trying phase");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::LockReleased)));
    }

    #[test]
    fn trace_steps_convert_only_when_recorded() {
        let without = events_from_run(&tiny_run(false));
        assert!(!without
            .iter()
            .any(|e| matches!(e.kind, EventKind::RegRead { .. })));
        let with = events_from_run(&tiny_run(true));
        assert!(with
            .iter()
            .any(|e| matches!(e.kind, EventKind::RegRead { .. })));
        assert!(with
            .iter()
            .any(|e| matches!(e.kind, EventKind::RegWrite { reg: 0, value: 7 })));
        let starts: Vec<_> = with
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::DelayStart {
                        requested_ns: 50_000
                    }
                )
            })
            .collect();
        assert_eq!(starts.len(), 1, "delay(50 ticks) → 50 µs request");
        assert!(with.iter().any(|e| matches!(e.kind, EventKind::DelayEnd)));
    }

    #[test]
    fn stream_is_sorted() {
        let events = events_from_run(&tiny_run(true));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
