//! The typed event schema shared by the native and simulated stacks.
//!
//! Every event is a `(timestamp, process, kind)` triple. Timestamps are
//! nanoseconds from the owning [`crate::Tracer`]'s epoch for native runs,
//! and `tick × 1000` for simulator runs (the workspace convention is
//! 1 tick = 1 µs, so both stacks land on the same scale and can share one
//! timeline in a trace viewer).

use tfr_registers::ProcId;

/// One traced occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds from the tracer's epoch (native) or `tick × 1000`
    /// (simulator).
    pub ts_ns: u64,
    /// The process the event belongs to.
    pub pid: ProcId,
    /// What happened.
    pub kind: EventKind,
}

/// The vocabulary of traced occurrences across every layer.
///
/// The schema is deliberately small and `Copy`: an event must fit in a
/// fixed-size ring-buffer slot, so payloads are ids and integers, never
/// heap data. Point and mark names are `&'static str` — the same interned
/// names the chaos layer already uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A shared register was read.
    RegRead {
        /// The register id.
        reg: u64,
    },
    /// A shared register was written.
    RegWrite {
        /// The register id.
        reg: u64,
        /// The value written.
        value: u64,
    },
    /// A compare-and-swap on a shared register (reserved: the paper's
    /// model is read/write registers, but derived objects may grow CAS).
    RegCas {
        /// The register id.
        reg: u64,
        /// Whether the CAS succeeded.
        ok: bool,
    },
    /// A `delay(d)` statement started.
    DelayStart {
        /// The requested duration in nanoseconds.
        requested_ns: u64,
    },
    /// The matching `delay(d)` finished (on real hardware, possibly much
    /// later than requested — that overshoot *is* a timing failure).
    DelayEnd,
    /// A protocol retried: a lost Fischer check, an extra pass of a loop.
    Retry {
        /// The protocol step that failed (a [`tfr_registers::chaos::points`] name).
        point: &'static str,
    },
    /// A consensus participant started round `round` (1-based).
    RoundStart {
        /// The round number.
        round: u64,
    },
    /// A consensus participant decided.
    Decided {
        /// The decided value.
        value: u64,
    },
    /// A mutex participant entered its entry section (started trying).
    LockWaitStart,
    /// A mutex participant acquired the lock.
    LockAcquired {
        /// Entry-section latency in nanoseconds (wait start → acquisition).
        wait_ns: u64,
    },
    /// A mutex participant released the lock.
    LockReleased,
    /// An `optimistic(Δ)` estimator changed its estimate.
    DeltaChanged {
        /// The new Δ estimate in nanoseconds.
        estimate_ns: u64,
        /// `true` for a multiplicative increase (contention observed),
        /// `false` for a clean-streak decrease.
        contended: bool,
    },
    /// An injected chaos fault fired on this process.
    FaultFired {
        /// The injection point the fault was aimed at.
        point: &'static str,
        /// Stall duration in nanoseconds (0 for a crash-stop).
        stall_ns: u64,
        /// Whether the fault crash-stopped the process.
        crashed: bool,
    },
    /// A crash-*recovery* fault fired on this process: it is down (no
    /// shared-memory operations) until its next incarnation starts —
    /// which the matching [`EventKind::Recovered`] marks.
    CrashRecover {
        /// The injection point the crash was aimed at.
        point: &'static str,
        /// The scheduled down time in nanoseconds.
        down_ns: u64,
    },
    /// The process's next incarnation finished its recovery section and
    /// rejoined the workload (closes the span opened by
    /// [`EventKind::CrashRecover`]).
    Recovered {
        /// The incarnation number just installed (1 = first restart).
        incarnation: u64,
        /// Whether the recovery section released an orphaned critical
        /// section.
        repaired: bool,
    },
    /// A chaos injection point was visited (trace points and injection
    /// points are the same vocabulary).
    PointHit {
        /// The point name.
        point: &'static str,
    },
    /// A free-form annotation (mirrors `Obs::Note` of the spec layer).
    Mark {
        /// The annotation name.
        name: &'static str,
        /// An annotation payload.
        value: u64,
    },
    /// A network message was handed to the link layer (pid = the sending
    /// node — client or replica).
    MsgSend {
        /// The destination node's pid.
        to: ProcId,
        /// The register the message is about.
        reg: u64,
        /// The causal span the message belongs to (0 = untraced). Replies
        /// echo the request's span, so one id ties the whole round trip —
        /// client send, replica receive, replica reply, client receive —
        /// back to the quorum-phase span that issued it.
        span: u64,
    },
    /// A network message was delivered (pid = the receiving node).
    MsgRecv {
        /// The originating node's pid.
        from: ProcId,
        /// The register the message is about.
        reg: u64,
        /// The causal span the message belongs to (0 = untraced).
        span: u64,
    },
    /// A network message was dropped at send time by a fault — loss or
    /// partition (pid = the sending node).
    MsgDropped {
        /// The intended destination node's pid.
        to: ProcId,
        /// The register the message is about.
        reg: u64,
        /// The causal span the message belongs to (0 = untraced).
        span: u64,
    },
    /// A majority-quorum register operation (ABD read or write) started
    /// on this client node.
    QuorumStart {
        /// The register being read or written.
        reg: u64,
        /// `true` for a write, `false` for a read.
        write: bool,
    },
    /// The matching quorum operation completed.
    QuorumEnd {
        /// The register that was read or written.
        reg: u64,
        /// `true` for a write, `false` for a read.
        write: bool,
        /// Full round-trip latency of the operation in nanoseconds
        /// (quorum start → majority acknowledged).
        rtt_ns: u64,
    },
    /// The sharded object service announced a client operation to a
    /// shard's combiner (pid = the announcing worker).
    ServiceEnqueue {
        /// The shard the router chose.
        shard: u32,
        /// The object key the client addressed.
        key: u64,
    },
    /// One consensus decision committed a whole batch of announced
    /// operations on a shard (pid = the worker whose proposal won the
    /// decision, so each batch is reported exactly once).
    BatchCommit {
        /// The shard the batch belongs to.
        shard: u32,
        /// The log slot the batch occupies.
        slot: u64,
        /// Number of operations the batch committed.
        size: u64,
    },
    /// A replicated-log height was decided: one consensus decision chose
    /// the proposer whose published batch occupies log position `height`
    /// (pid = the winning proposer, so each height is reported exactly
    /// once — the log-layer analogue of [`EventKind::BatchCommit`]).
    HeightDecide {
        /// The decided log height.
        height: u64,
        /// The winning proposer's pid.
        winner: u64,
        /// Number of operations in the winning batch.
        size: u64,
    },
    /// A log applier (worker or replica) applied the committed entry at
    /// `height` to its local state machine. `digest` is the applier's
    /// *chained prefix digest* after this entry — equal across all
    /// correct appliers at the same height, so any divergence (a wrong
    /// batch, an out-of-order apply) shows up as a digest mismatch.
    LogApply {
        /// The height just applied (appliers go strictly 0, 1, 2, …).
        height: u64,
        /// The chained applied-prefix digest after this entry.
        digest: u64,
    },
    /// A causal span opened on this process (closed by the matching
    /// [`EventKind::SpanEnd`]). Span ids are process-global and never
    /// reused; `parent` is the span that was current at entry (0 = root).
    SpanStart {
        /// This span's id (never 0).
        span: u64,
        /// The enclosing span's id (0 for a root span).
        parent: u64,
        /// The stage name, e.g. `"client.op"` or `"quorum.phase1"`.
        label: &'static str,
    },
    /// The matching span closed.
    SpanEnd {
        /// The id of the span that closed.
        span: u64,
    },
    /// A quorum operation completed having observed/installed this
    /// version — the online monitor's handle on ABD's "readers never go
    /// back in time" guarantee (per client lane, versions of one register
    /// must be monotone).
    QuorumVersion {
        /// The register the operation touched.
        reg: u64,
        /// The version's timestamp component.
        ts: u64,
        /// The version's writer-id tiebreak component.
        wid: u64,
    },
}

/// Mark names the network backend stamps on the timeline (`tfr-net`
/// emits them, [`crate::summary::heal_convergence_from_events`] consumes
/// them). Defined here so producer and consumer share one vocabulary
/// without a crate dependency from telemetry onto the network layer.
pub mod net_marks {
    /// A partition was installed (`value` = number of groups).
    pub const PARTITION: &str = "net.partition";
    /// All network faults were lifted (`value` = 0).
    pub const HEAL: &str = "net.heal";
    /// The message-drop probability changed (`value` = percent).
    pub const DROP: &str = "net.drop";
    /// A flat delay spike was added to every link (`value` = ns).
    pub const DELAY_SPIKE: &str = "net.delay-spike";
}

impl EventKind {
    /// A short, stable display name for exporters.
    pub fn label(&self) -> String {
        match self {
            EventKind::RegRead { reg } => format!("R r{reg}"),
            EventKind::RegWrite { reg, value } => format!("W r{reg}={value}"),
            EventKind::RegCas { reg, ok } => {
                format!("CAS r{reg} {}", if *ok { "ok" } else { "fail" })
            }
            EventKind::DelayStart { .. } => "delay(Δ)".to_string(),
            EventKind::DelayEnd => "delay-end".to_string(),
            EventKind::Retry { point } => format!("retry {point}"),
            EventKind::RoundStart { round } => format!("round {round}"),
            EventKind::Decided { value } => format!("decided {value}"),
            EventKind::LockWaitStart => "entry".to_string(),
            EventKind::LockAcquired { .. } => "acquired".to_string(),
            EventKind::LockReleased => "released".to_string(),
            EventKind::DeltaChanged {
                estimate_ns,
                contended,
            } => {
                format!("Δ{}{}ns", if *contended { "↑" } else { "↓" }, estimate_ns)
            }
            EventKind::FaultFired { point, crashed, .. } => {
                format!("{} @{point}", if *crashed { "crash" } else { "fault" })
            }
            EventKind::CrashRecover { point, .. } => format!("crash-recover @{point}"),
            EventKind::Recovered {
                incarnation,
                repaired,
            } => {
                format!(
                    "recovered #{incarnation}{}",
                    if *repaired { " (repaired CS)" } else { "" }
                )
            }
            EventKind::PointHit { point } => point.to_string(),
            EventKind::Mark { name, value } => format!("{name}={value}"),
            EventKind::MsgSend { to, reg, .. } => format!("send→{to} r{reg}"),
            EventKind::MsgRecv { from, reg, .. } => format!("recv←{from} r{reg}"),
            EventKind::MsgDropped { to, reg, .. } => format!("drop→{to} r{reg}"),
            EventKind::QuorumStart { reg, write } => {
                format!("{} r{reg}", if *write { "qwrite" } else { "qread" })
            }
            EventKind::QuorumEnd { reg, write, .. } => {
                format!("{} r{reg} done", if *write { "qwrite" } else { "qread" })
            }
            EventKind::ServiceEnqueue { shard, key } => format!("enq s{shard} k{key}"),
            EventKind::BatchCommit { shard, slot, size } => {
                format!("batch s{shard}@{slot} ×{size}")
            }
            EventKind::HeightDecide {
                height,
                winner,
                size,
            } => format!("h{height} → p{winner} ×{size}"),
            EventKind::LogApply { height, digest } => {
                format!("apply h{height} #{digest:x}")
            }
            EventKind::SpanStart { span, label, .. } => format!("{label} #{span}"),
            EventKind::SpanEnd { span } => format!("end #{span}"),
            EventKind::QuorumVersion { reg, ts, wid } => format!("r{reg} v{ts}.{wid}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(EventKind::RegRead { reg: 3 }.label(), "R r3");
        assert_eq!(EventKind::RegWrite { reg: 1, value: 7 }.label(), "W r1=7");
        assert_eq!(
            EventKind::DeltaChanged {
                estimate_ns: 500,
                contended: true
            }
            .label(),
            "Δ↑500ns"
        );
        assert!(EventKind::FaultFired {
            point: "delay.pre",
            stall_ns: 10,
            crashed: false
        }
        .label()
        .contains("delay.pre"));
        assert_eq!(
            EventKind::CrashRecover {
                point: "workload.cs",
                down_ns: 1000
            }
            .label(),
            "crash-recover @workload.cs"
        );
        assert_eq!(
            EventKind::Recovered {
                incarnation: 2,
                repaired: true
            }
            .label(),
            "recovered #2 (repaired CS)"
        );
        assert_eq!(
            EventKind::ServiceEnqueue { shard: 2, key: 40 }.label(),
            "enq s2 k40"
        );
        assert_eq!(
            EventKind::BatchCommit {
                shard: 1,
                slot: 9,
                size: 128
            }
            .label(),
            "batch s1@9 ×128"
        );
        assert_eq!(
            EventKind::SpanStart {
                span: 7,
                parent: 3,
                label: "quorum.phase1"
            }
            .label(),
            "quorum.phase1 #7"
        );
        assert_eq!(EventKind::SpanEnd { span: 7 }.label(), "end #7");
        assert_eq!(
            EventKind::HeightDecide {
                height: 4,
                winner: 1,
                size: 8
            }
            .label(),
            "h4 → p1 ×8"
        );
        assert_eq!(
            EventKind::LogApply {
                height: 4,
                digest: 0xbeef
            }
            .label(),
            "apply h4 #beef"
        );
        assert_eq!(
            EventKind::QuorumVersion {
                reg: 2,
                ts: 5,
                wid: 1
            }
            .label(),
            "r2 v5.1"
        );
    }

    #[test]
    fn events_are_small_copy_values() {
        // The ring buffer stores events inline; keep the slot size honest.
        assert!(
            std::mem::size_of::<Event>() <= 64,
            "event slot grew past a cache line"
        );
    }
}
