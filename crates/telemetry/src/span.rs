//! Causal spans: nested, cross-substrate parent/child contexts that turn
//! the flat event stream into a tree.
//!
//! A span is a named interval opened by [`Span::enter`] and closed when
//! the returned guard drops. Span ids are process-global and never reused
//! (`0` means "no span"), so an id stamped onto a network message on one
//! lane unambiguously names the client-side span that caused it — the
//! exporter turns those stamps into Perfetto flow links, and a walker can
//! reconstruct the whole causal tree of one client operation: client op →
//! batch drive → consensus decision → quorum phases → per-replica message
//! round trips.
//!
//! The current span is thread-local, exactly like [`crate::with_pid`]'s
//! process registration: entering a span shadows the previous one and the
//! guard restores it on drop (also on unwind). Layers that cannot see the
//! guard — the network client stamping outgoing messages — read the
//! ambient id with [`current_span_id`].
//!
//! When the trace is disabled, [`Span::enter`] allocates no id, touches no
//! thread-local, and emits nothing: the disabled path stays one `Option`
//! check, the same contract as every other telemetry hook.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tfr_registers::ProcId;
//! use tfr_telemetry::span::{current_span_id, Span};
//! use tfr_telemetry::{with_pid, EventKind, Trace, Tracer};
//!
//! let tracer = Arc::new(Tracer::new(1));
//! let trace = Trace::attached(Arc::clone(&tracer));
//! with_pid(ProcId(0), || {
//!     let _op = Span::enter(&trace, "client.op");
//!     let op_id = current_span_id();
//!     assert_ne!(op_id, 0);
//!     {
//!         let _phase = Span::enter(&trace, "phase");
//!         assert_ne!(current_span_id(), op_id, "child shadows parent");
//!     }
//!     assert_eq!(current_span_id(), op_id, "guard restores parent");
//! });
//! let events = tracer.events();
//! // One SpanStart/SpanEnd pair per guard, child parented to the root.
//! let starts: Vec<_> = events
//!     .iter()
//!     .filter_map(|e| match e.kind {
//!         EventKind::SpanStart { span, parent, .. } => Some((span, parent)),
//!         _ => None,
//!     })
//!     .collect();
//! assert_eq!(starts.len(), 2);
//! assert_eq!(starts[1].1, starts[0].0, "child's parent is the root id");
//! assert_eq!(starts[0].1, 0, "the root has no parent");
//! ```

use crate::event::EventKind;
use crate::handle::Trace;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global span-id source. Starts at 1: id 0 is reserved for
/// "no span" in thread-locals and message stamps.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The id of the innermost open span on the calling thread (`0` when no
/// span is open). This is what gets stamped onto network messages so
/// replica-side events can be causally linked back to the client span
/// that sent them.
#[inline]
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// An open causal span; closing happens on drop (also on unwind, so a
/// chaos crash-stop cannot leak a stale span to the next closure on a
/// pooled thread).
///
/// Spans nest by shadowing the thread-local current id: events and
/// message stamps between `enter` and drop attribute to this span, and
/// its `SpanStart` records the id that was current at entry as `parent`.
#[must_use = "a span closes when the guard drops; binding it to _ closes it immediately"]
pub struct Span<'a> {
    trace: &'a Trace,
    /// This span's id, or 0 for the inert guard of a disabled trace.
    id: u64,
    /// The id to restore on drop.
    prev: u64,
}

impl<'a> Span<'a> {
    /// Opens a span named `label` under the thread's current span and
    /// emits [`EventKind::SpanStart`] on the calling thread's lane. A
    /// disabled `trace` returns an inert guard: no id is allocated and
    /// the thread-local is untouched.
    pub fn enter(trace: &'a Trace, label: &'static str) -> Span<'a> {
        if !trace.is_enabled() {
            return Span {
                trace,
                id: 0,
                prev: 0,
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SPAN.with(|c| c.replace(id));
        trace.emit_current(EventKind::SpanStart {
            span: id,
            parent: prev,
            label,
        });
        Span { trace, id, prev }
    }

    /// This span's id (`0` for the inert guard of a disabled trace).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        self.trace
            .emit_current(EventKind::SpanEnd { span: self.id });
        CURRENT_SPAN.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::with_pid;
    use crate::ring::Tracer;
    use std::sync::Arc;
    use tfr_registers::ProcId;

    #[test]
    fn disabled_trace_spans_are_free_and_inert() {
        let trace = Trace::disabled();
        let before = NEXT_SPAN_ID.load(Ordering::Relaxed);
        {
            let g = Span::enter(&trace, "noop");
            assert_eq!(g.id(), 0);
            assert_eq!(current_span_id(), 0);
        }
        assert_eq!(NEXT_SPAN_ID.load(Ordering::Relaxed), before, "no id burned");
    }

    #[test]
    fn ids_are_unique_and_nonzero_across_threads() {
        let tracer = Arc::new(Tracer::new(4));
        let ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let trace = Trace::attached(Arc::clone(&tracer));
                    s.spawn(move || {
                        with_pid(ProcId(i), || {
                            (0..100)
                                .map(|_| Span::enter(&trace, "w").id())
                                .collect::<Vec<u64>>()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "every span id is unique");
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn guard_restores_parent_on_unwind() {
        let tracer = Arc::new(Tracer::new(1));
        let trace = Trace::attached(Arc::clone(&tracer));
        with_pid(ProcId(0), || {
            let root = Span::enter(&trace, "root");
            let root_id = root.id();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _child = Span::enter(&trace, "child");
                panic!("boom");
            }));
            assert_eq!(current_span_id(), root_id, "unwind closed the child");
        });
        assert_eq!(current_span_id(), 0, "all guards dropped");
    }

    #[test]
    fn start_and_end_events_pair_up() {
        let tracer = Arc::new(Tracer::new(1));
        let trace = Trace::attached(Arc::clone(&tracer));
        with_pid(ProcId(0), || {
            let _a = Span::enter(&trace, "a");
            let _b = Span::enter(&trace, "b");
        });
        let events = tracer.events();
        let starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                crate::EventKind::SpanStart { span, .. } => Some(span),
                _ => None,
            })
            .collect();
        let mut ends: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                crate::EventKind::SpanEnd { span } => Some(span),
                _ => None,
            })
            .collect();
        ends.sort_unstable();
        let mut sorted_starts = starts.clone();
        sorted_starts.sort_unstable();
        assert_eq!(sorted_starts, ends, "every start has a matching end");
        assert_eq!(starts.len(), 2);
    }
}
