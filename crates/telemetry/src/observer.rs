//! The bridge from the chaos layer's injection points to the tracer: the
//! same named points that faults aim at double as trace points.
//!
//! Install with [`tfr_registers::chaos::install_point_observer`]; every
//! point visit by a `chaos::run_as`-registered thread becomes a
//! [`EventKind::PointHit`] and every fired fault a
//! [`EventKind::FaultFired`]. Callbacks run on the visiting thread, so
//! they respect the tracer's per-process single-writer discipline.

use crate::event::EventKind;
use crate::ring::Tracer;
use std::sync::Arc;
use std::time::Duration;
use tfr_registers::chaos::PointObserver;
use tfr_registers::ProcId;

/// A [`PointObserver`] that records injection-point traffic into a
/// [`Tracer`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfr_registers::chaos::{self, install_point_observer};
/// use tfr_registers::ProcId;
/// use tfr_telemetry::{ChaosTraceObserver, EventKind, Tracer};
///
/// let tracer = Arc::new(Tracer::new(1));
/// let guard = install_point_observer(Arc::new(ChaosTraceObserver::new(Arc::clone(&tracer))));
/// chaos::run_as(ProcId(0), || chaos::point(chaos::points::DELAY));
/// drop(guard);
///
/// let events = tracer.events();
/// assert!(events
///     .iter()
///     .any(|e| matches!(e.kind, EventKind::PointHit { point: "delay.pre" })));
/// ```
pub struct ChaosTraceObserver {
    tracer: Arc<Tracer>,
    record_hits: bool,
}

impl ChaosTraceObserver {
    /// An observer recording both point visits and fired faults.
    pub fn new(tracer: Arc<Tracer>) -> ChaosTraceObserver {
        ChaosTraceObserver {
            tracer,
            record_hits: true,
        }
    }

    /// An observer recording only fired faults — for long runs where the
    /// per-visit [`EventKind::PointHit`] stream would flood the rings.
    pub fn faults_only(tracer: Arc<Tracer>) -> ChaosTraceObserver {
        ChaosTraceObserver {
            tracer,
            record_hits: false,
        }
    }
}

impl PointObserver for ChaosTraceObserver {
    fn point_hit(&self, pid: ProcId, point: &'static str) {
        if self.record_hits {
            self.tracer.emit(pid, EventKind::PointHit { point });
        }
    }

    fn fault_fired(&self, pid: ProcId, point: &'static str, stalled: Duration, crashed: bool) {
        // The callback runs when the fault finishes (stall end / just
        // before a crash unwind), so "now" is the convergence-clock start.
        self.tracer.emit(
            pid,
            EventKind::FaultFired {
                point,
                stall_ns: stalled.as_nanos() as u64,
                crashed,
            },
        );
    }

    fn crash_recover_fired(&self, pid: ProcId, point: &'static str, down_for: Duration) {
        // Opens the down-until-recovered span; the recovery nemesis emits
        // the matching [`EventKind::Recovered`] when the next incarnation
        // finishes its recovery section.
        self.tracer.emit(
            pid,
            EventKind::CrashRecover {
                point,
                down_ns: down_for.as_nanos() as u64,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::time::Duration;
    use tfr_registers::chaos::{self, install_point_observer, ChaosSession, Fault, FaultAction};

    #[test]
    fn faults_only_observer_skips_hits() {
        // Session both serializes this test against other chaos users and
        // supplies a fault to fire.
        let _session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: chaos::points::DELAY,
            nth: 1,
            action: FaultAction::Stall(Duration::from_micros(100)),
        }]);
        let tracer = Arc::new(Tracer::new(1));
        let guard = install_point_observer(Arc::new(ChaosTraceObserver::faults_only(Arc::clone(
            &tracer,
        ))));
        chaos::run_as(ProcId(0), || {
            chaos::point(chaos::points::DELAY);
            chaos::point(chaos::points::DELAY);
        });
        drop(guard);
        let events = tracer.events();
        assert!(!events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PointHit { .. })));
        let fired: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FaultFired {
                    point,
                    stall_ns,
                    crashed,
                } => Some((point, stall_ns, crashed)),
                _ => None,
            })
            .collect();
        assert_eq!(fired, vec![("delay.pre", 100_000, false)]);
    }
}
