//! The lock-free tracing core: per-process single-writer event buffers,
//! merged at quiescence.
//!
//! Same discipline as the `tfr-linearize` history recorder: each process
//! writes only its own buffer (a slot write followed by a release-store of
//! the length), so recording needs no locks and no read-modify-write on
//! the hot path; the merge acquire-loads each length, which synchronizes
//! with every recorded slot. A full buffer drops events and counts them —
//! a non-zero [`Tracer::dropped`] means the timeline is incomplete and the
//! buffers should be sized up.
//!
//! Timestamps come from one shared epoch (`Instant` at construction), so
//! events from different threads are directly comparable; simulator events
//! carry their own virtual timestamps via [`Tracer::emit_at`].

use crate::event::{Event, EventKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use tfr_registers::ProcId;

/// Default per-process event capacity.
pub const DEFAULT_EVENTS_PER_PROCESS: usize = 16 * 1024;

struct ProcBuf {
    len: AtomicUsize,
    slots: Box<[UnsafeCell<Event>]>,
}

// SAFETY: slots are written only by the single thread acting as the
// owning process (the documented contract of `emit`/`emit_at`) before a
// release-store of `len`, and read only at/after an acquire-load of `len`.
unsafe impl Sync for ProcBuf {}

impl ProcBuf {
    fn new(capacity: usize) -> ProcBuf {
        let filler = Event {
            ts_ns: 0,
            pid: ProcId(0),
            kind: EventKind::DelayEnd,
        };
        ProcBuf {
            len: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| UnsafeCell::new(filler)).collect(),
        }
    }
}

/// A lock-free event tracer for `n` processes.
///
/// # Single-writer contract
///
/// [`Tracer::emit`] and [`Tracer::emit_at`] for a given `pid` must only be
/// called from the one thread currently acting as that process — the same
/// contract as the chaos harness's `run_as` and the linearize recorder.
/// Reading ([`Tracer::events`]) is safe from any thread but only complete
/// at quiescence.
///
/// # Example
///
/// ```
/// use tfr_telemetry::{EventKind, Tracer};
/// use tfr_registers::ProcId;
///
/// let tracer = Tracer::new(2);
/// tracer.emit(ProcId(0), EventKind::LockWaitStart);
/// tracer.emit(ProcId(0), EventKind::LockAcquired { wait_ns: 120 });
/// tracer.emit(ProcId(1), EventKind::RoundStart { round: 1 });
///
/// let events = tracer.events();
/// assert_eq!(events.len(), 3);
/// // Merged events come back sorted by timestamp.
/// assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
/// assert_eq!(tracer.dropped(), 0);
/// ```
pub struct Tracer {
    epoch: Instant,
    bufs: Vec<ProcBuf>,
    dropped: AtomicU64,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("processes", &self.bufs.len())
            .field("dropped", &self.dropped.load(Ordering::SeqCst))
            .finish()
    }
}

impl Tracer {
    /// A tracer for `n` processes with the default per-process capacity.
    pub fn new(n: usize) -> Tracer {
        Tracer::with_capacity(n, DEFAULT_EVENTS_PER_PROCESS)
    }

    /// A tracer for `n` processes holding up to `events_per_process`
    /// events for each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_capacity(n: usize, events_per_process: usize) -> Tracer {
        assert!(n > 0, "at least one process is required");
        Tracer {
            epoch: Instant::now(),
            bufs: (0..n).map(|_| ProcBuf::new(events_per_process)).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of traced processes.
    pub fn n(&self) -> usize {
        self.bufs.len()
    }

    /// Nanoseconds elapsed since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Nanoseconds from the epoch to `at` (0 if `at` predates the epoch).
    pub fn stamp(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Records `kind` for `pid`, stamped now. Must be called on the thread
    /// acting as `pid` (single-writer contract). Out-of-range pids and
    /// full buffers drop the event and bump [`Tracer::dropped`].
    #[inline]
    pub fn emit(&self, pid: ProcId, kind: EventKind) {
        self.emit_at(pid, self.now_ns(), kind);
    }

    /// Records `kind` for `pid` with an explicit timestamp (simulator
    /// conversion, post-hoc stamping). Same single-writer contract as
    /// [`Tracer::emit`].
    #[inline]
    pub fn emit_at(&self, pid: ProcId, ts_ns: u64, kind: EventKind) {
        let Some(buf) = self.bufs.get(pid.0) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let i = buf.len.load(Ordering::Relaxed);
        if i >= buf.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: single writer per pid; `i` is below capacity.
        unsafe {
            *buf.slots[i].get() = Event { ts_ns, pid, kind };
        }
        buf.len.store(i + 1, Ordering::Release);
    }

    /// Number of events dropped because a buffer filled up (or a pid was
    /// out of range). Non-zero means [`Tracer::events`] is incomplete.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Merges every per-process buffer into one timeline, sorted by
    /// timestamp (ties keep per-process order). Call at quiescence: every
    /// emitting thread has finished (or died).
    pub fn events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for buf in &self.bufs {
            let len = buf.len.load(Ordering::Acquire);
            for slot in &buf.slots[..len] {
                // SAFETY: indices below the acquired `len` were fully
                // written before the matching release-store.
                all.push(unsafe { *slot.get() });
            }
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Appends every event recorded since the last drain through `cursor`
    /// onto `out` and returns how many were appended. Safe to call *while
    /// writers are live*: each per-process length only grows, and the
    /// acquire-load synchronizes with the writer's release-store, so every
    /// slot below the observed length is fully written.
    ///
    /// Events are appended lane by lane in pid order; within a lane they
    /// are in emission order, and successive drains of one lane never
    /// reorder or repeat. **No cross-lane timestamp merge is performed** —
    /// a live consumer (the collector's online monitors) must only rely on
    /// per-lane order, which is exactly the order guarantee the
    /// single-writer contract provides.
    ///
    /// # Example
    ///
    /// ```
    /// use tfr_telemetry::{DrainCursor, EventKind, Tracer};
    /// use tfr_registers::ProcId;
    ///
    /// let t = Tracer::new(1);
    /// let mut cursor = DrainCursor::new();
    /// let mut out = Vec::new();
    /// t.emit(ProcId(0), EventKind::LockWaitStart);
    /// assert_eq!(t.drain_new(&mut cursor, &mut out), 1);
    /// t.emit(ProcId(0), EventKind::LockReleased);
    /// assert_eq!(t.drain_new(&mut cursor, &mut out), 1, "only the new event");
    /// assert_eq!(out.len(), 2);
    /// ```
    pub fn drain_new(&self, cursor: &mut DrainCursor, out: &mut Vec<Event>) -> usize {
        cursor.offsets.resize(self.bufs.len(), 0);
        let mut drained = 0;
        for (offset, buf) in cursor.offsets.iter_mut().zip(&self.bufs) {
            let len = buf.len.load(Ordering::Acquire);
            for slot in &buf.slots[*offset..len] {
                // SAFETY: indices below the acquired `len` were fully
                // written before the matching release-store, and lengths
                // never shrink — `*offset <= len` always holds.
                out.push(unsafe { *slot.get() });
            }
            drained += len - *offset;
            *offset = len;
        }
        drained
    }
}

/// Per-lane progress of an incremental [`Tracer::drain_new`] consumer:
/// how many events of each process's buffer have already been taken.
/// One cursor belongs to one consumer; fresh cursors start at the
/// beginning of every lane.
#[derive(Debug, Default, Clone)]
pub struct DrainCursor {
    offsets: Vec<usize>,
}

impl DrainCursor {
    /// A cursor positioned at the start of every lane.
    pub fn new() -> DrainCursor {
        DrainCursor::default()
    }

    /// Total events this cursor has drained across all lanes.
    pub fn drained(&self) -> usize {
        self.offsets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_pid_is_counted_not_panicked() {
        let t = Tracer::new(1);
        t.emit(ProcId(5), EventKind::DelayEnd);
        assert_eq!(t.dropped(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn full_buffer_drops_and_counts() {
        let t = Tracer::with_capacity(1, 2);
        for _ in 0..5 {
            t.emit(ProcId(0), EventKind::LockReleased);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let t = Tracer::new(1);
        for _ in 0..100 {
            t.emit(ProcId(0), EventKind::DelayEnd);
        }
        let ev = t.events();
        assert!(ev.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn concurrent_emitters_all_land() {
        let t = Tracer::new(4);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let t = &t;
                s.spawn(move || {
                    for r in 0..1_000u64 {
                        t.emit(ProcId(i), EventKind::RoundStart { round: r });
                    }
                });
            }
        });
        assert_eq!(t.events().len(), 4_000);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn drain_new_is_incremental_and_complete_under_concurrency() {
        let t = Tracer::new(2);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..2usize {
                let (t, done) = (&t, &done);
                s.spawn(move || {
                    for r in 0..2_000u64 {
                        t.emit(ProcId(i), EventKind::RoundStart { round: r });
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            let mut cursor = DrainCursor::new();
            let mut out = Vec::new();
            // Poll live until both writers finish, then drain the rest.
            while done.load(Ordering::SeqCst) < 2 {
                t.drain_new(&mut cursor, &mut out);
                std::hint::spin_loop();
            }
            t.drain_new(&mut cursor, &mut out);
            assert_eq!(out.len(), 4_000, "live drains lose nothing");
            assert_eq!(cursor.drained(), 4_000);
            // Per-lane order survives the incremental drain.
            for lane in 0..2usize {
                let rounds: Vec<u64> = out
                    .iter()
                    .filter(|e| e.pid == ProcId(lane))
                    .map(|e| match e.kind {
                        EventKind::RoundStart { round } => round,
                        _ => unreachable!(),
                    })
                    .collect();
                assert!(rounds.windows(2).all(|w| w[1] == w[0] + 1));
            }
            // A fully drained cursor yields nothing more.
            assert_eq!(t.drain_new(&mut cursor, &mut out), 0);
        });
    }

    #[test]
    fn explicit_stamps_pass_through() {
        let t = Tracer::new(1);
        t.emit_at(ProcId(0), 42_000, EventKind::RoundStart { round: 1 });
        assert_eq!(t.events()[0].ts_ns, 42_000);
    }
}
