//! The zero-cost-when-disabled attachment point, plus thread→process
//! registration for layers whose APIs carry no process id.
//!
//! [`Trace`] mirrors `tfr_core::probe::Probe` exactly: every traced object
//! carries one, disabled by default, and the only hot-path cost while
//! disabled is a single `Option` check per hook. An observer attaches a
//! shared [`Tracer`] via the object's `with_trace` builder.
//!
//! Some feedback paths have no process id in their signature (the
//! `DelaySource` methods, `NativeConsensus::propose`). For those,
//! [`with_pid`] registers the calling thread as a process for the duration
//! of a closure, and [`Trace::emit_current`] resolves it; an unregistered
//! thread's `emit_current` is a silent no-op (the event has no lane to
//! land in).

use crate::event::EventKind;
use crate::ring::Tracer;
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;
use tfr_registers::ProcId;

thread_local! {
    static CURRENT_PID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the calling thread registered as `pid` for
/// [`Trace::emit_current`]. Nests by shadowing: the previous registration
/// is restored on exit (also on unwind — a chaos crash-stop must not leak
/// a stale pid to the next closure on a pooled thread).
///
/// # Example
///
/// ```
/// use tfr_telemetry::{current_pid, with_pid};
/// use tfr_registers::ProcId;
///
/// assert_eq!(current_pid(), None);
/// with_pid(ProcId(3), || {
///     assert_eq!(current_pid(), Some(ProcId(3)));
/// });
/// assert_eq!(current_pid(), None);
/// ```
pub fn with_pid<T>(pid: ProcId, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_PID.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_PID.with(|c| c.replace(Some(pid.0))));
    f()
}

/// The process the calling thread is registered as, if any.
pub fn current_pid() -> Option<ProcId> {
    CURRENT_PID.with(|c| c.get()).map(ProcId)
}

/// An optional [`Tracer`] attachment point: disabled (and free) unless an
/// observer installs one — the `Probe` pattern, applied to telemetry.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfr_telemetry::{EventKind, Trace, Tracer};
/// use tfr_registers::ProcId;
///
/// let off = Trace::disabled();
/// assert!(!off.is_enabled());
/// off.emit(ProcId(0), EventKind::LockReleased); // free no-op
///
/// let tracer = Arc::new(Tracer::new(1));
/// let on = Trace::attached(Arc::clone(&tracer));
/// on.emit(ProcId(0), EventKind::LockAcquired { wait_ns: 7 });
/// assert_eq!(tracer.events().len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Trace(Option<Arc<Tracer>>);

impl Trace {
    /// The disabled trace — what every object starts with.
    pub const fn disabled() -> Trace {
        Trace(None)
    }

    /// A trace recording into `tracer`.
    pub fn attached(tracer: Arc<Tracer>) -> Trace {
        Trace(Some(tracer))
    }

    /// Whether a tracer is attached.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.0.as_ref()
    }

    /// Nanoseconds since the attached tracer's epoch (`None` when
    /// disabled). Use to compute derived payloads — e.g. a lock's entry
    /// wait — only when someone is listening.
    #[inline]
    pub fn now_ns(&self) -> Option<u64> {
        self.0.as_ref().map(|t| t.now_ns())
    }

    /// Records `kind` as `pid`, stamped now. One `Option` check when
    /// disabled. Single-writer contract: call on the thread acting as
    /// `pid`.
    #[inline]
    pub fn emit(&self, pid: ProcId, kind: EventKind) {
        if let Some(t) = &self.0 {
            t.emit(pid, kind);
        }
    }

    /// Records `kind` as the thread's registered process (see
    /// [`with_pid`]); a no-op when disabled or unregistered.
    #[inline]
    pub fn emit_current(&self, kind: EventKind) {
        if let Some(t) = &self.0 {
            if let Some(pid) = current_pid() {
                t.emit(pid, kind);
            }
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("Trace(attached)"),
            None => f.write_str("Trace(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_ns(), None);
        t.emit(ProcId(0), EventKind::DelayEnd);
        t.emit_current(EventKind::DelayEnd);
        assert!(t.tracer().is_none());
    }

    #[test]
    fn emit_current_requires_registration() {
        let tracer = Arc::new(Tracer::new(2));
        let trace = Trace::attached(Arc::clone(&tracer));
        trace.emit_current(EventKind::LockReleased); // unregistered: dropped
        with_pid(ProcId(1), || trace.emit_current(EventKind::LockReleased));
        let ev = tracer.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].pid, ProcId(1));
    }

    #[test]
    fn with_pid_restores_on_unwind() {
        let _ = std::panic::catch_unwind(|| {
            with_pid(ProcId(0), || panic!("boom"));
        });
        assert_eq!(current_pid(), None);
    }

    #[test]
    fn with_pid_nests_by_shadowing() {
        with_pid(ProcId(1), || {
            with_pid(ProcId(2), || assert_eq!(current_pid(), Some(ProcId(2))));
            assert_eq!(current_pid(), Some(ProcId(1)));
        });
    }

    #[test]
    fn debug_formats_both_states() {
        assert_eq!(format!("{:?}", Trace::disabled()), "Trace(disabled)");
        let t = Trace::attached(Arc::new(Tracer::new(1)));
        assert_eq!(format!("{t:?}"), "Trace(attached)");
    }
}
