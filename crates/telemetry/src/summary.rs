//! Convergence measurement and the machine-readable run summary
//! (`BENCH_telemetry.json`).
//!
//! The §1.3 convergence clock starts when the **last timing failure
//! stops** and stops at the **first clean fast-path operation** — here,
//! the first lock acquisition after the last [`EventKind::FaultFired`]
//! whose entry wait meets the target. This turns "converges eventually"
//! (Theorem 3.3) into a number with a unit.

use crate::event::{Event, EventKind};
use crate::json::Json;
use crate::metrics::MetricsRegistry;

/// The measured convergence of one traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Number of injected faults that fired.
    pub faults: u64,
    /// Timestamp of the last fired fault (ns from the trace epoch), if
    /// any fired. For stalls this is the stall's *end* — the instant
    /// failures stopped.
    pub last_fault_ns: Option<u64>,
    /// Timestamp of the first clean fast-path acquisition after the last
    /// fault, if one happened.
    pub first_clean_ns: Option<u64>,
    /// `first_clean_ns − last_fault_ns`: the convergence time. `Some(0)`
    /// when no fault fired (the run never left the ψ regime); `None` when
    /// faults fired but no clean acquisition followed before the trace
    /// ended.
    pub convergence_ns: Option<u64>,
}

/// Measures convergence over a merged event stream: the time from the
/// last [`EventKind::FaultFired`] to the first [`EventKind::LockAcquired`]
/// at or after it with `wait_ns ≤ target_wait_ns`.
///
/// # Example
///
/// ```
/// use tfr_telemetry::summary::convergence_from_events;
/// use tfr_telemetry::{Event, EventKind};
/// use tfr_registers::ProcId;
///
/// let e = |ts_ns, kind| Event { ts_ns, pid: ProcId(0), kind };
/// let events = [
///     e(100, EventKind::FaultFired { point: "delay.pre", stall_ns: 50, crashed: false }),
///     e(150, EventKind::LockAcquired { wait_ns: 900 }), // still storming
///     e(400, EventKind::LockAcquired { wait_ns: 20 }),  // first clean entry
/// ];
/// let report = convergence_from_events(&events, 100);
/// assert_eq!(report.convergence_ns, Some(300));
/// assert_eq!(report.faults, 1);
/// ```
pub fn convergence_from_events(events: &[Event], target_wait_ns: u64) -> ConvergenceReport {
    let mut faults = 0;
    let mut last_fault_ns = None;
    for e in events {
        if let EventKind::FaultFired { .. } = e.kind {
            faults += 1;
            last_fault_ns = Some(e.ts_ns);
        }
    }
    let Some(stop) = last_fault_ns else {
        return ConvergenceReport {
            faults: 0,
            last_fault_ns: None,
            first_clean_ns: None,
            convergence_ns: Some(0),
        };
    };
    let first_clean_ns = events
        .iter()
        .filter(|e| e.ts_ns >= stop)
        .find_map(|e| match e.kind {
            EventKind::LockAcquired { wait_ns } if wait_ns <= target_wait_ns => Some(e.ts_ns),
            _ => None,
        });
    ConvergenceReport {
        faults,
        last_fault_ns,
        first_clean_ns,
        convergence_ns: first_clean_ns.map(|t| t - stop),
    }
}

/// Measures convergence of a network-backed run after a partition heals:
/// the time from the last [`crate::event::net_marks::HEAL`] mark to the
/// completion of the last quorum operation that was already in flight
/// when the heal landed (an op whose [`EventKind::QuorumEnd`] is at or
/// after the heal but whose start — `ts − rtt` — precedes it). Those are
/// exactly the operations a partition stranded; once they drain, the
/// backend is back in its failure-free regime.
///
/// Mapped onto [`ConvergenceReport`]: `faults` counts the network fault
/// marks (partition / drop / delay-spike), `last_fault_ns` is the heal
/// instant, `first_clean_ns` the drain instant. With no heal mark the run
/// never left the clean regime (`convergence_ns == Some(0)`); with a heal
/// but no straddling op, the drain is immediate — also `Some(0)`.
///
/// # Example
///
/// ```
/// use tfr_telemetry::event::net_marks;
/// use tfr_telemetry::summary::heal_convergence_from_events;
/// use tfr_telemetry::{Event, EventKind};
/// use tfr_registers::ProcId;
///
/// let e = |ts_ns, kind| Event { ts_ns, pid: ProcId(0), kind };
/// let events = [
///     e(100, EventKind::Mark { name: net_marks::PARTITION, value: 2 }),
///     e(500, EventKind::Mark { name: net_marks::HEAL, value: 0 }),
///     // Started at 200 (in flight across the heal), completed at 900.
///     e(900, EventKind::QuorumEnd { reg: 0, write: true, rtt_ns: 700 }),
/// ];
/// let r = heal_convergence_from_events(&events);
/// assert_eq!(r.convergence_ns, Some(400));
/// assert_eq!(r.faults, 1);
/// ```
pub fn heal_convergence_from_events(events: &[Event]) -> ConvergenceReport {
    use crate::event::net_marks;
    let mut faults = 0;
    let mut heal_ns = None;
    for e in events {
        if let EventKind::Mark { name, .. } = e.kind {
            match name {
                net_marks::PARTITION | net_marks::DROP | net_marks::DELAY_SPIKE => faults += 1,
                net_marks::HEAL => heal_ns = Some(e.ts_ns),
                _ => {}
            }
        }
    }
    let Some(heal) = heal_ns else {
        return ConvergenceReport {
            faults,
            last_fault_ns: None,
            first_clean_ns: None,
            convergence_ns: Some(0),
        };
    };
    let drained_ns = events
        .iter()
        .filter(|e| e.ts_ns >= heal)
        .filter_map(|e| match e.kind {
            EventKind::QuorumEnd { rtt_ns, .. } if e.ts_ns.saturating_sub(rtt_ns) < heal => {
                Some(e.ts_ns)
            }
            _ => None,
        })
        .max();
    ConvergenceReport {
        faults,
        last_fault_ns: Some(heal),
        first_clean_ns: drained_ns.or(Some(heal)),
        convergence_ns: Some(drained_ns.map_or(0, |t| t - heal)),
    }
}

/// One crash-recovery on the timeline: the span from the
/// [`EventKind::CrashRecover`] instant (the process went down) to the
/// matching [`EventKind::Recovered`] (its next incarnation finished the
/// recovery section and rejoined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpan {
    /// The process that crashed and recovered.
    pub pid: tfr_registers::ProcId,
    /// When the crash fired (ns from the trace epoch).
    pub crashed_at_ns: u64,
    /// When the new incarnation reported in (ns from the trace epoch).
    pub recovered_at_ns: u64,
    /// The *scheduled* down time of the fault, for comparison with the
    /// measured span.
    pub scheduled_down_ns: u64,
    /// The incarnation number the recovery installed.
    pub incarnation: u64,
    /// Whether the recovery section released an orphaned critical
    /// section.
    pub repaired: bool,
}

impl RecoverySpan {
    /// Measured recovery time: crash instant → rejoin instant. Always
    /// at least the scheduled down time, plus the recovery section's own
    /// work.
    pub fn recovery_ns(&self) -> u64 {
        self.recovered_at_ns.saturating_sub(self.crashed_at_ns)
    }
}

/// Pairs each [`EventKind::CrashRecover`] with the next
/// [`EventKind::Recovered`] of the same pid — the recovery-time
/// measurement of experiment E21. Unmatched crashes (the trace ended
/// while the process was still down) are dropped.
///
/// # Example
///
/// ```
/// use tfr_telemetry::summary::recovery_spans_from_events;
/// use tfr_telemetry::{Event, EventKind};
/// use tfr_registers::ProcId;
///
/// let e = |ts_ns, kind| Event { ts_ns, pid: ProcId(1), kind };
/// let events = [
///     e(100, EventKind::CrashRecover { point: "workload.cs", down_ns: 200 }),
///     e(450, EventKind::Recovered { incarnation: 1, repaired: true }),
/// ];
/// let spans = recovery_spans_from_events(&events);
/// assert_eq!(spans.len(), 1);
/// assert_eq!(spans[0].recovery_ns(), 350);
/// assert!(spans[0].repaired);
/// ```
pub fn recovery_spans_from_events(events: &[Event]) -> Vec<RecoverySpan> {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    let mut spans = Vec::new();
    for e in events {
        match e.kind {
            EventKind::CrashRecover { down_ns, .. } => {
                open.insert(e.pid.0, (e.ts_ns, down_ns));
            }
            EventKind::Recovered {
                incarnation,
                repaired,
            } => {
                if let Some((crashed_at_ns, scheduled_down_ns)) = open.remove(&e.pid.0) {
                    spans.push(RecoverySpan {
                        pid: e.pid,
                        crashed_at_ns,
                        recovered_at_ns: e.ts_ns,
                        scheduled_down_ns,
                        incarnation,
                        repaired,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

impl ConvergenceReport {
    /// The report as JSON (`convergence_ns` is `null` when not converged).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, |v| Json::Num(v as f64));
        Json::obj([
            ("faults", Json::Num(self.faults as f64)),
            ("last_fault_ns", opt(self.last_fault_ns)),
            ("first_clean_ns", opt(self.first_clean_ns)),
            ("convergence_ns", opt(self.convergence_ns)),
        ])
    }
}

/// Assembles the machine-readable summary of one traced run: identity,
/// convergence, ring health, and the standard metrics derived from the
/// event stream — the payload of `BENCH_telemetry.json`.
///
/// `dropped_events` is the producing tracer's overflow count
/// ([`crate::Tracer::dropped`]): non-zero means the stream (and therefore
/// everything derived here) is incomplete, so the count travels with the
/// summary instead of being silently discarded.
///
/// # Example
///
/// ```
/// use tfr_telemetry::json::Json;
/// use tfr_telemetry::summary::{convergence_from_events, run_summary_json};
/// use tfr_telemetry::{Event, EventKind};
/// use tfr_registers::ProcId;
///
/// let events = [Event { ts_ns: 5, pid: ProcId(0), kind: EventKind::LockAcquired { wait_ns: 5 } }];
/// let convergence = convergence_from_events(&events, 100);
/// let summary =
///     run_summary_json("native resilient-mutex", 2, 100_000, 100, &events, 0, &convergence);
/// // It round-trips through the JSON parser and names the run.
/// let parsed = Json::parse(&summary.to_string()).unwrap();
/// assert_eq!(parsed.get("run").unwrap().as_str(), Some("native resilient-mutex"));
/// assert_eq!(parsed.get("dropped_events").unwrap().as_num(), Some(0.0));
/// assert_eq!(parsed.get("convergence").unwrap().get("convergence_ns").unwrap().as_num(), Some(0.0));
/// ```
pub fn run_summary_json(
    run: &str,
    n: usize,
    delta_ns: u64,
    target_wait_ns: u64,
    events: &[Event],
    dropped_events: u64,
    convergence: &ConvergenceReport,
) -> Json {
    let metrics = MetricsRegistry::from_events(events);
    Json::obj([
        ("run", Json::str(run)),
        ("n", Json::Num(n as f64)),
        ("delta_ns", Json::Num(delta_ns as f64)),
        ("target_wait_ns", Json::Num(target_wait_ns as f64)),
        ("events", Json::Num(events.len() as f64)),
        ("dropped_events", Json::Num(dropped_events as f64)),
        ("convergence", convergence.to_json()),
        ("metrics", metrics.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::ProcId;

    fn e(ts_ns: u64, kind: EventKind) -> Event {
        Event {
            ts_ns,
            pid: ProcId(0),
            kind,
        }
    }

    #[test]
    fn no_faults_means_zero_convergence() {
        let events = [e(10, EventKind::LockAcquired { wait_ns: 5 })];
        let r = convergence_from_events(&events, 100);
        assert_eq!(r.convergence_ns, Some(0));
        assert_eq!(r.faults, 0);
        assert_eq!(r.last_fault_ns, None);
    }

    #[test]
    fn clock_runs_from_the_last_fault() {
        let events = [
            e(
                100,
                EventKind::FaultFired {
                    point: "a",
                    stall_ns: 1,
                    crashed: false,
                },
            ),
            e(200, EventKind::LockAcquired { wait_ns: 10 }), // clean, but pre-last-fault
            e(
                300,
                EventKind::FaultFired {
                    point: "b",
                    stall_ns: 1,
                    crashed: false,
                },
            ),
            e(450, EventKind::LockAcquired { wait_ns: 10 }),
        ];
        let r = convergence_from_events(&events, 100);
        assert_eq!(r.faults, 2);
        assert_eq!(r.last_fault_ns, Some(300));
        assert_eq!(r.convergence_ns, Some(150));
    }

    #[test]
    fn unconverged_run_reports_none() {
        let events = [
            e(
                100,
                EventKind::FaultFired {
                    point: "a",
                    stall_ns: 1,
                    crashed: false,
                },
            ),
            e(200, EventKind::LockAcquired { wait_ns: 9_999 }),
        ];
        let r = convergence_from_events(&events, 100);
        assert_eq!(r.convergence_ns, None);
        assert_eq!(r.to_json().get("convergence_ns"), Some(&Json::Null));
    }

    #[test]
    fn recovery_spans_pair_per_pid_and_drop_unmatched() {
        let at = |ts_ns, pid, kind| Event {
            ts_ns,
            pid: ProcId(pid),
            kind,
        };
        let events = [
            at(
                10,
                0,
                EventKind::CrashRecover {
                    point: "workload.cs",
                    down_ns: 50,
                },
            ),
            at(
                20,
                1,
                EventKind::CrashRecover {
                    point: "workload.ncs",
                    down_ns: 30,
                },
            ),
            // p1 recovers; p0's recovery never arrives (trace ends).
            at(
                90,
                1,
                EventKind::Recovered {
                    incarnation: 1,
                    repaired: false,
                },
            ),
        ];
        let spans = recovery_spans_from_events(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].pid, ProcId(1));
        assert_eq!(spans[0].recovery_ns(), 70);
        assert_eq!(spans[0].scheduled_down_ns, 30);
        assert!(!spans[0].repaired);
    }

    #[test]
    fn summary_embeds_derived_metrics() {
        let events = [
            e(
                5,
                EventKind::Retry {
                    point: "fischer.check-x",
                },
            ),
            e(9, EventKind::LockAcquired { wait_ns: 9 }),
        ];
        let convergence = convergence_from_events(&events, 100);
        let s = run_summary_json("r", 3, 1_000, 100, &events, 7, &convergence);
        let retries = s
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("retries"))
            .and_then(Json::as_num);
        assert_eq!(retries, Some(1.0));
        assert_eq!(s.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(
            s.get("dropped_events").and_then(Json::as_num),
            Some(7.0),
            "ring overflow travels with the summary"
        );
    }
}
