//! The nemesis: drives native algorithms on real threads under an
//! installed fault schedule, with online invariant checking.
//!
//! * [`run_mutex_chaos`] — any [`RawLock`] under a lock/unlock workload,
//!   with an intruder counter (two threads inside the critical section at
//!   once is a mutual exclusion violation caught *as it happens*) and
//!   per-entry latency samples for resilience assessment.
//! * [`run_consensus_chaos`] — Algorithm 1's [`NativeConsensus`] under
//!   faults, checking agreement and validity across survivors.
//! * [`violation_setup_from_seed`] / [`hunt_fischer_violation`] — the
//!   paper's §2 headline on real threads: a seeded stall in Fischer's
//!   read→write window longer than Δ makes two threads hold the lock at
//!   once. The seed fully determines the schedule, so a printed seed
//!   reproduces the violation.

use crate::schedule::{random_schedule, ScheduleConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tfr_asynclock::RawLock;
use tfr_core::consensus::NativeConsensus;
use tfr_core::mutex::fischer::Fischer;
use tfr_obs::{Collector, CollectorConfig, ObsReport};
use tfr_registers::chaos::{
    self, install_point_observer, points, ChaosSession, Fault, FaultAction, FiredFault,
};
use tfr_registers::rng::SplitMix64;
use tfr_registers::ProcId;
use tfr_telemetry::{with_pid, ChaosTraceObserver, Trace, Tracer};

/// Busy-holds the calling thread for `d` without touching any injection
/// point (the workload's own dwell times must not perturb fault visit
/// counts).
pub(crate) fn hold(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Workload shape for [`run_mutex_chaos`].
#[derive(Debug, Clone)]
pub struct MutexChaosConfig {
    /// Number of worker threads (= processes).
    pub n: usize,
    /// Lock acquisitions per thread.
    pub iterations: u64,
    /// Dwell time inside the critical section.
    pub cs_hold: Duration,
    /// Dwell time in the remainder section.
    pub ncs_hold: Duration,
}

impl MutexChaosConfig {
    /// A short default workload: `n` threads × 20 acquisitions with
    /// microsecond dwell times.
    ///
    /// All fields are public — tune the shape after construction:
    ///
    /// ```
    /// use tfr_chaos::MutexChaosConfig;
    ///
    /// let mut cfg = MutexChaosConfig::new(3);
    /// assert_eq!((cfg.n, cfg.iterations), (3, 20));
    /// cfg.iterations = 5; // a quicker smoke run
    /// ```
    pub fn new(n: usize) -> MutexChaosConfig {
        MutexChaosConfig {
            n,
            iterations: 20,
            cs_hold: Duration::from_micros(50),
            ncs_hold: Duration::from_micros(50),
        }
    }
}

/// One successful lock acquisition, as observed by the nemesis.
#[derive(Debug, Clone, Copy)]
pub struct EntrySample {
    /// The acquiring process.
    pub pid: ProcId,
    /// When it entered the critical section.
    pub entered_at: Instant,
    /// How long the entry section took (`lock()` call to return).
    pub latency: Duration,
}

/// Everything a mutex chaos run observed.
#[derive(Debug)]
pub struct MutexChaosReport {
    /// Peak simultaneous critical-section occupancy (1 = exclusive).
    pub max_in_cs: u64,
    /// Number of entries that found another thread already inside —
    /// each one is a mutual exclusion violation.
    pub intrusions: u64,
    /// Threads crash-stopped by the schedule.
    pub crashed: Vec<ProcId>,
    /// Threads that completed every iteration.
    pub completed: Vec<ProcId>,
    /// Every successful acquisition, in no particular order.
    pub entries: Vec<EntrySample>,
    /// Faults that actually fired.
    pub fired: Vec<FiredFault>,
    /// When the last fault finished firing (convergence clock zero).
    pub last_fault_at: Option<Instant>,
}

impl MutexChaosReport {
    /// Whether mutual exclusion was violated at any point of the run.
    pub fn mutual_exclusion_violated(&self) -> bool {
        self.intrusions > 0
    }

    /// The worst observed entry latency, if any entry happened.
    pub fn max_latency(&self) -> Option<Duration> {
        self.entries.iter().map(|e| e.latency).max()
    }
}

/// Runs `lock` under `faults` with online mutual exclusion checking.
///
/// Installs a [`ChaosSession`] for the duration of the run — *also when
/// `faults` is empty*, so baseline runs are isolated from any concurrent
/// chaos activity in the process. Each worker registers with
/// [`chaos::run_as`]; a crash-stopped worker simply stops, and the report
/// says so.
///
/// # Panics
///
/// Panics if a crash fault targets any point other than
/// [`points::WORKLOAD_NCS`]: a thread crash-stopped while *holding* a
/// blocking lock would wedge every survivor by construction — that
/// schedule tests nothing about the algorithm.
///
/// # Example
///
/// Algorithm 3 under a stall longer than Δ in its hazardous read→write
/// window — the exact failure that breaks Fischer — stays exclusive:
///
/// ```
/// use std::time::Duration;
/// use tfr_chaos::{run_mutex_chaos, MutexChaosConfig};
/// use tfr_core::mutex::resilient::ResilientMutex;
/// use tfr_registers::chaos::{points, Fault, FaultAction};
/// use tfr_registers::ProcId;
///
/// let delta = Duration::from_micros(100);
/// let lock = ResilientMutex::standard(2, delta);
/// let faults = [Fault {
///     pid: ProcId(0),
///     point: points::RESILIENT_WRITE_X,
///     nth: 1,
///     action: FaultAction::Stall(delta * 10),
/// }];
/// let mut cfg = MutexChaosConfig::new(2);
/// cfg.iterations = 3;
/// let report = run_mutex_chaos(&lock, &cfg, &faults);
/// assert!(!report.mutual_exclusion_violated());
/// assert_eq!(report.max_in_cs, 1);
/// assert_eq!(report.completed.len(), 2, "stalls never kill a thread");
/// assert_eq!(report.entries.len(), 2 * 3);
/// ```
pub fn run_mutex_chaos<L: RawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
) -> MutexChaosReport {
    run_mutex_chaos_inner(lock, cfg, faults, None)
}

/// [`run_mutex_chaos`] with telemetry: workers register with
/// `tfr_telemetry::with_pid` (so `emit_current`-based layers like
/// `AdaptiveDelta` attribute events correctly) and a
/// [`ChaosTraceObserver`] is installed for the run, turning every
/// injection-point visit and fired fault into trace events in `tracer`.
///
/// Build the lock with its own `with_trace(Trace::attached(...))` on the
/// same tracer to get lock-level spans on the same timeline.
pub fn run_mutex_chaos_traced<L: RawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
    tracer: &Arc<Tracer>,
) -> MutexChaosReport {
    run_mutex_chaos_inner(lock, cfg, faults, Some(tracer))
}

/// [`run_mutex_chaos_traced`] with a live [`Collector`] attached for the
/// duration of the run: the online monitors stream `tracer`'s rings
/// *while the nemesis fires* and the returned [`ObsReport`] says whether
/// (and when) an invariant broke — independently of the workload's own
/// `in_cs` accounting.
///
/// Build the lock with `with_trace(Trace::attached(...))` on the same
/// tracer; the mutex monitor watches the lock's own
/// `LockAcquired`/`LockReleased` events.
pub fn run_mutex_chaos_observed<L: RawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
    tracer: &Arc<Tracer>,
    obs: CollectorConfig,
) -> (MutexChaosReport, ObsReport) {
    let collector = Collector::spawn(Arc::clone(tracer), obs);
    let report = run_mutex_chaos_inner(lock, cfg, faults, Some(tracer));
    (report, collector.finish())
}

fn run_mutex_chaos_inner<L: RawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
    tracer: Option<&Arc<Tracer>>,
) -> MutexChaosReport {
    assert!(
        cfg.n > 0 && cfg.n <= lock.n(),
        "workload size exceeds the lock's capacity"
    );
    for f in faults {
        assert!(
            f.action != FaultAction::Crash || f.point == points::WORKLOAD_NCS,
            "mutex workloads only crash-stop at workload.ncs (got {f})"
        );
        assert!(
            !matches!(f.action, FaultAction::CrashRecover(_)),
            "this workload never rejoins crashed processes; \
             use the recovery nemesis for crash-recover faults (got {f})"
        );
    }
    let session = ChaosSession::install(faults);
    // Installed after the session (and dropped before it): the observer
    // rides inside the session's process-wide serialization.
    let _observer =
        tracer.map(|t| install_point_observer(Arc::new(ChaosTraceObserver::new(Arc::clone(t)))));
    let in_cs = AtomicU64::new(0);
    let max_in_cs = AtomicU64::new(0);
    let intrusions = AtomicU64::new(0);
    let entries: Mutex<Vec<EntrySample>> = Mutex::new(Vec::new());

    let mut crashed = Vec::new();
    let mut completed = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.n)
            .map(|i| {
                let (in_cs, max_in_cs, intrusions, entries) =
                    (&in_cs, &max_in_cs, &intrusions, &entries);
                s.spawn(move || {
                    // Registering the pid is cheap and harmless untraced;
                    // doing it unconditionally keeps one worker body.
                    chaos::run_as(ProcId(i), || {
                        with_pid(ProcId(i), || {
                            for _ in 0..cfg.iterations {
                                chaos::point(points::WORKLOAD_NCS);
                                hold(cfg.ncs_hold);
                                let t0 = Instant::now();
                                lock.lock(ProcId(i));
                                let entered_at = Instant::now();
                                let now_inside = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                                if now_inside > 1 {
                                    intrusions.fetch_add(1, Ordering::SeqCst);
                                }
                                max_in_cs.fetch_max(now_inside, Ordering::SeqCst);
                                entries.lock().unwrap_or_else(|e| e.into_inner()).push(
                                    EntrySample {
                                        pid: ProcId(i),
                                        entered_at,
                                        latency: entered_at - t0,
                                    },
                                );
                                hold(cfg.cs_hold);
                                in_cs.fetch_sub(1, Ordering::SeqCst);
                                lock.unlock(ProcId(i));
                            }
                        })
                    })
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            match h
                .join()
                .expect("worker panicked outside the crash protocol")
            {
                chaos::ThreadOutcome::Completed(()) => completed.push(ProcId(i)),
                chaos::ThreadOutcome::Crashed => crashed.push(ProcId(i)),
                chaos::ThreadOutcome::CrashedRecoverable(_) => {
                    unreachable!("crash-recover faults are rejected above")
                }
            }
        }
    });

    let fired = session.injector().fired();
    let last_fault_at = session.injector().last_fired_at();
    MutexChaosReport {
        max_in_cs: max_in_cs.load(Ordering::SeqCst),
        intrusions: intrusions.load(Ordering::SeqCst),
        crashed,
        completed,
        entries: entries.into_inner().unwrap_or_else(|e| e.into_inner()),
        fired,
        last_fault_at,
    }
}

/// Everything a consensus chaos run observed.
#[derive(Debug)]
pub struct ConsensusChaosReport {
    /// `(pid, decided value)` for every proposer that completed.
    pub decisions: Vec<(ProcId, bool)>,
    /// Proposers crash-stopped by the schedule.
    pub crashed: Vec<ProcId>,
    /// The object's final decision register, if set.
    pub final_decision: Option<bool>,
    /// All completed proposers returned the same value, and it matches
    /// the decision register.
    pub agreement: bool,
    /// The decided value (if any) was somebody's input.
    pub validity: bool,
    /// Faults that actually fired.
    pub fired: Vec<FiredFault>,
}

/// Runs Algorithm 1 natively: one proposer thread per input, under
/// `faults`. Algorithm 1 is wait-free, so — unlike the mutex nemesis —
/// crash-stops are legal at *any* point, including between observing
/// `x[r, v̄] = 0` and writing `decide`.
///
/// # Example
///
/// Crash one of three proposers mid-round: the survivors still agree on
/// somebody's input, and the report names the casualty.
///
/// ```
/// use std::time::Duration;
/// use tfr_chaos::run_consensus_chaos;
/// use tfr_registers::chaos::{points, Fault, FaultAction};
/// use tfr_registers::ProcId;
///
/// let faults = [Fault {
///     pid: ProcId(2),
///     point: points::CONSENSUS_ROUND,
///     nth: 1,
///     action: FaultAction::Crash,
/// }];
/// let report = run_consensus_chaos(Duration::from_micros(50), &[true, false, true], &faults);
/// assert!(report.agreement && report.validity);
/// assert_eq!(report.crashed, vec![ProcId(2)]);
/// assert_eq!(report.decisions.len(), 2, "the two survivors return");
/// ```
pub fn run_consensus_chaos(
    delta: Duration,
    inputs: &[bool],
    faults: &[Fault],
) -> ConsensusChaosReport {
    run_consensus_chaos_inner(delta, inputs, faults, None)
}

/// [`run_consensus_chaos`] with telemetry: the consensus object is built
/// with a trace on `tracer`, proposers register with
/// `tfr_telemetry::with_pid` (Algorithm 1's `propose` carries no process
/// id), and a [`ChaosTraceObserver`] turns injection-point traffic and
/// fired faults into events on the same timeline.
pub fn run_consensus_chaos_traced(
    delta: Duration,
    inputs: &[bool],
    faults: &[Fault],
    tracer: &Arc<Tracer>,
) -> ConsensusChaosReport {
    run_consensus_chaos_inner(delta, inputs, faults, Some(tracer))
}

/// [`run_consensus_chaos_traced`] with a live [`Collector`]: the online
/// monitors stream the run's events while the schedule fires, and the
/// returned [`ObsReport`] carries fault counts, stage tracks, and any
/// flagged invariant violations.
pub fn run_consensus_chaos_observed(
    delta: Duration,
    inputs: &[bool],
    faults: &[Fault],
    tracer: &Arc<Tracer>,
    obs: CollectorConfig,
) -> (ConsensusChaosReport, ObsReport) {
    let collector = Collector::spawn(Arc::clone(tracer), obs);
    let report = run_consensus_chaos_inner(delta, inputs, faults, Some(tracer));
    (report, collector.finish())
}

fn run_consensus_chaos_inner(
    delta: Duration,
    inputs: &[bool],
    faults: &[Fault],
    tracer: Option<&Arc<Tracer>>,
) -> ConsensusChaosReport {
    assert!(!inputs.is_empty(), "at least one proposer is required");
    let session = ChaosSession::install(faults);
    let _observer =
        tracer.map(|t| install_point_observer(Arc::new(ChaosTraceObserver::new(Arc::clone(t)))));
    let mut cons = NativeConsensus::new(delta);
    if let Some(t) = tracer {
        cons = cons.with_trace(Trace::attached(Arc::clone(t)));
    }

    let mut decisions = Vec::new();
    let mut crashed = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| {
                let cons = &cons;
                s.spawn(move || {
                    chaos::run_as(ProcId(i), move || {
                        with_pid(ProcId(i), || cons.propose(input))
                    })
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            match h
                .join()
                .expect("proposer panicked outside the crash protocol")
            {
                chaos::ThreadOutcome::Completed(v) => decisions.push((ProcId(i), v)),
                // A consensus proposer that crashes — recoverably or not —
                // never rejoins this workload; both count as crashed.
                chaos::ThreadOutcome::Crashed | chaos::ThreadOutcome::CrashedRecoverable(_) => {
                    crashed.push(ProcId(i))
                }
            }
        }
    });

    let final_decision = cons.decision();
    let agreement = match final_decision {
        Some(d) => decisions.iter().all(|&(_, v)| v == d),
        // No register decision: only acceptable when nobody returned.
        None => decisions.is_empty(),
    };
    let validity = match final_decision.or_else(|| decisions.first().map(|&(_, v)| v)) {
        Some(v) => inputs.contains(&v),
        None => true, // nothing decided, nothing to invalidate
    };
    ConsensusChaosReport {
        decisions,
        crashed,
        final_decision,
        agreement,
        validity,
        fired: session.injector().fired(),
    }
}

/// A complete, self-contained Fischer-violation experiment: the fault
/// schedule, the workload shape, and the Δ estimate, all derived from one
/// seed.
#[derive(Debug, Clone)]
pub struct ViolationSetup {
    /// The seed everything below was derived from.
    pub seed: u64,
    /// The `delay(Δ)` estimate handed to the lock under test.
    pub delta: Duration,
    /// The fault schedule.
    pub faults: Vec<Fault>,
    /// The workload shape.
    pub config: MutexChaosConfig,
}

/// Derives the §2 violation experiment from a seed (deterministically:
/// equal seeds, equal experiments).
///
/// The schedule stalls a victim thread inside Fischer's read→write window
/// — after `await x = 0` observed 0, before `x := i` — for much longer
/// than Δ, while an ordering stall on the *other* thread guarantees the
/// victim reaches the window first. The other thread then runs the clean
/// protocol, enters, and is still inside (the critical-section dwell
/// covers the stall) when the victim wakes, writes its stale token,
/// delays Δ, reads its own token back and walks in: two threads in the
/// critical section.
///
/// # Example
///
/// ```
/// use tfr_chaos::nemesis::violation_setup_from_seed;
///
/// let setup = violation_setup_from_seed(7);
/// assert_eq!(setup.faults, violation_setup_from_seed(7).faults, "pure in the seed");
/// assert_eq!(setup.config.n, 2);
/// // The victim's in-window stall dwarfs the Δ estimate — a real timing
/// // failure, not a borderline one.
/// let longest = setup
///     .faults
///     .iter()
///     .map(|f| match f.action {
///         tfr_registers::chaos::FaultAction::Stall(d) => d,
///         _ => unreachable!(),
///     })
///     .max()
///     .unwrap();
/// assert!(longest > 10 * setup.delta);
/// ```
pub fn violation_setup_from_seed(seed: u64) -> ViolationSetup {
    let mut rng = SplitMix64::new(seed);
    let delta_us = rng.random_range(200..=800);
    let victim = rng.index(2);
    let other = 1 - victim;
    // The victim must be parked in the window before the other thread
    // starts: hold the other back across thread-spawn jitter.
    let order_us = 20_000 + rng.random_range(0..=10_000);
    // The victim's stall: well past the other's entry (order + Δ + ε).
    let stall_us = order_us + 10 * delta_us + rng.random_range(10_000..=30_000);
    // The other thread must still be inside when the victim enters at
    // ≈ stall + Δ; it entered at ≈ order + Δ.
    let cs_hold_us = (stall_us - order_us) + 20_000;
    ViolationSetup {
        seed,
        delta: Duration::from_micros(delta_us),
        faults: vec![
            Fault {
                pid: ProcId(other),
                point: points::WORKLOAD_NCS,
                nth: 1,
                action: FaultAction::Stall(Duration::from_micros(order_us)),
            },
            Fault {
                pid: ProcId(victim),
                point: points::FISCHER_WRITE_X,
                nth: 1,
                action: FaultAction::Stall(Duration::from_micros(stall_us)),
            },
        ],
        config: MutexChaosConfig {
            n: 2,
            iterations: 1,
            cs_hold: Duration::from_micros(cs_hold_us),
            ncs_hold: Duration::ZERO,
        },
    }
}

/// Runs the violation experiment for `seed` against a fresh native
/// Fischer lock and reports what happened.
pub fn run_fischer_violation(seed: u64) -> (ViolationSetup, MutexChaosReport) {
    let setup = violation_setup_from_seed(seed);
    let lock = Fischer::new(2, setup.delta);
    let report = run_mutex_chaos(&lock, &setup.config, &setup.faults);
    (setup, report)
}

/// Hunts for a seed whose schedule breaks native Fischer, starting at
/// `first_seed` and trying up to `attempts` seeds. Returns the winning
/// seed with its report. The construction makes nearly every seed a
/// winner; the hunt exists so callers can print a *verified* seed.
pub fn hunt_fischer_violation(first_seed: u64, attempts: u64) -> Option<(u64, MutexChaosReport)> {
    for seed in first_seed..first_seed.saturating_add(attempts) {
        let (_, report) = run_fischer_violation(seed);
        if report.mutual_exclusion_violated() {
            return Some((seed, report));
        }
    }
    None
}

/// Runs the same seed-derived schedule against Algorithm 3 (the resilient
/// mutex, with the stall aimed at its identical read→write window) and
/// reports — the companion experiment showing the *same* failure that
/// breaks Fischer leaves Algorithm 3 safe.
pub fn run_resilient_under_violation_schedule(seed: u64) -> MutexChaosReport {
    let setup = violation_setup_from_seed(seed);
    // Same windows, but in Algorithm 3 the hazardous write-x window is
    // the RESILIENT_WRITE_X point.
    let faults: Vec<Fault> = setup
        .faults
        .iter()
        .map(|f| Fault {
            point: if f.point == points::FISCHER_WRITE_X {
                points::RESILIENT_WRITE_X
            } else {
                f.point
            },
            ..*f
        })
        .collect();
    let lock = tfr_core::mutex::resilient::ResilientMutex::standard(2, setup.delta);
    run_mutex_chaos(&lock, &setup.config, &faults)
}

/// Convenience: a seeded random mutex schedule via
/// [`ScheduleConfig::mutex`].
pub fn random_mutex_schedule(seed: u64, n: usize, delta: Duration) -> Vec<Fault> {
    random_schedule(seed, &ScheduleConfig::mutex(n, delta))
}

/// Convenience: a seeded random consensus schedule via
/// [`ScheduleConfig::consensus`].
pub fn random_consensus_schedule(seed: u64, n: usize, delta: Duration) -> Vec<Fault> {
    random_schedule(seed, &ScheduleConfig::consensus(n, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_core::mutex::resilient::ResilientMutex;

    #[test]
    fn fault_free_baseline_is_clean() {
        let lock = ResilientMutex::standard(3, Duration::from_micros(100));
        let report = run_mutex_chaos(&lock, &MutexChaosConfig::new(3), &[]);
        assert!(!report.mutual_exclusion_violated());
        assert_eq!(report.max_in_cs, 1);
        assert_eq!(report.completed.len(), 3);
        assert!(report.crashed.is_empty());
        assert_eq!(report.entries.len(), 3 * 20);
        assert!(report.fired.is_empty() && report.last_fault_at.is_none());
    }

    #[test]
    fn violation_setup_is_deterministic() {
        let a = violation_setup_from_seed(99);
        let b = violation_setup_from_seed(99);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.config.cs_hold, b.config.cs_hold);
        assert_ne!(violation_setup_from_seed(100).faults, a.faults);
    }

    #[test]
    #[should_panic(expected = "crash-stop at workload.ncs")]
    fn crash_inside_the_lock_is_rejected() {
        let lock = ResilientMutex::standard(2, Duration::from_micros(100));
        let faults = [Fault {
            pid: ProcId(0),
            point: points::RESILIENT_INNER,
            nth: 1,
            action: FaultAction::Crash,
        }];
        let _ = run_mutex_chaos(&lock, &MutexChaosConfig::new(2), &faults);
    }

    #[test]
    fn consensus_solo_under_no_faults() {
        let report = run_consensus_chaos(Duration::from_micros(50), &[true], &[]);
        assert_eq!(report.final_decision, Some(true));
        assert!(report.agreement && report.validity);
        assert!(report.crashed.is_empty());
    }

    #[test]
    fn traced_mutex_run_records_faults_and_lock_events() {
        use tfr_telemetry::EventKind;
        let tracer = Arc::new(Tracer::new(2));
        let delta = Duration::from_micros(100);
        let lock =
            ResilientMutex::standard(2, delta).with_trace(Trace::attached(Arc::clone(&tracer)));
        let faults = [Fault {
            pid: ProcId(0),
            point: points::RESILIENT_WRITE_X,
            nth: 1,
            action: FaultAction::Stall(delta * 10),
        }];
        let mut cfg = MutexChaosConfig::new(2);
        cfg.iterations = 3;
        let report = run_mutex_chaos_traced(&lock, &cfg, &faults, &tracer);
        assert!(!report.mutual_exclusion_violated());
        let events = tracer.events();
        let fired: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultFired { .. }))
            .collect();
        assert_eq!(fired.len(), 1, "the scheduled stall appears in the trace");
        assert_eq!(fired[0].pid, ProcId(0));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::LockAcquired { .. }))
                .count(),
            2 * 3,
            "every acquisition is a traced event"
        );
        assert!(
            events.iter().any(
                |e| matches!(e.kind, EventKind::PointHit { point } if point == points::WORKLOAD_NCS)
            ),
            "injection points double as trace points"
        );
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn traced_consensus_run_records_rounds_and_decision() {
        use tfr_telemetry::EventKind;
        let tracer = Arc::new(Tracer::new(3));
        let report = run_consensus_chaos_traced(
            Duration::from_micros(50),
            &[true, false, true],
            &[],
            &tracer,
        );
        assert!(report.agreement && report.validity);
        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RoundStart { .. })));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Decided { .. }))
                .count(),
            3,
            "every completing proposer traces its decision"
        );
    }
}
