//! Model-checker counterexamples as native fault schedules.
//!
//! The `tfr-modelcheck` explorers find abstract violations: a
//! [`Counterexample`] is an interleaving of register actions that drives
//! the *spec form* of an algorithm into a bad state. This module closes
//! the loop with the native stack: [`fischer_faults_from_counterexample`]
//! compiles a Fischer mutual-exclusion counterexample into a concrete
//! [`Fault`] schedule whose [`run_mutex_chaos`](crate::run_mutex_chaos)
//! replay makes **real threads** on **real atomics** commit the same
//! violation, deterministically.
//!
//! # How the compilation works
//!
//! The explorer's schedule fixes a total order of shared-memory steps.
//! Natively we cannot schedule instructions, but we *can* stall threads
//! at the injection points of [`tfr_registers::chaos`] — and a stall is
//! exactly a timing failure, the fault class the counterexample exploits
//! in the first place. The converter synthesises a timeline:
//!
//! 1. Walk the abstract schedule once, assigning each step a wall-clock
//!    start time: a context-switch margin (tens of milliseconds, far
//!    above thread-spawn and scheduler jitter) is charged whenever the
//!    acting process changes, and Fischer's in-protocol `delay(Δ)` steps
//!    are charged the native Δ.
//! 2. For each process, the gap between two of its consecutive steps
//!    that is filled with other processes' activity becomes a stall at
//!    the native pre-point of the later step: the thread arrives early,
//!    sleeps through exactly the window the model schedule kept it
//!    inert, and resumes on cue.
//!
//! The pre-points used are [`points::WORKLOAD_NCS`] (start-of-iteration,
//! realising the schedule's process start order),
//! [`points::FISCHER_WRITE_X`] (the read→write window — the §3.1 hazard)
//! and [`points::FISCHER_CHECK_X`] (between `delay(Δ)` and the ownership
//! check). Fischer's await-read (`while x ≠ 0`) needs no point: the spin
//! exits the moment it sees zero, and the write it guards is held back
//! by the window stall, so an early native read observes the same value
//! the model read did.
//!
//! The margins make the replay robust rather than racy: every ordering
//! constraint is enforced by a stall an order of magnitude longer than
//! OS noise, so the violation reproduces on every run, not with some
//! probability.
//!
//! # Scope
//!
//! The compiler targets single-iteration entry violations — schedules in
//! which each process acquires at most once and the violation is the
//! second simultaneous entry. That is exactly the shape
//! `tfr_core::verify::fischer_counterexample` produces (its workload is
//! one acquisition per process, and a mutual-exclusion monitor flags at
//! the moment of the intruding entry, before any exit can appear).

use std::time::Duration;

use crate::nemesis::MutexChaosConfig;
use tfr_modelcheck::Counterexample;
use tfr_registers::chaos::{points, Fault, FaultAction};
use tfr_registers::spec::Action;
use tfr_registers::{ProcId, RegId};

/// Margin charged whenever the schedule switches to a different process:
/// the replay's unit of "happens after". Dominates thread-spawn latency
/// and scheduler jitter by orders of magnitude.
const SWITCH_MARGIN: Duration = Duration::from_millis(25);

/// Stalls shorter than this are noise against `SWITCH_MARGIN` and are
/// dropped (the margin of the *next* switch already absorbs them).
const MIN_STALL: Duration = Duration::from_millis(1);

/// A compiled counterexample: everything `run_mutex_chaos` needs to
/// replay the model-level violation on the native lock.
#[derive(Debug, Clone)]
pub struct CompiledViolation {
    /// The stalls realising the abstract schedule.
    pub faults: Vec<Fault>,
    /// Workload shape: one iteration per process, zero remainder dwell,
    /// and a critical-section dwell long enough that the first entrant
    /// is still inside when the schedule walks the intruder in.
    pub config: MutexChaosConfig,
    /// The native Δ the timeline was computed against; build the lock
    /// with this (`Fischer::new(n, compiled.delta)`).
    pub delta: Duration,
}

/// Compiles a Fischer mutual-exclusion [`Counterexample`] (from the
/// spec-form lock on register `x`) into a native fault schedule.
///
/// `delta` is the native lock's Δ — the timeline charges it for each
/// in-protocol `delay` step. Keep it well under [`SWITCH_MARGIN`] so the
/// protocol's own waiting never outruns the ordering stalls (the
/// sub-millisecond Δs used across this workspace all qualify).
///
/// # Panics
///
/// Panics if the schedule mentions a process id `>= n` or contains an
/// exit write (`x := 0`) — see the module docs on scope.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use tfr_chaos::fromcex::fischer_faults_from_counterexample;
/// use tfr_chaos::run_mutex_chaos;
/// use tfr_core::mutex::fischer::{Fischer, FischerSpec};
///
/// let cex = tfr_core::verify::fischer_counterexample(2).unwrap();
/// let x = FischerSpec::new(2, 0, tfr_registers::Ticks(100)).x();
/// let compiled =
///     fischer_faults_from_counterexample(&cex, 2, x, Duration::from_micros(500));
/// let lock = Fischer::new(2, compiled.delta);
/// let report = run_mutex_chaos(&lock, &compiled.config, &compiled.faults);
/// assert!(report.mutual_exclusion_violated());
/// ```
pub fn fischer_faults_from_counterexample(
    cex: &Counterexample,
    n: usize,
    x: RegId,
    delta: Duration,
) -> CompiledViolation {
    // Pass 1: the synthetic timeline. `start[i]` is when step `i` should
    // begin natively; `end_of[p]` is when `p`'s latest step finished.
    let mut start: Vec<Duration> = Vec::with_capacity(cex.schedule.len());
    let mut clock = Duration::ZERO;
    let mut prev_pid: Option<ProcId> = None;
    // Per process: (time its previous step ended, its previous action).
    let mut last: Vec<Option<(Duration, Action)>> = vec![None; n];

    for &(pid, action) in &cex.schedule {
        assert!(pid.0 < n, "counterexample mentions {pid} but n = {n}");
        assert!(
            action != Action::Write(x, 0),
            "exit writes are outside the compiler's scope (see module docs)"
        );
        if prev_pid.is_some_and(|q| q != pid) {
            clock += SWITCH_MARGIN;
        }
        start.push(clock);
        // Only Fischer's own delay(Δ) — the delay following the token
        // write — costs real time natively; remainder/critical dwells
        // are config-controlled and held at zero / charged separately.
        if matches!(action, Action::Delay(_)) && is_entry_write(last[pid.0].map(|(_, a)| a), x) {
            clock += delta;
        }
        last[pid.0] = Some((clock, action));
        prev_pid = Some(pid);
    }

    // Pass 2: per-process gaps become stalls at the pre-point of the
    // gapped step. `nth` counts native visits of each point, which for a
    // pre-exit schedule is exactly the number of model steps of that
    // shape seen so far.
    let mut faults = Vec::new();
    let mut prev_own: Vec<Option<(Duration, Action)>> = vec![None; n];
    let mut write_visits = vec![0u64; n];
    let mut check_visits = vec![0u64; n];

    for (i, &(pid, action)) in cex.schedule.iter().enumerate() {
        let p = pid.0;
        let (point, nth) = match (prev_own[p], action) {
            // First step: the iteration begins at `workload.ncs`.
            (None, _) => (points::WORKLOAD_NCS, 1),
            // Token write: the read→write window.
            (_, Action::Write(r, v)) if r == x && v != 0 => {
                write_visits[p] += 1;
                (points::FISCHER_WRITE_X, write_visits[p])
            }
            // Read of x right after the post-write delay: the check.
            (Some((_, Action::Delay(_))), Action::Read(r))
                if r == x && was_post_write_delay(&cex.schedule, i, pid, x) =>
            {
                check_visits[p] += 1;
                (points::FISCHER_CHECK_X, check_visits[p])
            }
            // Await-reads and dwell delays have no native pre-point and
            // need none (see module docs).
            _ => {
                prev_own[p] = Some((end_time(start[i], action, prev_own[p], x, delta), action));
                continue;
            }
        };
        let ready_at = prev_own[p].map_or(Duration::ZERO, |(t, _)| t);
        let stall = start[i].saturating_sub(ready_at);
        if stall >= MIN_STALL {
            faults.push(Fault {
                pid,
                point,
                nth,
                action: FaultAction::Stall(stall),
            });
        }
        prev_own[p] = Some((end_time(start[i], action, prev_own[p], x, delta), action));
    }

    // The first entrant must still be inside the critical section when
    // the schedule's last step walks the intruder in.
    let config = MutexChaosConfig {
        n,
        iterations: 1,
        cs_hold: clock + 2 * SWITCH_MARGIN,
        ncs_hold: Duration::ZERO,
    };
    CompiledViolation {
        faults,
        config,
        delta,
    }
}

/// Whether `prev` (a process's preceding action) was its token write to
/// `x` — making the current delay the in-protocol `delay(Δ)`.
fn is_entry_write(prev: Option<Action>, x: RegId) -> bool {
    matches!(prev, Some(Action::Write(r, v)) if r == x && v != 0)
}

/// Whether the delay immediately before step `i` in `pid`'s own
/// subsequence follows `pid`'s token write — i.e. step `i` is the
/// ownership check, not some later read.
fn was_post_write_delay(schedule: &[(ProcId, Action)], i: usize, pid: ProcId, x: RegId) -> bool {
    let mut own = schedule[..i]
        .iter()
        .rev()
        .filter(|(q, _)| *q == pid)
        .map(|&(_, a)| a);
    matches!(own.next(), Some(Action::Delay(_))) && is_entry_write(own.next(), x)
}

/// When a step beginning at `begin` finishes natively: Δ for the
/// in-protocol delay, instantaneous otherwise.
fn end_time(
    begin: Duration,
    action: Action,
    prev_own: Option<(Duration, Action)>,
    x: RegId,
    delta: Duration,
) -> Duration {
    if matches!(action, Action::Delay(_)) && is_entry_write(prev_own.map(|(_, a)| a), x) {
        begin + delta
    } else {
        begin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_modelcheck::Violation;
    use tfr_registers::Ticks;

    const X: RegId = RegId(0);
    const D: Duration = Duration::from_micros(500);

    /// The canonical §3.1 interleaving: both processes observe `x = 0`,
    /// then each completes write → delay → check in turn.
    fn canonical_cex() -> Counterexample {
        let p0 = ProcId(0);
        let p1 = ProcId(1);
        Counterexample {
            violation: Violation::MutualExclusion { pids: (p0, p1) },
            schedule: vec![
                (p0, Action::Delay(Ticks(1))), // remainder
                (p0, Action::Read(X)),         // await: sees 0
                (p1, Action::Delay(Ticks(1))),
                (p1, Action::Read(X)), // await: sees 0 — in the window
                (p0, Action::Write(X, 1)),
                (p0, Action::Delay(Ticks(100))),
                (p0, Action::Read(X)), // check: owns x → enters
                (p1, Action::Write(X, 2)),
                (p1, Action::Delay(Ticks(100))),
                (p1, Action::Read(X)), // check: owns x → violation
            ],
        }
    }

    #[test]
    fn canonical_cex_compiles_to_ordering_and_window_stalls() {
        let c = fischer_faults_from_counterexample(&canonical_cex(), 2, X, D);
        // p1 starts one switch late; both sit in the window while the
        // other acts; p0's check follows its delay gap-free.
        let stalls: Vec<(ProcId, &str, u64)> =
            c.faults.iter().map(|f| (f.pid, f.point, f.nth)).collect();
        assert_eq!(
            stalls,
            vec![
                (ProcId(1), points::WORKLOAD_NCS, 1),
                (ProcId(0), points::FISCHER_WRITE_X, 1),
                (ProcId(1), points::FISCHER_WRITE_X, 1),
            ]
        );
    }

    #[test]
    fn window_stalls_cover_the_other_processes_activity() {
        let c = fischer_faults_from_counterexample(&canonical_cex(), 2, X, D);
        let stall = |pid: ProcId, point: &str| {
            c.faults
                .iter()
                .find(|f| f.pid == pid && f.point == point)
                .map(|f| match f.action {
                    FaultAction::Stall(d) => d,
                    _ => unreachable!(),
                })
                .unwrap()
        };
        // p0 waits in the window for p1's start margin + await steps.
        assert_eq!(stall(ProcId(0), points::FISCHER_WRITE_X), 2 * SWITCH_MARGIN);
        // p1 additionally waits out p0's write + delay(Δ) + check.
        assert_eq!(
            stall(ProcId(1), points::FISCHER_WRITE_X),
            2 * SWITCH_MARGIN + D
        );
        // And the winner dwells in the CS past the end of the schedule.
        assert!(c.config.cs_hold > 4 * SWITCH_MARGIN + 2 * D);
        assert_eq!(c.config.iterations, 1);
        assert_eq!(c.config.ncs_hold, Duration::ZERO);
    }

    #[test]
    fn gapless_checks_emit_no_check_stall() {
        let c = fischer_faults_from_counterexample(&canonical_cex(), 2, X, D);
        assert!(c.faults.iter().all(|f| f.point != points::FISCHER_CHECK_X));
    }

    #[test]
    fn gapped_check_emits_a_check_stall() {
        // A variant where p1's write lands between p0's delay and check
        // (still a violation: p0's check reads... its own token? no —
        // this shape instead requires p1's write *after* p0's check; put
        // the intrusion on p1's side and gap p1's check with p0's CS
        // dwell).
        let p0 = ProcId(0);
        let p1 = ProcId(1);
        let cex = Counterexample {
            violation: Violation::MutualExclusion { pids: (p0, p1) },
            schedule: vec![
                (p0, Action::Delay(Ticks(1))),
                (p0, Action::Read(X)),
                (p1, Action::Delay(Ticks(1))),
                (p1, Action::Read(X)),
                (p0, Action::Write(X, 1)),
                (p0, Action::Delay(Ticks(100))),
                (p0, Action::Read(X)), // enters
                (p1, Action::Write(X, 2)),
                (p1, Action::Delay(Ticks(100))),
                (p0, Action::Delay(Ticks(1))), // p0 dwells in the CS
                (p1, Action::Read(X)),         // gapped check → violation
            ],
        };
        let c = fischer_faults_from_counterexample(&cex, 2, X, D);
        let check: Vec<_> = c
            .faults
            .iter()
            .filter(|f| f.point == points::FISCHER_CHECK_X)
            .collect();
        assert_eq!(check.len(), 1);
        assert_eq!(check[0].pid, p1);
        assert_eq!(check[0].nth, 1);
    }

    #[test]
    #[should_panic(expected = "exit writes")]
    fn exit_writes_are_rejected() {
        let cex = Counterexample {
            violation: Violation::MutualExclusion {
                pids: (ProcId(0), ProcId(1)),
            },
            schedule: vec![(ProcId(0), Action::Write(X, 0))],
        };
        let _ = fischer_faults_from_counterexample(&cex, 2, X, D);
    }

    #[test]
    fn compiled_schedule_reproduces_the_violation_natively() {
        use crate::run_mutex_chaos;
        use tfr_core::mutex::fischer::Fischer;

        let cex = tfr_core::verify::fischer_counterexample(2).expect("Fischer must break");
        let c = fischer_faults_from_counterexample(&cex, 2, X, D);
        let lock = Fischer::new(2, c.delta);
        let report = run_mutex_chaos(&lock, &c.config, &c.faults);
        assert!(
            report.mutual_exclusion_violated(),
            "native replay must reproduce the model violation: {report:?}"
        );
    }
}
