//! Fault schedules: seeded random generation and greedy shrinking.
//!
//! A schedule is a plain `Vec<Fault>` — the unit the nemesis installs,
//! replays, and shrinks. Everything here is a pure function of its seed,
//! so a printed seed *is* the schedule.

use std::time::Duration;
use tfr_registers::chaos::{points, Fault, FaultAction};
use tfr_registers::rng::SplitMix64;
use tfr_registers::ProcId;

/// Shape of a random schedule: which points may stall, which may
/// crash-stop, how hard and how often.
#[derive(Debug, Clone)]
pub struct ScheduleConfig {
    /// Number of participating processes (faults target pids `0..n`).
    pub n: usize,
    /// Number of faults to draw.
    pub max_faults: usize,
    /// Points eligible for [`FaultAction::Stall`] faults.
    pub stall_points: Vec<&'static str>,
    /// Points eligible for [`FaultAction::Crash`] faults. Empty disables
    /// crashes entirely.
    pub crash_points: Vec<&'static str>,
    /// Visit numbers are drawn from `1..=max_nth`.
    pub max_nth: u64,
    /// Stall durations are drawn from `[min_stall, max_stall]`.
    pub min_stall: Duration,
    /// See `min_stall`.
    pub max_stall: Duration,
    /// Probability that a drawn fault is a crash (when `crash_points` is
    /// nonempty).
    pub crash_prob: f64,
    /// Points eligible for [`FaultAction::CrashRecover`] faults. Empty
    /// disables crash-recoveries entirely (and leaves the RNG stream of
    /// pre-recovery configs untouched, so old seeds replay unchanged).
    pub crash_recover_points: Vec<&'static str>,
    /// Probability that a drawn fault is a crash-recovery (when
    /// `crash_recover_points` is nonempty). Tried before `crash_prob`.
    pub recover_prob: f64,
    /// Down times for crash-recoveries are drawn from
    /// `[min_down, max_down]`.
    pub min_down: Duration,
    /// See `min_down`.
    pub max_down: Duration,
}

impl ScheduleConfig {
    /// A schedule shape for native mutex workloads under Δ-estimate
    /// `delta`: stalls of 1–8Δ land in the timing-sensitive windows
    /// (the Fischer-stage read→write gap, the delay, the raw array ops),
    /// crash-stops only between iterations ([`points::WORKLOAD_NCS`]) —
    /// a crash while *holding* a lock blocks every survivor by
    /// construction, which is not the claim a mutex nemesis tests.
    pub fn mutex(n: usize, delta: Duration) -> ScheduleConfig {
        ScheduleConfig {
            n,
            max_faults: 4,
            stall_points: vec![
                points::FISCHER_WRITE_X,
                points::FISCHER_CHECK_X,
                points::RESILIENT_WRITE_X,
                points::RESILIENT_INNER,
                points::RESILIENT_EXIT,
                points::DELAY,
                points::ARRAY_LOAD,
                points::ARRAY_STORE,
                points::WORKLOAD_NCS,
            ],
            crash_points: vec![points::WORKLOAD_NCS],
            max_nth: 4,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.2,
            crash_recover_points: Vec::new(),
            recover_prob: 0.0,
            min_down: Duration::ZERO,
            max_down: Duration::ZERO,
        }
    }

    /// A schedule shape for native consensus: Algorithm 1 is wait-free,
    /// so crash-stops are legal *anywhere* — mid-round, even between
    /// seeing `x[r, v̄] = 0` and writing `decide`.
    pub fn consensus(n: usize, delta: Duration) -> ScheduleConfig {
        let anywhere = vec![
            points::CONSENSUS_ROUND,
            points::CONSENSUS_DECIDE,
            points::DELAY,
            points::ARRAY_LOAD,
            points::ARRAY_STORE,
        ];
        ScheduleConfig {
            n,
            max_faults: 6,
            stall_points: anywhere.clone(),
            crash_points: anywhere,
            // Wait-free runs are short — a proposer often decides within a
            // round or two, so high visit numbers never arrive.
            max_nth: 2,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.3,
            crash_recover_points: Vec::new(),
            recover_prob: 0.0,
            min_down: Duration::ZERO,
            max_down: Duration::ZERO,
        }
    }

    /// A schedule shape for the derived wait-free objects (election,
    /// test-and-set, renaming, set consensus, universal objects): they
    /// bottom out in Algorithm 1 instances, so the consensus points are
    /// the timing-sensitive ones, and — being wait-free — crash-stops are
    /// legal anywhere. Visit numbers range higher than for bare consensus
    /// because one object operation drives many consensus instances.
    ///
    /// # Example
    ///
    /// ```
    /// use std::time::Duration;
    /// use tfr_chaos::{random_schedule, ScheduleConfig};
    ///
    /// let cfg = ScheduleConfig::objects(3, Duration::from_micros(50));
    /// let schedule = random_schedule(42, &cfg);
    /// assert_eq!(schedule, random_schedule(42, &cfg), "seed determines all");
    /// assert!(schedule.iter().all(|f| f.pid.0 < 3));
    /// ```
    pub fn objects(n: usize, delta: Duration) -> ScheduleConfig {
        let anywhere = vec![
            points::CONSENSUS_ROUND,
            points::CONSENSUS_DECIDE,
            points::DELAY,
            points::ARRAY_LOAD,
            points::ARRAY_STORE,
        ];
        ScheduleConfig {
            n,
            max_faults: 5,
            stall_points: anywhere.clone(),
            crash_points: anywhere,
            max_nth: 6,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.25,
            crash_recover_points: Vec::new(),
            recover_prob: 0.0,
            min_down: Duration::ZERO,
            max_down: Duration::ZERO,
        }
    }

    /// A schedule shape for the sharded object service: shard logs bottom
    /// out in consensus instances (so those points stay timing-sensitive)
    /// and the service adds its own two — the announce publication
    /// ([`points::UNIVERSAL_ANNOUNCE`]) and the combiner's batch proposal
    /// ([`points::UNIVERSAL_COMBINE`]). The construction is wait-free, so
    /// permanent crash-stops are legal anywhere; crash-*recoveries* are
    /// confined to the two universal points, because those are the places
    /// a fresh incarnation provably resynchronises from the registers
    /// (the announce counter and arena mark are register-backed).
    pub fn service(n: usize, delta: Duration) -> ScheduleConfig {
        let anywhere = vec![
            points::CONSENSUS_ROUND,
            points::CONSENSUS_DECIDE,
            points::DELAY,
            points::ARRAY_LOAD,
            points::ARRAY_STORE,
            points::UNIVERSAL_ANNOUNCE,
            points::UNIVERSAL_COMBINE,
        ];
        ScheduleConfig {
            n,
            max_faults: 6,
            stall_points: anywhere.clone(),
            crash_points: anywhere,
            max_nth: 6,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.15,
            crash_recover_points: vec![points::UNIVERSAL_ANNOUNCE, points::UNIVERSAL_COMBINE],
            recover_prob: 0.35,
            min_down: delta,
            max_down: delta * 8,
        }
    }

    /// A schedule shape for the replicated log: height decisions bottom
    /// out in consensus instances (their points stay timing-sensitive)
    /// and the log adds its own two — the batch publication before a
    /// height proposal ([`points::LOG_PROPOSE`]) and the in-order entry
    /// application ([`points::LOG_APPLY`]). Stalls at those points land
    /// exactly on height transitions, mid-pipeline. Crash-*recoveries*
    /// are confined to the two log points: both sit before any arena or
    /// ack write of the step they guard, so a fresh incarnation provably
    /// resynchronises by replaying the decided registers (crashing
    /// *inside* a publish could otherwise let a later incarnation
    /// overwrite an arena block a concurrent adopter already decided
    /// on). Permanent crash-stops are deliberately absent: the commit
    /// pipeline bounds how far the frontier may run ahead of the
    /// *cluster* applied floor, so every lane's progress is load-bearing
    /// for liveness — a lane that dies for good is a reconfiguration
    /// problem, not a timing failure, and safety under it is already
    /// covered by the window stalling rather than committing.
    pub fn log(n: usize, delta: Duration) -> ScheduleConfig {
        let anywhere = vec![
            points::CONSENSUS_ROUND,
            points::CONSENSUS_DECIDE,
            points::DELAY,
            points::ARRAY_LOAD,
            points::ARRAY_STORE,
            points::LOG_PROPOSE,
            points::LOG_APPLY,
        ];
        ScheduleConfig {
            n,
            max_faults: 6,
            stall_points: anywhere,
            crash_points: Vec::new(),
            max_nth: 6,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.0,
            crash_recover_points: vec![points::LOG_PROPOSE, points::LOG_APPLY],
            recover_prob: 0.45,
            min_down: delta,
            max_down: delta * 8,
        }
    }

    /// A schedule shape for *recoverable* mutex workloads under
    /// Δ-estimate `delta`: crash-recoveries land both **inside** the
    /// critical section ([`points::WORKLOAD_CS`], [`points::RECOVERABLE_CS`])
    /// and outside it (the acquire/release windows, the recovery section
    /// itself, and the remainder section), because the recoverable lock's
    /// whole claim is that an orphaned CS gets repaired. Down times of
    /// 1–8Δ keep the survivors contending while the victim is away.
    /// Permanent crash-stops stay confined to [`points::WORKLOAD_NCS`].
    pub fn recoverable_mutex(n: usize, delta: Duration) -> ScheduleConfig {
        ScheduleConfig {
            n,
            max_faults: 6,
            stall_points: vec![
                points::RECOVERABLE_ACQUIRE,
                points::RECOVERABLE_RELEASE,
                points::RESILIENT_WRITE_X,
                points::RESILIENT_INNER,
                points::DELAY,
                points::WORKLOAD_NCS,
            ],
            crash_points: vec![points::WORKLOAD_NCS],
            max_nth: 4,
            min_stall: delta,
            max_stall: delta * 8,
            crash_prob: 0.1,
            crash_recover_points: vec![
                points::WORKLOAD_CS,
                points::RECOVERABLE_CS,
                points::RECOVERABLE_ACQUIRE,
                points::RECOVERABLE_RELEASE,
                points::RECOVERY_SECTION,
                points::WORKLOAD_NCS,
            ],
            recover_prob: 0.5,
            min_down: delta,
            max_down: delta * 8,
        }
    }
}

/// Draws a fault schedule from `seed`. Equal seeds yield equal schedules;
/// that is the whole replay story.
///
/// At most one *permanent* crash per pid is drawn (a crash-stopped thread
/// cannot crash again); crash-recoveries may repeat on a pid (the process
/// comes back). Duplicate `(pid, point, nth)` triples are dropped. All
/// crash-recovery draws are gated on `crash_recover_points` being
/// nonempty, so configs without them consume the exact RNG stream they
/// always did — old seeds replay unchanged.
pub fn random_schedule(seed: u64, cfg: &ScheduleConfig) -> Vec<Fault> {
    assert!(cfg.n > 0, "at least one process is required");
    assert!(!cfg.stall_points.is_empty(), "no stall points to aim at");
    assert!(cfg.min_stall <= cfg.max_stall, "stall range is inverted");
    assert!(cfg.min_down <= cfg.max_down, "down-time range is inverted");
    let mut rng = SplitMix64::new(seed);
    let mut faults: Vec<Fault> = Vec::new();
    let mut crashed: Vec<usize> = Vec::new();
    for _ in 0..cfg.max_faults {
        let pid = rng.index(cfg.n);
        let recover = !cfg.crash_recover_points.is_empty() && rng.random_bool(cfg.recover_prob);
        let crash = !recover
            && !cfg.crash_points.is_empty()
            && !crashed.contains(&pid)
            && rng.random_bool(cfg.crash_prob);
        let (point, action) = if recover {
            let span = (cfg.max_down - cfg.min_down).as_micros() as u64;
            let down = cfg.min_down + Duration::from_micros(rng.random_range(0..=span));
            (
                cfg.crash_recover_points[rng.index(cfg.crash_recover_points.len())],
                FaultAction::CrashRecover(down),
            )
        } else if crash {
            crashed.push(pid);
            (
                cfg.crash_points[rng.index(cfg.crash_points.len())],
                FaultAction::Crash,
            )
        } else {
            let span = (cfg.max_stall - cfg.min_stall).as_micros() as u64;
            let stall = cfg.min_stall + Duration::from_micros(rng.random_range(0..=span));
            (
                cfg.stall_points[rng.index(cfg.stall_points.len())],
                FaultAction::Stall(stall),
            )
        };
        let nth = rng.random_range(1..=cfg.max_nth);
        let duplicate = faults
            .iter()
            .any(|f| f.pid.0 == pid && f.point == point && f.nth == nth);
        if !duplicate {
            faults.push(Fault {
                pid: ProcId(pid),
                point,
                nth,
                action,
            });
        }
    }
    faults
}

/// Greedily shrinks a failing schedule to a (locally) minimal one.
///
/// `still_fails` re-runs the experiment with a candidate schedule and
/// reports whether the violation still occurs. Two passes:
///
/// 1. **Remove** faults one at a time, restarting until a fixpoint —
///    every remaining fault is necessary (removing any one makes the
///    violation vanish).
/// 2. **Halve** each remaining stall while the violation persists —
///    durations end within 2× of the smallest failing stall.
///
/// The result is minimal for this greedy order, not globally minimal —
/// the standard delta-debugging trade.
pub fn shrink(schedule: Vec<Fault>, mut still_fails: impl FnMut(&[Fault]) -> bool) -> Vec<Fault> {
    let mut schedule = schedule;
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                schedule = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    for i in 0..schedule.len() {
        while let FaultAction::Stall(d) = schedule[i].action {
            let halved = d / 2;
            if halved < Duration::from_micros(50) {
                break;
            }
            let mut candidate = schedule.clone();
            candidate[i].action = FaultAction::Stall(halved);
            if still_fails(&candidate) {
                schedule = candidate;
            } else {
                break;
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_from_their_seed() {
        let cfg = ScheduleConfig::mutex(4, Duration::from_micros(500));
        assert_eq!(random_schedule(7, &cfg), random_schedule(7, &cfg));
        assert_ne!(random_schedule(7, &cfg), random_schedule(8, &cfg));
    }

    #[test]
    fn mutex_schedules_crash_only_between_iterations() {
        let cfg = ScheduleConfig::mutex(4, Duration::from_micros(500));
        for seed in 0..200 {
            for f in random_schedule(seed, &cfg) {
                if f.action == FaultAction::Crash {
                    assert_eq!(f.point, points::WORKLOAD_NCS, "seed {seed}");
                }
                assert!(f.pid.0 < 4 && f.nth >= 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn at_most_one_crash_per_pid() {
        let mut cfg = ScheduleConfig::consensus(2, Duration::from_micros(300));
        cfg.max_faults = 12;
        cfg.crash_prob = 1.0;
        for seed in 0..100 {
            let schedule = random_schedule(seed, &cfg);
            for pid in 0..2 {
                let crashes = schedule
                    .iter()
                    .filter(|f| f.pid.0 == pid && f.action == FaultAction::Crash)
                    .count();
                assert!(
                    crashes <= 1,
                    "seed {seed}: pid {pid} crashes {crashes} times"
                );
            }
        }
    }

    #[test]
    fn stall_durations_respect_the_configured_range() {
        let cfg = ScheduleConfig::mutex(3, Duration::from_micros(400));
        for seed in 0..100 {
            for f in random_schedule(seed, &cfg) {
                if let FaultAction::Stall(d) = f.action {
                    assert!(
                        d >= cfg.min_stall && d <= cfg.max_stall,
                        "seed {seed}: {d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shrink_removes_irrelevant_faults() {
        // Oracle: the experiment "fails" iff the schedule contains the one
        // load-bearing fault (p0 stalls at FISCHER_WRITE_X).
        let essential = Fault {
            pid: ProcId(0),
            point: points::FISCHER_WRITE_X,
            nth: 1,
            action: FaultAction::Stall(Duration::from_millis(40)),
        };
        let noise: Vec<Fault> = (1..4)
            .map(|i| Fault {
                pid: ProcId(i),
                point: points::DELAY,
                nth: i as u64,
                action: FaultAction::Stall(Duration::from_millis(5)),
            })
            .collect();
        let mut schedule = noise.clone();
        schedule.insert(1, essential);
        let minimal = shrink(schedule, |s| {
            s.iter().any(|f| {
                f.pid == essential.pid
                    && f.point == essential.point
                    && matches!(f.action, FaultAction::Stall(d) if d >= Duration::from_millis(10))
            })
        });
        assert_eq!(
            minimal.len(),
            1,
            "only the essential fault survives: {minimal:?}"
        );
        assert_eq!(minimal[0].pid, essential.pid);
        assert_eq!(minimal[0].point, essential.point);
        // Pass 2 halved the stall down to the smallest still-failing size.
        match minimal[0].action {
            FaultAction::Stall(d) => {
                assert!(
                    d >= Duration::from_millis(10) && d <= Duration::from_millis(20),
                    "{d:?}"
                )
            }
            _ => panic!("stall must stay a stall"),
        }
    }

    #[test]
    fn shrink_of_an_all_essential_schedule_is_identity_sized() {
        let faults: Vec<Fault> = (0..3)
            .map(|i| Fault {
                pid: ProcId(i),
                point: points::DELAY,
                nth: 1,
                action: FaultAction::Crash,
            })
            .collect();
        let n = faults.len();
        let minimal = shrink(faults, |s| s.len() == n);
        assert_eq!(minimal.len(), n);
    }

    #[test]
    fn shrink_of_an_empty_schedule_terminates_empty() {
        let mut calls = 0;
        let minimal = shrink(Vec::new(), |_| {
            calls += 1;
            true
        });
        assert!(minimal.is_empty());
        assert_eq!(calls, 0, "nothing to remove, nothing to probe");
    }

    #[test]
    fn shrink_of_a_single_fault_schedule_keeps_or_drops_it() {
        let fault = Fault {
            pid: ProcId(0),
            point: points::DELAY,
            nth: 1,
            action: FaultAction::Crash,
        };
        // The fault is essential: removing it makes the failure vanish.
        let kept = shrink(vec![fault], |s| !s.is_empty());
        assert_eq!(kept, vec![fault]);
        // The fault is irrelevant: the empty schedule still fails.
        let dropped = shrink(vec![fault], |_| true);
        assert!(dropped.is_empty());
    }

    #[test]
    fn shrink_with_an_accept_everything_predicate_terminates_minimal() {
        // A predicate that accepts every candidate must not loop: the
        // removal pass empties the schedule (the global minimum) and the
        // halving pass has nothing left to probe.
        let cfg = ScheduleConfig::recoverable_mutex(4, Duration::from_millis(1));
        let schedule = random_schedule(11, &cfg);
        assert!(!schedule.is_empty());
        let minimal = shrink(schedule, |_| true);
        assert!(minimal.is_empty(), "accept-everything shrinks to nothing");
    }

    #[test]
    fn recoverable_schedules_draw_crash_recover_faults_deterministically() {
        let cfg = ScheduleConfig::recoverable_mutex(4, Duration::from_micros(500));
        assert_eq!(random_schedule(5, &cfg), random_schedule(5, &cfg));
        let mut saw_recover = 0;
        for seed in 0..100 {
            for f in random_schedule(seed, &cfg) {
                match f.action {
                    FaultAction::CrashRecover(down) => {
                        saw_recover += 1;
                        assert!(
                            down >= cfg.min_down && down <= cfg.max_down,
                            "seed {seed}: down {down:?} outside [{:?}, {:?}]",
                            cfg.min_down,
                            cfg.max_down
                        );
                        assert!(
                            cfg.crash_recover_points.contains(&f.point),
                            "seed {seed}: crash-recover at unexpected point {}",
                            f.point
                        );
                    }
                    FaultAction::Crash => {
                        assert_eq!(f.point, points::WORKLOAD_NCS, "seed {seed}")
                    }
                    FaultAction::Stall(_) => {}
                }
            }
        }
        assert!(
            saw_recover > 50,
            "recover_prob 0.5 must bite: {saw_recover}"
        );
    }

    #[test]
    fn recovery_free_configs_keep_their_historical_rng_stream() {
        // Adding the crash-recover draw must not shift the stream of a
        // config without crash_recover_points: same seed, same schedule,
        // with or without the (disabled) recovery fields in play.
        let base = ScheduleConfig::mutex(4, Duration::from_micros(500));
        let mut probed = base.clone();
        probed.recover_prob = 0.9; // ignored: no points to aim at
        for seed in 0..50 {
            assert_eq!(
                random_schedule(seed, &base),
                random_schedule(seed, &probed),
                "seed {seed}"
            );
        }
    }
}
