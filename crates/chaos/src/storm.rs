//! Large-n *simulated* chaos: timing-failure storms and crash waves at
//! 10^5–10^6 processes, driven through the scaled `tfr-sim` engine.
//!
//! The rest of this crate injects faults into native threads, which tops
//! out at core count. This module scripts the same adversities —
//! windowed timing storms, crash waves — as seeded **simulated**
//! scenarios over the timer-wheel scheduler, where a million processes
//! are affordable. Everything is a pure function of `(seed, config)`, so
//! a storm that exposes a bug replays exactly.
//!
//! The Δ-sweep runner ([`delta_sweep`]) is the workhorse of experiment
//! E25: the same seeded storm executed at several Δ bounds, counting the
//! paper's timing failures (accesses slower than Δ) at each — at scale,
//! in seconds.

use tfr_registers::rng::SplitMix64;
use tfr_registers::{Delta, ProcId, Ticks};
use tfr_sim::timing::{CrashSchedule, FailureWindows, UniformAccess, Window};
use tfr_sim::workload::ScaleLoop;
use tfr_sim::{RunConfig, RunResult, Sim};

/// Shape of a seeded large-n storm.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Process count.
    pub n: usize,
    /// The Δ bound timing failures are counted against.
    pub delta: Delta,
    /// Rounds each process works ([`ScaleLoop`] rounds).
    pub rounds: u32,
    /// Number of slowdown windows (storm bursts).
    pub bursts: usize,
    /// Length of each burst, in Δ units.
    pub burst_deltas: u64,
    /// During a burst, access times inflate to up to this many Δ —
    /// values above 1 manufacture timing failures.
    pub inflate_deltas: u64,
    /// Processes crashed per mille (0..=1000), spread over the run.
    pub crash_per_mille: u32,
}

impl StormConfig {
    /// A storm over `n` processes with bound `delta` and moderate
    /// defaults: 3 rounds, 4 bursts of 20Δ inflating to 4Δ, 1‰ crashes.
    pub fn new(n: usize, delta: Delta) -> StormConfig {
        StormConfig {
            n,
            delta,
            rounds: 3,
            bursts: 4,
            burst_deltas: 20,
            inflate_deltas: 4,
            crash_per_mille: 1,
        }
    }

    /// Overrides the per-process round count.
    pub fn rounds(mut self, rounds: u32) -> StormConfig {
        self.rounds = rounds;
        self
    }
}

/// The composed timing model of a storm: uniform base access times,
/// inflated inside seeded windows, under a seeded crash wave.
pub type StormModel = CrashSchedule<FailureWindows<UniformAccess>>;

/// Builds the seeded storm timing model: base accesses in
/// `[Δ/4, Δ]` (failure-free), [`StormConfig::bursts`] windows in which
/// every access inflates to `inflate·Δ`, and a crash wave hitting
/// `crash_per_mille` of the processes at seeded instants.
pub fn storm_model(seed: u64, cfg: &StormConfig) -> StormModel {
    let d = cfg.delta.ticks().0;
    let mut rng = SplitMix64::new(seed ^ 0x5701_1111);
    // Bursts spread over the run's actual span: a ScaleLoop round is
    // three accesses (each ≤ Δ) plus ≤ 64 ticks of jitter, so ~4Δ.
    let horizon = (cfg.rounds as u64).max(1) * 4 * d;
    let mut windows = Vec::with_capacity(cfg.bursts);
    for _ in 0..cfg.bursts {
        let start = rng.random_range(0..=horizon);
        let len = cfg.burst_deltas * d;
        windows.push(Window {
            from: Ticks(start),
            to: Ticks(start.saturating_add(len)),
            pids: None,
            inflated: Ticks((cfg.inflate_deltas * d).max(d + 1)),
        });
    }
    let base = UniformAccess::new(Ticks((d / 4).max(1)), Ticks(d), rng.next_u64());
    let stormy = FailureWindows::new(base, windows);
    let crashes = (cfg.n as u64 * cfg.crash_per_mille as u64 / 1000) as usize;
    let mut wave = Vec::with_capacity(crashes);
    for _ in 0..crashes {
        let pid = ProcId(rng.random_range(0..=(cfg.n as u64 - 1)) as usize);
        let at = Ticks(rng.random_range(0..=horizon));
        wave.push((pid, at));
    }
    CrashSchedule::new(stormy, wave)
}

/// Runs one seeded storm on the timer-wheel engine and returns the full
/// result. The workload is a group-local [`ScaleLoop`] (groups of 64),
/// so the run also exercises register traffic at scale.
pub fn run_storm(seed: u64, cfg: &StormConfig) -> RunResult {
    let model = storm_model(seed, cfg);
    let workload = ScaleLoop::new(cfg.rounds, 64.min(cfg.n), 0).salt(seed);
    let config = RunConfig::new(cfg.n, cfg.delta);
    Sim::new(workload, config, model).run()
}

/// One point of a Δ-sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// The Δ bound this run counted failures against.
    pub delta: Delta,
    /// Timing failures observed (accesses slower than Δ).
    pub timing_failures: u64,
    /// Linearized events.
    pub steps: u64,
    /// Processes that crashed.
    pub crashed: usize,
    /// Virtual end time.
    pub end_time: Ticks,
    /// Whether the run was truncated by a budget (should be false —
    /// budgets scale with n).
    pub timed_out: bool,
}

/// Sweeps the *same* seeded storm across several Δ bounds: the access
/// time distribution is pinned by `(seed, base_delta)`, so shrinking Δ
/// strictly grows the timing-failure count — the paper's model in one
/// table. Each Δ is a full fresh run at `cfg.n` processes.
pub fn delta_sweep(seed: u64, cfg: &StormConfig, deltas: &[Delta]) -> Vec<SweepPoint> {
    deltas
        .iter()
        .map(|&delta| {
            // Keep the storm's absolute timings fixed (built from the
            // config Δ); only the counting bound changes.
            let model = storm_model(seed, cfg);
            let workload = ScaleLoop::new(cfg.rounds, 64.min(cfg.n), 0).salt(seed);
            let config = RunConfig::new(cfg.n, delta).max_time(cfg.delta.times(100_000));
            let r = Sim::new(workload, config, model).run();
            SweepPoint {
                delta,
                timing_failures: r.timing_failures,
                steps: r.steps,
                crashed: r.crashed.iter().filter(|&&c| c).count(),
                end_time: r.end_time,
                timed_out: r.timed_out,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_sim::SchedKind;

    #[test]
    fn storms_are_seed_deterministic() {
        let cfg = StormConfig::new(500, Delta::from_ticks(100));
        let a = run_storm(11, &cfg);
        let b = run_storm(11, &cfg);
        assert_eq!(a, b, "same seed, same storm");
        let c = run_storm(12, &cfg);
        assert_ne!(a.obs, c.obs, "different seed, different storm");
    }

    #[test]
    fn storms_manufacture_timing_failures_and_crashes() {
        let mut cfg = StormConfig::new(2_000, Delta::from_ticks(100));
        cfg.crash_per_mille = 10;
        let r = run_storm(3, &cfg);
        assert!(!r.timed_out, "scaled budgets must not truncate the storm");
        assert!(r.timing_failures > 0, "bursts inflate past Δ");
        let crashed = r.crashed.iter().filter(|&&c| c).count();
        assert!(crashed > 0 && crashed <= 20, "≈10‰ crash wave: {crashed}");
    }

    #[test]
    fn delta_sweep_is_monotone_in_delta() {
        let cfg = StormConfig::new(1_000, Delta::from_ticks(100));
        let deltas: Vec<Delta> = [25u64, 50, 100, 200, 400]
            .iter()
            .map(|&t| Delta::from_ticks(t))
            .collect();
        let points = delta_sweep(21, &cfg, &deltas);
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(
                pair[0].timing_failures >= pair[1].timing_failures,
                "shrinking Δ cannot reduce failures: {pair:?}"
            );
        }
        assert!(points[0].timing_failures > points[4].timing_failures);
        assert!(points.iter().all(|p| !p.timed_out));
    }

    /// Storms too are scheduler-independent — chaos results replay
    /// identically on the heap reference.
    #[test]
    fn storm_agrees_across_schedulers() {
        let cfg = StormConfig::new(300, Delta::from_ticks(100));
        let run_with = |kind: SchedKind| {
            let model = storm_model(5, &cfg);
            let workload = ScaleLoop::new(cfg.rounds, 64, 0).salt(5);
            let config = RunConfig::new(cfg.n, cfg.delta).sched(kind).record_trace();
            Sim::new(workload, config, model).run()
        };
        assert_eq!(run_with(SchedKind::Wheel), run_with(SchedKind::Heap));
    }
}
