//! The network nemesis: seeded fault schedules for the quorum stack.
//!
//! The thread nemesis ([`crate::nemesis`]) injects stalls and crash-stops
//! into *shared-memory* algorithms through injection points. The network
//! nemesis attacks the **message-passing** stack instead: it drives a
//! [`tfr_net::NetControl`] handle through a seeded sequence of delay
//! spikes, drop-probability changes, partitions, and heals, while the
//! algorithms under test run unchanged over [`tfr_net::QuorumSpace`].
//!
//! Schedules are pure functions of their seed (print the seed, replay the
//! run) and always end with [`NetFaultOp::Heal`], so every experiment
//! finishes on a connected network — the interesting question is what
//! happened *in between* and how fast the system converges afterwards.

use std::time::Duration;
use tfr_net::{NetConfig, NetControl};
use tfr_registers::rng::SplitMix64;

/// One network-level fault operation, applied through a
/// [`NetControl`] handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultOp {
    /// Add a uniform extra delay to every in-flight link.
    DelaySpike(Duration),
    /// Set the per-message drop probability, in percent (`0..=100`).
    /// Stored as an integer so schedules stay `Eq`/hashable.
    DropPercent(u8),
    /// Isolate replicas `0..k` from everyone else. With
    /// `k ≤ R − majority(R)` the far side keeps a majority and operations
    /// keep completing; larger `k` stalls every quorum.
    PartitionMinority(usize),
    /// Put all clients plus replicas `0..k` on one side. With
    /// `k < majority(R)` every client operation stalls until heal.
    PartitionClients(usize),
    /// Reconnect everything and clear drop/delay overrides.
    Heal,
}

/// A fault operation with its dwell: apply `op`, then let the network run
/// for `dwell` before the next step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultStep {
    /// The operation to apply.
    pub op: NetFaultOp,
    /// How long the fault regime holds before the next step.
    pub dwell: Duration,
}

/// Applies one operation to the network.
pub fn apply_net_op(control: &NetControl, op: &NetFaultOp) {
    match *op {
        NetFaultOp::DelaySpike(d) => control.delay_spike(d),
        NetFaultOp::DropPercent(pct) => control.set_drop(f64::from(pct) / 100.0),
        NetFaultOp::PartitionMinority(k) => control.partition_minority(k),
        NetFaultOp::PartitionClients(k) => control.isolate_clients_with(k),
        NetFaultOp::Heal => control.heal(),
    }
}

/// Applies a whole schedule, sleeping each step's dwell after applying
/// its operation. Blocks for the schedule's total duration — run it from
/// a dedicated thread while the workload executes:
///
/// ```
/// use std::sync::Arc;
/// use tfr_chaos::netfault::{apply_net_schedule, random_net_schedule};
/// use tfr_net::{NetConfig, Network};
///
/// let cfg = NetConfig::new(2, 5, 7);
/// let schedule = random_net_schedule(7, &cfg);
/// let net = Arc::new(Network::new(cfg));
/// let control = net.control();
/// let nemesis = std::thread::spawn(move || apply_net_schedule(&control, &schedule));
/// // ... drive a workload over net.space() here ...
/// nemesis.join().unwrap();
/// ```
pub fn apply_net_schedule(control: &NetControl, schedule: &[NetFaultStep]) {
    for step in schedule {
        apply_net_op(control, &step.op);
        std::thread::sleep(step.dwell);
    }
}

/// Draws a network fault schedule from `seed`. Equal seeds yield equal
/// schedules. The result always ends with a [`NetFaultOp::Heal`] step, and
/// partition sizes are drawn to respect `cfg`:
///
/// * minority partitions isolate at most `R − majority(R)` replicas, so
///   the far side keeps a working quorum;
/// * client-side partitions take fewer than `majority(R)` replicas with
///   them, so client operations genuinely stall until heal.
///
/// ```
/// use tfr_chaos::netfault::{random_net_schedule, NetFaultOp};
/// use tfr_net::NetConfig;
///
/// let cfg = NetConfig::new(2, 5, 0);
/// let schedule = random_net_schedule(42, &cfg);
/// assert_eq!(schedule, random_net_schedule(42, &cfg), "seed determines all");
/// assert_eq!(schedule.last().unwrap().op, NetFaultOp::Heal);
/// ```
pub fn random_net_schedule(seed: u64, cfg: &NetConfig) -> Vec<NetFaultStep> {
    let mut rng = SplitMix64::new(seed);
    let spare = cfg.replicas - cfg.majority(); // replicas a quorum can lose
    let mut steps = Vec::new();
    let dwell = |rng: &mut SplitMix64| Duration::from_micros(rng.random_range(300..=1_500));
    for _ in 0..rng.random_range(2..=4) {
        let op = match rng.index(5) {
            0 => NetFaultOp::DelaySpike(Duration::from_micros(rng.random_range(100..=800))),
            1 => NetFaultOp::DropPercent(rng.random_range(5..=40) as u8),
            2 if spare > 0 => NetFaultOp::PartitionMinority(1 + rng.index(spare)),
            3 => NetFaultOp::PartitionClients(rng.index(cfg.majority())),
            _ => NetFaultOp::Heal,
        };
        // A partition while another cut is in place would re-group from
        // scratch anyway (NetControl::partition replaces the groups), but
        // an explicit heal between regimes keeps each fault's effect
        // attributable in the trace.
        let partition = matches!(
            op,
            NetFaultOp::PartitionMinority(_) | NetFaultOp::PartitionClients(_)
        );
        steps.push(NetFaultStep {
            op,
            dwell: dwell(&mut rng),
        });
        if partition {
            steps.push(NetFaultStep {
                op: NetFaultOp::Heal,
                dwell: dwell(&mut rng),
            });
        }
    }
    steps.push(NetFaultStep {
        op: NetFaultOp::Heal,
        dwell: Duration::ZERO,
    });
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tfr_net::Network;
    use tfr_registers::space::RegisterSpace;

    #[test]
    fn schedules_are_seed_deterministic_and_end_healed() {
        let cfg = NetConfig::new(2, 5, 0);
        for seed in 0..64 {
            let a = random_net_schedule(seed, &cfg);
            let b = random_net_schedule(seed, &cfg);
            assert_eq!(a, b, "seed {seed} is not deterministic");
            assert_eq!(a.last().unwrap().op, NetFaultOp::Heal);
            for step in &a {
                match step.op {
                    NetFaultOp::PartitionMinority(k) => {
                        assert!(k <= cfg.replicas - cfg.majority(), "quorum-killing cut")
                    }
                    NetFaultOp::PartitionClients(k) => {
                        assert!(k < cfg.majority(), "cut that would not stall clients")
                    }
                    NetFaultOp::DropPercent(p) => assert!(p <= 100),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn applying_a_schedule_leaves_the_network_usable() {
        let cfg = NetConfig::new(1, 3, 0xFA17);
        let mut schedule = random_net_schedule(0xFA17, &cfg);
        // Compress the dwells: this test checks end-state, not timing.
        for step in &mut schedule {
            step.dwell = Duration::from_micros(50);
        }
        let net = Arc::new(Network::new(cfg));
        apply_net_schedule(&net.control(), &schedule);
        let space = net.space();
        space.write(0, 17);
        assert_eq!(space.read(0), 17, "the healed network serves quorums");
    }
}
