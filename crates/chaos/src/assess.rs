//! The §1.3 resilience assessment over *native* executions — the
//! real-thread counterpart of `tfr_core::resilience::assess_mutex`,
//! producing the same three-part [`ResilienceReport`].
//!
//! Conventions: the native time unit is **1 tick = 1 µs** (entry
//! latencies are measured with `Instant` and reported in microsecond
//! ticks), and the convergence yardstick is the shared
//! [`convergence_target`] — so a simulator report and a native report for
//! the same algorithm are directly comparable.

use crate::nemesis::{run_mutex_chaos, run_mutex_chaos_traced, EntrySample, MutexChaosConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tfr_asynclock::RawLock;
use tfr_core::resilience::{convergence_target, ResilienceReport};
use tfr_registers::chaos::{points, Fault, FaultAction};
use tfr_registers::rng::SplitMix64;
use tfr_registers::{Delta, ProcId, Ticks};
use tfr_telemetry::{convergence_from_events, ConvergenceReport, Trace, Tracer};

/// Parameters of a native resilience assessment.
#[derive(Debug, Clone)]
pub struct NativeAssessConfig {
    /// Number of worker threads.
    pub n: usize,
    /// The `delay(Δ)` estimate handed to the lock under test.
    pub delta: Duration,
    /// Lock acquisitions per thread, per run.
    pub iterations: u64,
    /// Critical-section dwell time.
    pub cs_hold: Duration,
    /// Remainder-section dwell time.
    pub ncs_hold: Duration,
    /// Number of burst stalls injected into the failure run.
    pub burst_stalls: usize,
    /// Burst stalls last `burst_factor × Δ` — choose > 1 so every one is
    /// a genuine timing failure.
    pub burst_factor: u32,
    /// Tolerance numerator (converged ⇔ latency ≤ `num/den·ψ + Δ`).
    pub tolerance_num: u64,
    /// Tolerance denominator.
    pub tolerance_den: u64,
    /// Seed for the burst schedule.
    pub seed: u64,
}

impl NativeAssessConfig {
    /// A reasonable default: 60 acquisitions per thread, short dwells,
    /// 4 early stalls of 8Δ, tolerance 3/2 — mirrors
    /// `tfr_core::resilience::AssessConfig::new`.
    pub fn new(n: usize, delta: Duration) -> NativeAssessConfig {
        NativeAssessConfig {
            n,
            delta,
            iterations: 60,
            cs_hold: Duration::from_micros(30),
            ncs_hold: Duration::from_micros(30),
            burst_stalls: 4,
            burst_factor: 8,
            tolerance_num: 3,
            tolerance_den: 2,
            seed: 42,
        }
    }

    fn workload(&self) -> MutexChaosConfig {
        MutexChaosConfig {
            n: self.n,
            iterations: self.iterations,
            cs_hold: self.cs_hold,
            ncs_hold: self.ncs_hold,
        }
    }
}

/// The burst: `burst_stalls` stalls of `burst_factor × Δ`, aimed at the
/// timing-sensitive points of the first half of the threads (asymmetric,
/// like the simulator assessment — a uniform slowdown is the kindest
/// possible failure), on early visits so the run has a long post-burst
/// tail to converge in.
fn burst_schedule(cfg: &NativeAssessConfig) -> Vec<Fault> {
    let mut rng = SplitMix64::new(cfg.seed);
    let stall = cfg.delta * cfg.burst_factor.max(2);
    let victims = cfg.n.div_ceil(2);
    let points = [
        points::RESILIENT_WRITE_X,
        points::FISCHER_WRITE_X,
        points::DELAY,
    ];
    let mut faults = Vec::new();
    for k in 0..cfg.burst_stalls {
        let f = Fault {
            pid: ProcId(rng.index(victims)),
            point: points[rng.index(points.len())],
            nth: 1 + k as u64,
            action: FaultAction::Stall(stall),
        };
        if !faults
            .iter()
            .any(|g: &Fault| (g.pid, g.point, g.nth) == (f.pid, f.point, f.nth))
        {
            faults.push(f);
        }
    }
    faults
}

/// Earliest post-fault instant from which every later entry meets the
/// target latency, as an offset (µs ticks) from when faults stopped.
fn convergence_from_samples(
    entries: &[EntrySample],
    faults_stopped: Option<Instant>,
    target: Ticks,
) -> Option<Ticks> {
    let Some(stop) = faults_stopped else {
        // Nothing fired: the run never left the ψ regime.
        return Some(Ticks::ZERO);
    };
    let target = Duration::from_micros(target.0);
    let mut tail: Vec<&EntrySample> = entries.iter().filter(|e| e.entered_at >= stop).collect();
    tail.sort_by_key(|e| e.entered_at);
    // The converged suffix: walk back from the end while entries meet the
    // target; the suffix must be nonempty (otherwise the run ended before
    // showing convergence).
    let mut cut = tail.len();
    for i in (0..tail.len()).rev() {
        if tail[i].latency <= target {
            cut = i;
        } else {
            break;
        }
    }
    if cut == tail.len() {
        return None;
    }
    Some(Ticks(
        tail[cut].entered_at.duration_since(stop).as_micros() as u64
    ))
}

/// Runs the §1.3 assessment protocol on a native lock: measure ψ on a
/// fault-free run, inject a stall burst, check safety and liveness across
/// it, and find the measured convergence point after the last fault.
///
/// `make_lock` is called once per run (each run needs a fresh lock).
/// Returns the same [`ResilienceReport`] the simulator assessment
/// produces, in µs ticks.
///
/// # Panics
///
/// Panics if the fault-free run violates mutual exclusion or fails to
/// complete — an algorithm that cannot run clean is outside the
/// definition's scope.
///
/// # Example
///
/// Algorithm 3 passes the safety and liveness parts of the definition
/// under a burst of 8Δ stalls (convergence is a *measurement* on real
/// hardware, so the doctest does not pin it):
///
/// ```
/// use std::time::Duration;
/// use tfr_chaos::{assess_native_mutex, NativeAssessConfig};
/// use tfr_core::mutex::resilient::ResilientMutex;
///
/// let delta = Duration::from_micros(100);
/// let mut cfg = NativeAssessConfig::new(2, delta);
/// cfg.iterations = 10; // a quick smoke-sized assessment
/// let report = assess_native_mutex(|| ResilientMutex::standard(2, delta), &cfg);
/// assert!(report.safe_during_failures, "exclusive even mid-burst");
/// assert!(report.live_after_failures, "every thread finishes");
/// assert!(report.psi.0 >= 1, "ψ is a measured, positive latency");
/// ```
pub fn assess_native_mutex<L: RawLock>(
    mut make_lock: impl FnMut() -> L,
    cfg: &NativeAssessConfig,
) -> ResilienceReport {
    // Requirement 2: ψ from a fault-free run (still under a session, for
    // isolation from concurrent chaos in the process).
    let clean = run_mutex_chaos(&make_lock(), &cfg.workload(), &[]);
    assert!(
        !clean.mutual_exclusion_violated() && clean.crashed.is_empty(),
        "the fault-free run must be clean"
    );
    assert_eq!(
        clean.completed.len(),
        cfg.n,
        "the fault-free run must complete"
    );
    let psi = Ticks(
        clean
            .max_latency()
            .map_or(1, |d| d.as_micros() as u64)
            .max(1),
    );

    // Requirements 1 + 3: the burst run.
    let burst = run_mutex_chaos(&make_lock(), &cfg.workload(), &burst_schedule(cfg));
    let safe_during_failures = !burst.mutual_exclusion_violated();
    let live_after_failures = burst.completed.len() == cfg.n;
    let delta = Delta::from_ticks((cfg.delta.as_micros() as u64).max(1));
    let target = convergence_target(psi, delta, cfg.tolerance_num, cfg.tolerance_den);
    let convergence = convergence_from_samples(&burst.entries, burst.last_fault_at, target);

    ResilienceReport {
        psi,
        safe_during_failures,
        live_after_failures,
        convergence,
    }
}

/// A [`assess_native_mutex_traced`] result: the standard three-part
/// report plus the event-stream convergence measurement and the target it
/// was measured against.
#[derive(Debug)]
pub struct TracedAssessment {
    /// The §1.3 report, identical in meaning to [`assess_native_mutex`]'s.
    pub report: ResilienceReport,
    /// Convergence measured from the burst run's telemetry events: time
    /// from the last fired fault to the first acquisition whose traced
    /// entry wait meets the target.
    pub event_convergence: ConvergenceReport,
    /// The entry-wait target used, in nanoseconds
    /// (`convergence_target(ψ, Δ, num, den)` converted from µs ticks).
    pub target_wait_ns: u64,
}

/// [`assess_native_mutex`] with the burst run traced: `make_lock`
/// receives the [`Trace`] to build into the lock (disabled for the clean
/// ψ-measurement run, attached to `tracer` for the burst run), and the
/// convergence time is *also* measured from the event stream — the
/// trace-level counterpart of the sample-based measurement, directly
/// exportable next to the timeline it was read off.
pub fn assess_native_mutex_traced<L: RawLock>(
    mut make_lock: impl FnMut(Trace) -> L,
    cfg: &NativeAssessConfig,
    tracer: &Arc<Tracer>,
) -> TracedAssessment {
    let clean = run_mutex_chaos(&make_lock(Trace::disabled()), &cfg.workload(), &[]);
    assert!(
        !clean.mutual_exclusion_violated() && clean.crashed.is_empty(),
        "the fault-free run must be clean"
    );
    assert_eq!(
        clean.completed.len(),
        cfg.n,
        "the fault-free run must complete"
    );
    let psi = Ticks(
        clean
            .max_latency()
            .map_or(1, |d| d.as_micros() as u64)
            .max(1),
    );

    let burst_lock = make_lock(Trace::attached(Arc::clone(tracer)));
    let burst = run_mutex_chaos_traced(&burst_lock, &cfg.workload(), &burst_schedule(cfg), tracer);
    let safe_during_failures = !burst.mutual_exclusion_violated();
    let live_after_failures = burst.completed.len() == cfg.n;
    let delta = Delta::from_ticks((cfg.delta.as_micros() as u64).max(1));
    let target = convergence_target(psi, delta, cfg.tolerance_num, cfg.tolerance_den);
    let convergence = convergence_from_samples(&burst.entries, burst.last_fault_at, target);
    let target_wait_ns = target.0.saturating_mul(1_000);
    let event_convergence = convergence_from_events(&tracer.events(), target_wait_ns);

    TracedAssessment {
        report: ResilienceReport {
            psi,
            safe_during_failures,
            live_after_failures,
            convergence,
        },
        event_convergence,
        target_wait_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_schedule_is_deterministic_and_asymmetric() {
        let cfg = NativeAssessConfig::new(4, Duration::from_micros(300));
        let a = burst_schedule(&cfg);
        assert_eq!(a, burst_schedule(&cfg));
        assert!(!a.is_empty());
        for f in &a {
            assert!(f.pid.0 < 2, "burst only hits the first half of the threads");
            match f.action {
                FaultAction::Stall(d) => assert!(d > cfg.delta, "stalls must exceed Δ"),
                _ => panic!("the burst contains no crashes"),
            }
        }
    }

    #[test]
    fn convergence_zero_when_no_fault_fired() {
        assert_eq!(
            convergence_from_samples(&[], None, Ticks(100)),
            Some(Ticks::ZERO)
        );
    }

    #[test]
    fn convergence_found_at_the_first_good_suffix() {
        let base = Instant::now();
        let stop = base + Duration::from_micros(100);
        let mk = |offset_us: u64, latency_us: u64| EntrySample {
            pid: ProcId(0),
            entered_at: stop + Duration::from_micros(offset_us),
            latency: Duration::from_micros(latency_us),
        };
        // A slow entry at +50µs, then fast ones from +80µs on.
        let entries = vec![mk(50, 900), mk(80, 10), mk(120, 12)];
        let c = convergence_from_samples(&entries, Some(stop), Ticks(100));
        assert_eq!(c, Some(Ticks(80)));
    }

    #[test]
    fn traced_assessment_measures_convergence_from_events() {
        use tfr_core::mutex::resilient::ResilientMutex;
        let delta = Duration::from_micros(100);
        let mut cfg = NativeAssessConfig::new(2, delta);
        cfg.iterations = 10;
        let tracer = Arc::new(Tracer::new(2));
        let a = assess_native_mutex_traced(
            |trace| ResilientMutex::standard(2, delta).with_trace(trace),
            &cfg,
            &tracer,
        );
        assert!(a.report.safe_during_failures && a.report.live_after_failures);
        assert!(a.report.psi.0 >= 1);
        assert!(
            a.event_convergence.faults >= 1,
            "the burst must fire at least one fault into the trace"
        );
        assert!(a.target_wait_ns >= 1_000, "target is ψ-derived, in ns");
        // The event stream carries the acquisitions the samples were
        // computed from.
        assert!(!tracer.events().is_empty());
    }

    #[test]
    fn convergence_none_when_the_tail_never_recovers() {
        let base = Instant::now();
        let stop = base;
        let entries = vec![EntrySample {
            pid: ProcId(0),
            entered_at: stop + Duration::from_micros(10),
            latency: Duration::from_millis(50),
        }];
        assert_eq!(
            convergence_from_samples(&entries, Some(stop), Ticks(100)),
            None
        );
    }
}
