//! The recovery nemesis: drives a [`RecoverableRawLock`] on real threads
//! under `CrashRecover` faults — processes crash *inside and outside* the
//! critical section, sit out their down time, and rejoin mid-workload as
//! new incarnations that run the recovery section before re-contending.
//!
//! This is the crash-*recovery* counterpart of
//! [`run_mutex_chaos`](crate::nemesis::run_mutex_chaos), whose crash-stop
//! model forbids dying while holding the lock (a crash-stopped holder
//! wedges every survivor by construction). Here that schedule is the
//! *interesting* one: the next incarnation's
//! [`recover`](RecoverableRawLock::recover) must release the orphaned
//! critical section, and the nemesis checks — online, via the same
//! intruder counter — that mutual exclusion holds across every repair.
//!
//! Replays are deterministic: the workload is driven by an installed
//! [`ChaosSession`], so a seeded schedule from
//! [`ScheduleConfig::recoverable_mutex`](crate::schedule::ScheduleConfig::recoverable_mutex)
//! reproduces the same crashes at the same points.

use crate::nemesis::{hold, MutexChaosConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tfr_asynclock::RecoverableRawLock;
use tfr_registers::chaos::{
    self, install_point_observer, points, ChaosSession, Fault, FaultAction, FiredFault,
};
use tfr_registers::ProcId;
use tfr_telemetry::{with_pid, ChaosTraceObserver, Tracer};

/// Points where the recoverable-mutex crash surface admits a
/// `CrashRecover` fault: everywhere the persistent state is unambiguous
/// (see the `tfr_core::mutex::recoverable` module docs). Crashing inside
/// the *inner* lock is rejected — there the owner stamp would not be the
/// truth about what the dead incarnation held.
pub const CRASH_RECOVER_SURFACE: &[&str] = &[
    points::WORKLOAD_NCS,
    points::WORKLOAD_CS,
    points::RECOVERABLE_ACQUIRE,
    points::RECOVERABLE_CS,
    points::RECOVERABLE_RELEASE,
    points::RECOVERY_SECTION,
];

/// One completed recovery section, as observed by the nemesis.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySample {
    /// The process that crashed and came back.
    pub pid: ProcId,
    /// The incarnation the recovery installed (1 = first restart).
    pub incarnation: u64,
    /// Whether the previous incarnation had orphaned the critical
    /// section and the recovery released it.
    pub repaired: bool,
    /// The scheduled down time between crash and restart.
    pub down_for: Duration,
    /// Wall time from restart to the end of the recovery section.
    pub recovery_latency: Duration,
}

/// Everything a recovery chaos run observed.
#[derive(Debug)]
pub struct RecoveryChaosReport {
    /// Peak simultaneous critical-section occupancy (1 = exclusive).
    pub max_in_cs: u64,
    /// Entries that found another process already inside — each one is a
    /// mutual exclusion violation, *including* any let in by a recovery
    /// that released a lock its previous incarnation did not hold.
    pub intrusions: u64,
    /// Processes crash-*stopped* by the schedule (plain `Crash` faults
    /// never rejoin; the injector deregisters them).
    pub crashed: Vec<ProcId>,
    /// Processes that completed every iteration (possibly across several
    /// incarnations).
    pub completed: Vec<ProcId>,
    /// Every recovery section that ran, in completion order.
    pub recoveries: Vec<RecoverySample>,
    /// Faults that actually fired.
    pub fired: Vec<FiredFault>,
}

impl RecoveryChaosReport {
    /// Whether mutual exclusion was violated at any point of the run.
    pub fn mutual_exclusion_violated(&self) -> bool {
        self.intrusions > 0
    }

    /// Recoveries that found and released an orphaned critical section.
    pub fn cs_repairs(&self) -> usize {
        self.recoveries.iter().filter(|r| r.repaired).count()
    }
}

/// Runs `lock` under `faults`, rejoining every crash-recovered process.
///
/// Each worker loops: remainder section ([`points::WORKLOAD_NCS`]),
/// `lock`, critical section ([`points::WORKLOAD_CS`]) under the intruder
/// counter, `unlock` — until its iteration quota is met. A `CrashRecover`
/// fault unwinds the worker wherever it is; the worker holds for the
/// scheduled down time, then *rejoins as a new incarnation*: it runs
/// [`recover`](RecoverableRawLock::recover) first and re-enters the loop
/// where its quota left off. Plain `Crash` faults still crash-stop: the
/// worker never returns and the injector deregisters its pid, so no later
/// fault is wasted on it.
///
/// # Panics
///
/// Panics if a `CrashRecover` fault targets a point outside
/// [`CRASH_RECOVER_SURFACE`], or a plain `Crash` targets any point other
/// than [`points::WORKLOAD_NCS`] (a crash-stopped *holder* wedges the run
/// by construction — only the recoverable variant may die inside).
///
/// # Example
///
/// A process crashes inside the critical section and the run still
/// finishes exclusively:
///
/// ```
/// use std::time::Duration;
/// use tfr_chaos::recovery::run_recovery_chaos;
/// use tfr_chaos::MutexChaosConfig;
/// use tfr_core::mutex::recoverable::RecoverableMutex;
/// use tfr_registers::chaos::{points, Fault, FaultAction};
/// use tfr_registers::ProcId;
///
/// let lock = RecoverableMutex::standard(2, Duration::from_micros(100));
/// let faults = [Fault {
///     pid: ProcId(0),
///     point: points::WORKLOAD_CS,
///     nth: 1,
///     action: FaultAction::CrashRecover(Duration::from_micros(200)),
/// }];
/// let mut cfg = MutexChaosConfig::new(2);
/// cfg.iterations = 3;
/// let report = run_recovery_chaos(&lock, &cfg, &faults);
/// assert!(!report.mutual_exclusion_violated());
/// assert_eq!(report.completed.len(), 2, "the crashed process rejoined");
/// assert_eq!(report.cs_repairs(), 1, "its recovery released the CS");
/// ```
pub fn run_recovery_chaos<L: RecoverableRawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
) -> RecoveryChaosReport {
    run_recovery_chaos_inner(lock, cfg, faults, None)
}

/// [`run_recovery_chaos`] with telemetry: a [`ChaosTraceObserver`] turns
/// point visits, fired faults, and crash-recoveries into events on
/// `tracer`. Build the lock with `with_trace(Trace::attached(...))` on
/// the same tracer and each `CrashRecover` event pairs with the
/// `Recovered` the lock emits, giving
/// `tfr_telemetry::recovery_spans_from_events` full down+repair spans.
pub fn run_recovery_chaos_traced<L: RecoverableRawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
    tracer: &Arc<Tracer>,
) -> RecoveryChaosReport {
    run_recovery_chaos_inner(lock, cfg, faults, Some(tracer))
}

fn run_recovery_chaos_inner<L: RecoverableRawLock>(
    lock: &L,
    cfg: &MutexChaosConfig,
    faults: &[Fault],
    tracer: Option<&Arc<Tracer>>,
) -> RecoveryChaosReport {
    assert!(
        cfg.n > 0 && cfg.n <= lock.n(),
        "workload size exceeds the lock's capacity"
    );
    for f in faults {
        match f.action {
            FaultAction::CrashRecover(_) => assert!(
                CRASH_RECOVER_SURFACE.contains(&f.point),
                "crash-recover faults must stay on the recoverable crash \
                 surface (got {f})"
            ),
            FaultAction::Crash => assert!(
                f.point == points::WORKLOAD_NCS,
                "crash-stops only at workload.ncs — a dead holder wedges \
                 the run (got {f})"
            ),
            FaultAction::Stall(_) => {}
        }
    }
    let session = ChaosSession::install(faults);
    let _observer =
        tracer.map(|t| install_point_observer(Arc::new(ChaosTraceObserver::new(Arc::clone(t)))));
    let in_cs = AtomicU64::new(0);
    let max_in_cs = AtomicU64::new(0);
    let intrusions = AtomicU64::new(0);
    let recoveries: Mutex<Vec<RecoverySample>> = Mutex::new(Vec::new());

    let mut crashed = Vec::new();
    let mut completed = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.n)
            .map(|i| {
                let (in_cs, max_in_cs, intrusions, recoveries) =
                    (&in_cs, &max_in_cs, &intrusions, &recoveries);
                s.spawn(move || {
                    let pid = ProcId(i);
                    // Survives incarnations, like work acknowledged by a
                    // client: a passage interrupted by a crash is redone.
                    let done = AtomicU64::new(0);
                    // Set while this worker is inside the CS under the
                    // intruder counter; a crash there must release the
                    // *counter* (the process is gone) while the lock
                    // itself stays orphaned until recovery repairs it.
                    let was_inside = AtomicBool::new(false);
                    let mut incarnation = 0u64;
                    let mut pending_down = Duration::ZERO;
                    loop {
                        let (done, was_inside) = (&done, &was_inside);
                        let outcome = chaos::run_as(pid, || {
                            with_pid(pid, || {
                                if incarnation > 0 {
                                    let t0 = Instant::now();
                                    let out = lock.recover(pid);
                                    recoveries.lock().unwrap_or_else(|e| e.into_inner()).push(
                                        RecoverySample {
                                            pid,
                                            incarnation: out.incarnation,
                                            repaired: out.repaired,
                                            down_for: pending_down,
                                            recovery_latency: t0.elapsed(),
                                        },
                                    );
                                }
                                while done.load(Ordering::Relaxed) < cfg.iterations {
                                    chaos::point(points::WORKLOAD_NCS);
                                    hold(cfg.ncs_hold);
                                    lock.lock(pid);
                                    let now_inside = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                                    was_inside.store(true, Ordering::SeqCst);
                                    if now_inside > 1 {
                                        intrusions.fetch_add(1, Ordering::SeqCst);
                                    }
                                    max_in_cs.fetch_max(now_inside, Ordering::SeqCst);
                                    chaos::point(points::WORKLOAD_CS);
                                    hold(cfg.cs_hold);
                                    was_inside.store(false, Ordering::SeqCst);
                                    in_cs.fetch_sub(1, Ordering::SeqCst);
                                    lock.unlock(pid);
                                    done.fetch_add(1, Ordering::Relaxed);
                                }
                            })
                        });
                        // A worker that died inside the CS leaves the
                        // *lock* orphaned (recovery's business) but must
                        // release the occupancy counter: the process is no
                        // longer executing critical-section code.
                        let died_inside = was_inside.swap(false, Ordering::SeqCst);
                        if died_inside {
                            in_cs.fetch_sub(1, Ordering::SeqCst);
                        }
                        match outcome {
                            chaos::ThreadOutcome::Completed(()) => break Ok(()),
                            chaos::ThreadOutcome::Crashed => break Err(()),
                            chaos::ThreadOutcome::CrashedRecoverable(down) => {
                                hold(down);
                                pending_down = down;
                                incarnation += 1;
                            }
                        }
                    }
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            match h
                .join()
                .expect("worker panicked outside the crash protocol")
            {
                Ok(()) => completed.push(ProcId(i)),
                Err(()) => crashed.push(ProcId(i)),
            }
        }
    });

    RecoveryChaosReport {
        max_in_cs: max_in_cs.load(Ordering::SeqCst),
        intrusions: intrusions.load(Ordering::SeqCst),
        crashed,
        completed,
        recoveries: recoveries.into_inner().unwrap_or_else(|e| e.into_inner()),
        fired: session.injector().fired(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use tfr_asynclock::RawLock;
    use tfr_core::mutex::recoverable::RecoverableMutex;
    use tfr_core::mutex::resilient::ResilientMutex;
    use tfr_registers::space::{NativeSpace, RegisterSpace};

    fn quick_cfg(n: usize) -> MutexChaosConfig {
        let mut cfg = MutexChaosConfig::new(n);
        cfg.iterations = 5;
        cfg.cs_hold = Duration::from_micros(20);
        cfg.ncs_hold = Duration::from_micros(20);
        cfg
    }

    #[test]
    fn crash_in_cs_is_repaired_and_the_run_stays_exclusive() {
        let lock = RecoverableMutex::standard(3, Duration::from_micros(100));
        let faults = [
            Fault {
                pid: ProcId(0),
                point: points::WORKLOAD_CS,
                nth: 2,
                action: FaultAction::CrashRecover(Duration::from_micros(300)),
            },
            Fault {
                pid: ProcId(1),
                point: points::RECOVERABLE_RELEASE,
                nth: 1,
                action: FaultAction::CrashRecover(Duration::from_micros(300)),
            },
        ];
        let report = run_recovery_chaos(&lock, &quick_cfg(3), &faults);
        assert!(!report.mutual_exclusion_violated());
        assert_eq!(report.max_in_cs, 1);
        assert_eq!(report.completed.len(), 3, "everyone rejoins and finishes");
        assert!(report.crashed.is_empty());
        assert_eq!(report.cs_repairs(), 2, "both crashes orphaned the CS");
        assert_eq!(report.recoveries.len(), 2);
        for r in &report.recoveries {
            assert_eq!(r.incarnation, 1);
            assert_eq!(r.down_for, Duration::from_micros(300));
        }
    }

    #[test]
    fn crash_outside_cs_recovers_without_repair() {
        let lock = RecoverableMutex::standard(2, Duration::from_micros(100));
        let faults = [Fault {
            pid: ProcId(1),
            point: points::WORKLOAD_NCS,
            nth: 2,
            action: FaultAction::CrashRecover(Duration::from_micros(200)),
        }];
        let report = run_recovery_chaos(&lock, &quick_cfg(2), &faults);
        assert!(!report.mutual_exclusion_violated());
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.recoveries.len(), 1);
        assert!(!report.recoveries[0].repaired, "nothing was orphaned");
    }

    #[test]
    fn crash_stopped_pids_are_deregistered_and_attract_no_later_faults() {
        // The crash-stop at iteration 2 kills p0 for good; the
        // crash-recover scheduled for its later CS must never fire,
        // because the injector deregisters dead pids.
        let lock = RecoverableMutex::standard(2, Duration::from_micros(100));
        let faults = [
            Fault {
                pid: ProcId(0),
                point: points::WORKLOAD_NCS,
                nth: 2,
                action: FaultAction::Crash,
            },
            Fault {
                pid: ProcId(0),
                point: points::WORKLOAD_NCS,
                nth: 4,
                action: FaultAction::CrashRecover(Duration::from_micros(100)),
            },
        ];
        let report = run_recovery_chaos(&lock, &quick_cfg(2), &faults);
        assert_eq!(report.crashed, vec![ProcId(0)]);
        assert_eq!(report.completed, vec![ProcId(1)]);
        assert_eq!(report.fired.len(), 1, "only the crash-stop fired");
        assert!(matches!(report.fired[0].fault.action, FaultAction::Crash));
        assert!(report.recoveries.is_empty());
    }

    #[test]
    fn repeated_crashes_stack_incarnations() {
        let lock = RecoverableMutex::standard(2, Duration::from_micros(100));
        let faults = [
            Fault {
                pid: ProcId(0),
                point: points::WORKLOAD_CS,
                nth: 1,
                action: FaultAction::CrashRecover(Duration::from_micros(100)),
            },
            Fault {
                pid: ProcId(0),
                point: points::RECOVERABLE_ACQUIRE,
                nth: 2,
                action: FaultAction::CrashRecover(Duration::from_micros(100)),
            },
        ];
        let report = run_recovery_chaos(&lock, &quick_cfg(2), &faults);
        assert!(!report.mutual_exclusion_violated());
        assert_eq!(report.completed.len(), 2);
        let incs: Vec<u64> = report.recoveries.iter().map(|r| r.incarnation).collect();
        assert_eq!(incs, vec![1, 2], "each restart bumps the epoch");
        assert_eq!(report.cs_repairs(), 1, "only the in-CS crash repaired");
    }

    #[test]
    #[should_panic(expected = "recoverable crash surface")]
    fn crash_recover_inside_the_inner_lock_is_rejected() {
        let lock = RecoverableMutex::standard(2, Duration::from_micros(100));
        let faults = [Fault {
            pid: ProcId(0),
            point: points::RESILIENT_INNER,
            nth: 1,
            action: FaultAction::CrashRecover(Duration::from_micros(100)),
        }];
        let _ = run_recovery_chaos(&lock, &quick_cfg(2), &faults);
    }

    /// Satellite pin: the paper's crash-stop lock, *without* the
    /// recoverable transformation, strands its waiters forever when the
    /// holder dies mid-exit — the exact starvation the recovery section
    /// exists to prevent. Fully deterministic: one scheduled crash, one
    /// bounded probe, one manual repair.
    #[test]
    fn resilient_mutex_without_recovery_starves_waiters_after_crash_in_exit() {
        let delta = Duration::from_micros(50);
        let space = Arc::new(NativeSpace::new());
        let lock = Arc::new(ResilientMutex::standard_on(Arc::clone(&space), 2, delta));
        // p0 dies after the inner exit but before resetting Fischer's x —
        // inside resilient.exit, which the crash-stop nemesis rightly
        // refuses; this test is exactly about what it would wedge.
        let _session = ChaosSession::install(&[Fault {
            pid: ProcId(0),
            point: points::RESILIENT_EXIT,
            nth: 1,
            action: FaultAction::Crash,
        }]);
        let l = Arc::clone(&lock);
        let out = std::thread::spawn(move || {
            chaos::run_as(ProcId(0), move || {
                l.lock(ProcId(0));
                l.unlock(ProcId(0));
            })
        })
        .join()
        .unwrap();
        assert!(matches!(out, chaos::ThreadOutcome::Crashed));
        assert_eq!(
            space.read(0),
            ProcId(0).token(),
            "the dead holder's token is pinned in Fischer's x"
        );

        let acquired = Arc::new(AtomicBool::new(false));
        let (l, a) = (Arc::clone(&lock), Arc::clone(&acquired));
        let waiter = std::thread::spawn(move || {
            chaos::run_as(ProcId(1), move || {
                l.lock(ProcId(1));
                a.store(true, Ordering::SeqCst);
                l.unlock(ProcId(1));
            })
        });
        // Bounded probe: with x pinned, the waiter spins in `await x = 0`
        // and never enters. 30 ms ≫ any legitimate entry at Δ = 50 µs.
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !acquired.load(Ordering::SeqCst),
            "waiter entered past a dead holder's pinned token"
        );
        // Manual repair — the very write a recovery section would issue —
        // and the waiter proceeds.
        space.write(0, 0);
        waiter.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }
}
