//! Chaos harness for the native (`real threads + real atomics`) stack:
//! seeded fault schedules, an invariant-checking nemesis, deterministic
//! replay, schedule shrinking, and native resilience reports.
//!
//! The simulator (`tfr-sim`) and the model checker (`tfr-modelcheck`)
//! already script adversarial *virtual* schedules. This crate injects the
//! same adversities — timing failures (stalls) and crash-stops — into the
//! **native** implementations, through the injection points of
//! [`tfr_registers::chaos`]:
//!
//! * [`schedule`] — fault schedules as pure functions of a seed
//!   ([`schedule::random_schedule`]), plus greedy shrinking of a failing
//!   schedule to a minimal one ([`schedule::shrink`]).
//! * [`nemesis`] — workload drivers with online invariant checking:
//!   mutual exclusion via an intruder counter
//!   ([`nemesis::run_mutex_chaos`]), consensus agreement/validity
//!   ([`nemesis::run_consensus_chaos`]), and the paper's §2 headline as a
//!   seeded one-liner: [`nemesis::run_fischer_violation`] makes two real
//!   threads hold Fischer's lock at once by stalling one inside the
//!   read→write window for longer than Δ. Every experiment is a pure
//!   function of its seed: print the seed, replay the violation.
//! * [`fromcex`] — compiles a `tfr-modelcheck` counterexample
//!   (an abstract violating interleaving) into a native fault schedule
//!   that reproduces the same violation on real threads
//!   ([`fromcex::fischer_faults_from_counterexample`]), closing the loop
//!   between the exhaustive tier and the native tier.
//! * [`assess`] — the §1.3 three-part resilience assessment over native
//!   runs ([`assess::assess_native_mutex`]), producing the same
//!   [`tfr_core::resilience::ResilienceReport`] as the simulator
//!   assessment (1 tick = 1 µs).
//! * [`recovery`] — the crash-*recovery* nemesis: `CrashRecover` faults
//!   unwind a worker anywhere on the recoverable crash surface — inside
//!   the critical section included — and the worker rejoins mid-workload
//!   as a new incarnation that runs the lock's recovery section first
//!   ([`recovery::run_recovery_chaos`]). Crash-stopped pids are
//!   deregistered so no later fault is wasted on them.
//! * [`storm`] — large-n *simulated* chaos at 10^5–10^6 processes:
//!   seeded timing-failure storms and crash waves scripted through the
//!   scaled `tfr-sim` timer-wheel engine, plus the Δ-sweep runner behind
//!   experiment E25 ([`storm::delta_sweep`]).
//! * [`netfault`] — the network nemesis for the quorum stack: seeded
//!   schedules of delay spikes, message drops, partitions, and heals
//!   ([`netfault::random_net_schedule`]) applied through a
//!   [`tfr_net::NetControl`] handle while algorithms run unchanged over
//!   `tfr_net::QuorumSpace`. Every schedule ends healed, so experiments
//!   finish on a connected network and convergence can be measured.
//!
//! Every run has a traced variant (`run_mutex_chaos_traced`,
//! `run_consensus_chaos_traced`, `assess_native_mutex_traced`) feeding a
//! `tfr_telemetry::Tracer`: injection points double as trace points, fired
//! faults become timeline events, and the assessment also reports its
//! convergence time measured off the event stream.
//!
//! # Example: break Fischer, spare Algorithm 3
//!
//! ```
//! use tfr_chaos::nemesis;
//!
//! // Any seed defines a complete experiment; nearly all of them break
//! // native Fischer.
//! let (seed, report) = nemesis::hunt_fischer_violation(1, 16).expect("a violating seed");
//! assert!(report.mutual_exclusion_violated());
//!
//! // Replaying the same seed reproduces the violation…
//! let (_, again) = nemesis::run_fischer_violation(seed);
//! assert!(again.mutual_exclusion_violated());
//!
//! // …while Algorithm 3 shrugs off the same schedule.
//! let resilient = nemesis::run_resilient_under_violation_schedule(seed);
//! assert!(!resilient.mutual_exclusion_violated());
//! ```

pub mod assess;
pub mod fromcex;
pub mod nemesis;
pub mod netfault;
pub mod recovery;
pub mod schedule;
pub mod storm;

pub use assess::{
    assess_native_mutex, assess_native_mutex_traced, NativeAssessConfig, TracedAssessment,
};
pub use fromcex::{fischer_faults_from_counterexample, CompiledViolation};
pub use nemesis::{
    hunt_fischer_violation, run_consensus_chaos, run_consensus_chaos_observed,
    run_consensus_chaos_traced, run_fischer_violation, run_mutex_chaos, run_mutex_chaos_observed,
    run_mutex_chaos_traced, ConsensusChaosReport, MutexChaosConfig, MutexChaosReport,
    ViolationSetup,
};
pub use netfault::{
    apply_net_op, apply_net_schedule, random_net_schedule, NetFaultOp, NetFaultStep,
};
pub use recovery::{
    run_recovery_chaos, run_recovery_chaos_traced, RecoveryChaosReport, RecoverySample,
};
pub use schedule::{random_schedule, shrink, ScheduleConfig};
