//! Baseline consensus algorithms the paper positions itself against.
//!
//! * [`aat`] — **time-adaptive consensus** in the *unknown-bound* model of
//!   Alur–Attiya–Taubenfeld (SIAM J. Comput. 1997, reference \[3\] of the
//!   paper): a bound on memory access time exists but is not known, so the
//!   algorithm runs Algorithm-1-style rounds with geometrically growing
//!   delay estimates. The paper's Algorithm 1 is "constructed similarly
//!   but, unlike the algorithm from \[3\], is resilient to timing failures
//!   w.r.t. time complexity c·Δ" — and by the lower bound of \[3\], no
//!   unknown-bound algorithm can achieve c·Δ. Experiment E11 reproduces
//!   that separation: our algorithm's decision time tracks c·Δ as the true
//!   Δ grows, the adaptive baseline pays the growing-estimate schedule.
//!
//! The same type with `growth = 1` doubles as the *fixed-estimate
//! strawman*; with a 1-tick initial delay it is effectively the purely
//! asynchronous retry loop whose round count is unbounded in the worst
//! case (it decides only when the scheduler is kind — the FLP shadow).

pub mod aat;
