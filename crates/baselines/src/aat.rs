//! Time-adaptive consensus for the unknown-bound model
//! (Alur–Attiya–Taubenfeld, reference \[3\] of the paper).
//!
//! Structurally the same round protocol as the paper's Algorithm 1, but
//! the `delay` at the end of an unsuccessful round uses a **growing
//! estimate** instead of the known Δ: round `r` delays
//! `min(initial · growth^(r−1), cap)` ticks. Safety is identical to
//! Algorithm 1 (the delay length never matters for safety); termination
//! holds once the estimate catches up with the true (unknown) bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tfr_registers::native::{precise_delay, UnboundedAtomicArray};
use tfr_registers::spec::{Action, Automaton, Obs};
use tfr_registers::{ProcId, RegId, Ticks};

#[inline]
fn enc(v: bool) -> u64 {
    v as u64 + 1
}

#[inline]
fn dec(raw: u64) -> bool {
    debug_assert!(raw == 1 || raw == 2, "not a consensus value: {raw}");
    raw == 2
}

/// The per-round delay schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySchedule {
    /// Delay of round 1.
    pub initial: Ticks,
    /// Multiplicative growth per round (1 = fixed estimate).
    pub growth: u64,
    /// Upper clamp on the delay.
    pub cap: Ticks,
}

impl DelaySchedule {
    /// The classic AAT schedule: start at `initial`, double each round.
    pub fn doubling(initial: Ticks) -> DelaySchedule {
        DelaySchedule {
            initial,
            growth: 2,
            cap: Ticks(u64::MAX / 2),
        }
    }

    /// A fixed (non-adaptive) estimate — the strawman.
    pub fn fixed(delay: Ticks) -> DelaySchedule {
        DelaySchedule {
            initial: delay,
            growth: 1,
            cap: delay,
        }
    }

    /// The delay of round `r` (1-based).
    pub fn delay_for_round(&self, r: u64) -> Ticks {
        let mut d = self.initial.0.max(1);
        for _ in 1..r.min(64) {
            d = d.saturating_mul(self.growth);
            if d >= self.cap.0 {
                return self.cap;
            }
        }
        Ticks(d.min(self.cap.0))
    }
}

// ---------------------------------------------------------------------
// Specification form
// ---------------------------------------------------------------------

/// Time-adaptive consensus in specification form. Register layout is
/// identical to [`tfr_core::consensus::ConsensusSpec`]: `decide` at 0,
/// `y[r]` at `3r`, `x[r, b]` at `3r + 1 + b`.
#[derive(Debug, Clone)]
pub struct AatConsensusSpec {
    inputs: Vec<bool>,
    schedule: DelaySchedule,
    max_rounds: u64,
}

impl AatConsensusSpec {
    /// An instance where process `i` proposes `inputs[i]`, with the given
    /// delay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<bool>, schedule: DelaySchedule) -> AatConsensusSpec {
        assert!(!inputs.is_empty(), "at least one process is required");
        AatConsensusSpec {
            inputs,
            schedule,
            max_rounds: u64::MAX,
        }
    }

    /// Bounds the rounds attempted (for bounded model checking).
    pub fn max_rounds(mut self, r: u64) -> AatConsensusSpec {
        self.max_rounds = r;
        self
    }

    fn y(&self, r: u64) -> RegId {
        RegId(3 * r)
    }
    fn x(&self, r: u64, v: bool) -> RegId {
        RegId(3 * r + 1 + v as u64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    ReadDecide,
    WriteX,
    ReadY,
    WriteY,
    ReadXBar,
    WriteDecide,
    DelayStep,
    ReadYAdopt,
    Halted,
}

/// Per-process state of [`AatConsensusSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AatConsensusState {
    pc: Pc,
    v: bool,
    r: u64,
}

impl Automaton for AatConsensusSpec {
    type State = AatConsensusState;

    fn init(&self, pid: ProcId) -> Self::State {
        assert!(pid.0 < self.inputs.len(), "pid out of range");
        AatConsensusState {
            pc: Pc::ReadDecide,
            v: self.inputs[pid.0],
            r: 1,
        }
    }

    fn next_action(&self, s: &Self::State) -> Action {
        match s.pc {
            Pc::ReadDecide => Action::Read(RegId(0)),
            Pc::WriteX => Action::Write(self.x(s.r, s.v), 1),
            Pc::ReadY => Action::Read(self.y(s.r)),
            Pc::WriteY => Action::Write(self.y(s.r), enc(s.v)),
            Pc::ReadXBar => Action::Read(self.x(s.r, !s.v)),
            Pc::WriteDecide => Action::Write(RegId(0), enc(s.v)),
            Pc::DelayStep => Action::Delay(self.schedule.delay_for_round(s.r)),
            Pc::ReadYAdopt => Action::Read(self.y(s.r)),
            Pc::Halted => Action::Halt,
        }
    }

    fn apply(&self, s: &mut Self::State, observed: Option<u64>, obs: &mut Vec<Obs>) {
        match s.pc {
            Pc::ReadDecide => {
                let d = observed.expect("read observes");
                if d != 0 {
                    obs.push(Obs::Decided(dec(d) as u64));
                    s.pc = Pc::Halted;
                } else if s.r > self.max_rounds {
                    s.pc = Pc::Halted;
                } else {
                    obs.push(Obs::StartedRound(s.r));
                    s.pc = Pc::WriteX;
                }
            }
            Pc::WriteX => s.pc = Pc::ReadY,
            Pc::ReadY => {
                s.pc = if observed == Some(0) {
                    Pc::WriteY
                } else {
                    Pc::ReadXBar
                };
            }
            Pc::WriteY => s.pc = Pc::ReadXBar,
            Pc::ReadXBar => {
                s.pc = if observed == Some(0) {
                    Pc::WriteDecide
                } else {
                    Pc::DelayStep
                };
            }
            Pc::WriteDecide => s.pc = Pc::ReadDecide,
            Pc::DelayStep => s.pc = Pc::ReadYAdopt,
            Pc::ReadYAdopt => {
                let raw = observed.expect("read observes");
                if raw != 0 {
                    s.v = dec(raw);
                }
                s.r += 1;
                s.pc = Pc::ReadDecide;
            }
            Pc::Halted => unreachable!("halted process stepped"),
        }
    }
}

// ---------------------------------------------------------------------
// Native form
// ---------------------------------------------------------------------

/// Time-adaptive consensus over real atomics: like
/// [`tfr_core::consensus::NativeConsensus`] but with a growing delay
/// schedule instead of a known Δ.
#[derive(Debug)]
pub struct AatNativeConsensus {
    initial: Duration,
    growth: u32,
    cap: Duration,
    decide: AtomicU64,
    x: UnboundedAtomicArray,
    y: UnboundedAtomicArray,
}

impl AatNativeConsensus {
    /// A fresh instance with the doubling schedule starting at `initial`,
    /// clamped to `cap`.
    pub fn new(initial: Duration, cap: Duration) -> AatNativeConsensus {
        AatNativeConsensus {
            initial,
            growth: 2,
            cap,
            decide: AtomicU64::new(0),
            x: UnboundedAtomicArray::with_capacity(64),
            y: UnboundedAtomicArray::with_capacity(32),
        }
    }

    fn delay_for_round(&self, r: usize) -> Duration {
        let mut d = self.initial;
        for _ in 1..r.min(64) {
            d = d.saturating_mul(self.growth);
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap)
    }

    /// Proposes `input`; blocks until a decision is reached and returns it.
    pub fn propose(&self, input: bool) -> bool {
        let mut v = input;
        let mut r = 1usize;
        loop {
            let d = self.decide.load(Ordering::SeqCst);
            if d != 0 {
                return dec(d);
            }
            self.x.store(2 * (r - 1) + v as usize, 1);
            if self.y.load(r - 1) == 0 {
                self.y.store(r - 1, enc(v));
            }
            if self.x.load(2 * (r - 1) + !v as usize) == 0 {
                self.decide.store(enc(v), Ordering::SeqCst);
                continue;
            }
            precise_delay(self.delay_for_round(r));
            let raw = self.y.load(r - 1);
            if raw != 0 {
                v = dec(raw);
            }
            r += 1;
        }
    }

    /// The decision, if one has been reached.
    pub fn decision(&self) -> Option<bool> {
        match self.decide.load(Ordering::SeqCst) {
            0 => None,
            d => Some(dec(d)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tfr_modelcheck::{Explorer, SafetySpec};
    use tfr_registers::Delta;
    use tfr_sim::metrics::consensus_stats;
    use tfr_sim::timing::standard_no_failures;
    use tfr_sim::{RunConfig, Sim};

    #[test]
    fn schedule_doubles_and_caps() {
        let s = DelaySchedule {
            initial: Ticks(10),
            growth: 2,
            cap: Ticks(100),
        };
        assert_eq!(s.delay_for_round(1), Ticks(10));
        assert_eq!(s.delay_for_round(2), Ticks(20));
        assert_eq!(s.delay_for_round(4), Ticks(80));
        assert_eq!(s.delay_for_round(5), Ticks(100), "clamped");
        assert_eq!(
            s.delay_for_round(500),
            Ticks(100),
            "no overflow at huge rounds"
        );
    }

    #[test]
    fn schedule_fixed_is_constant() {
        let s = DelaySchedule::fixed(Ticks(7));
        assert_eq!(s.delay_for_round(1), Ticks(7));
        assert_eq!(s.delay_for_round(9), Ticks(7));
    }

    #[test]
    fn sim_decides_when_estimate_starts_too_small() {
        // True access times up to 200; the schedule starts at 5 — rounds
        // grow the estimate until it covers the truth, then decision.
        let delta = Delta::from_ticks(200);
        let spec =
            AatConsensusSpec::new(vec![true, false, true], DelaySchedule::doubling(Ticks(5)));
        let result = Sim::new(
            spec,
            RunConfig::new(3, delta),
            standard_no_failures(delta, 17),
        )
        .run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement);
        assert!(stats.all_decided_by.is_some(), "must eventually decide");
    }

    #[test]
    fn modelcheck_safety_exhaustive() {
        // Same safety as Algorithm 1, delays notwithstanding.
        let spec = AatConsensusSpec::new(vec![false, true], DelaySchedule::doubling(Ticks(1)))
            .max_rounds(3);
        let report = Explorer::new(spec, 2).check(&SafetySpec::consensus(vec![0, 1]));
        assert!(report.proven_safe(), "{:?}", report.violation);
    }

    #[test]
    fn native_concurrent_agreement() {
        for trial in 0..10 {
            let c = Arc::new(AatNativeConsensus::new(
                Duration::from_nanos(200),
                Duration::from_millis(1),
            ));
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || c.propose((i + trial) % 2 == 0))
                })
                .collect();
            let outs: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "trial {trial}");
            assert_eq!(c.decision(), Some(outs[0]));
        }
    }

    #[test]
    fn native_solo_decides_own_value() {
        let c = AatNativeConsensus::new(Duration::from_micros(1), Duration::from_millis(1));
        assert!(!c.propose(false));
    }
}
