//! A parallel breadth-first frontier with deterministic counterexample
//! selection.
//!
//! Exploration proceeds in layers: all states at depth `d` are expanded
//! before any state at depth `d+1`. Within a layer the frontier is cut
//! into chunks that worker threads claim dynamically off a shared
//! counter (std threads only — no external dependencies), so a slow
//! chunk does not idle the other workers. Every expansion is pure; the
//! workers' results are re-assembled *in chunk order* on the
//! coordinating thread before deduplication, so the set of admitted
//! states, the reported counts and the chosen counterexample are all
//! independent of thread scheduling.
//!
//! Counterexample selection is deterministic by construction: a
//! violation surfaces in the earliest layer that contains one (BFS gives
//! minimal-length schedules), and among the violations of that layer the
//! lexicographically least schedule wins.

use crate::symmetry::{Canon, IdCanon, SymCanon};
use crate::{Counterexample, Global, Report, SafetySpec, Violation};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use tfr_registers::spec::{Action, Automaton, Obs, Symmetric};
use tfr_registers::ProcId;

/// States per work unit a thread claims at a time.
const CHUNK: usize = 64;

/// One admitted state in the exploration forest, for schedule
/// reconstruction.
struct Node {
    /// Index of the parent node (`usize::MAX` for the root).
    parent: usize,
    /// The edge that produced this node.
    edge: Option<(ProcId, Action)>,
}

/// Result of expanding one transition.
struct Expansion<S> {
    parent_node: usize,
    pid: ProcId,
    action: Action,
    state: Global<S>,
    canonical: Global<S>,
    violation: Option<Violation>,
}

/// A total order on schedules, for deterministic counterexample
/// selection among equal-depth candidates.
fn schedule_key(schedule: &[(ProcId, Action)]) -> Vec<(usize, u8, u64, u64)> {
    schedule
        .iter()
        .map(|&(pid, action)| match action {
            Action::Read(r) => (pid.0, 0, r.0, 0),
            Action::Write(r, v) => (pid.0, 1, r.0, v),
            Action::Delay(d) => (pid.0, 2, d.0, 0),
            Action::Halt => (pid.0, 3, 0, 0),
        })
        .collect()
}

/// Breadth-first explorer fanning each layer out over worker threads.
///
/// Same verdict semantics as [`crate::Explorer`]; schedules it reports
/// are depth-minimal.
#[derive(Debug)]
pub struct ParallelExplorer<A> {
    automaton: A,
    n: usize,
    threads: usize,
    max_depth: usize,
    max_states: usize,
}

impl<A> ParallelExplorer<A>
where
    A: Automaton + Sync,
    A::State: Send + Sync,
{
    /// An explorer over `n` processes with default bounds (depth 10 000,
    /// 5 000 000 states) and one worker per available core (capped at 8).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(automaton: A, n: usize) -> ParallelExplorer<A> {
        assert!(n > 0, "at least one process is required");
        let threads = std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(4);
        ParallelExplorer {
            automaton,
            n,
            threads,
            max_depth: 10_000,
            max_states: 5_000_000,
        }
    }

    /// Overrides the worker-thread count (`1` = sequential BFS).
    pub fn threads(mut self, t: usize) -> ParallelExplorer<A> {
        self.threads = t.max(1);
        self
    }

    /// Overrides the depth bound (schedule length).
    pub fn max_depth(mut self, d: usize) -> ParallelExplorer<A> {
        self.max_depth = d;
        self
    }

    /// Overrides the distinct-state bound.
    pub fn max_states(mut self, s: usize) -> ParallelExplorer<A> {
        self.max_states = s;
        self
    }

    /// Explores every interleaving breadth-first (up to the bounds),
    /// checking `spec` after each transition.
    pub fn check(&self, spec: &SafetySpec) -> Report {
        self.run(spec, &IdCanon)
    }

    fn expand_layer<C: Canon<A> + Sync>(
        &self,
        spec: &SafetySpec,
        canon: &C,
        frontier: &[(usize, Global<A::State>)],
    ) -> Vec<Expansion<A::State>> {
        let cursor = AtomicUsize::new(0);
        let chunks = frontier.len().div_ceil(CHUNK);
        let (tx, rx) = mpsc::channel::<(usize, Vec<Expansion<A::State>>)>();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(chunks.max(1)) {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut obs_buf: Vec<Obs> = Vec::new();
                    loop {
                        // Dynamic chunk claiming: fast workers steal the
                        // remaining chunks instead of idling.
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunks {
                            break;
                        }
                        let lo = chunk * CHUNK;
                        let hi = (lo + CHUNK).min(frontier.len());
                        let mut out = Vec::new();
                        for (node_idx, state) in &frontier[lo..hi] {
                            for pid in 0..self.n {
                                if matches!(
                                    self.automaton.next_action(&state.procs[pid]),
                                    Action::Halt
                                ) {
                                    continue;
                                }
                                let mut next = state.clone();
                                let (action, violation) =
                                    next.step(&self.automaton, pid, spec, &mut obs_buf);
                                let (canonical, _) = canon.canonicalize(&self.automaton, &next);
                                out.push(Expansion {
                                    parent_node: *node_idx,
                                    pid: ProcId(pid),
                                    action,
                                    state: next,
                                    canonical,
                                    violation,
                                });
                            }
                        }
                        if tx.send((chunk, out)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            let mut per_chunk: Vec<(usize, Vec<Expansion<A::State>>)> = rx.iter().collect();
            // Re-assemble in chunk order: the merge below is then
            // independent of which worker claimed which chunk.
            per_chunk.sort_by_key(|(chunk, _)| *chunk);
            per_chunk.into_iter().flat_map(|(_, v)| v).collect()
        })
    }

    fn run<C: Canon<A> + Sync>(&self, spec: &SafetySpec, canon: &C) -> Report {
        let init = Global::initial(&self.automaton, self.n);
        let (init_canon, _) = canon.canonicalize(&self.automaton, &init);

        let mut seen: HashSet<Global<A::State>> = HashSet::new();
        seen.insert(init_canon);
        let mut arena = vec![Node {
            parent: usize::MAX,
            edge: None,
        }];
        let mut frontier: Vec<(usize, Global<A::State>)> = vec![(0, init)];
        let mut transitions = 0usize;
        let mut depth_truncated = false;
        let mut states_truncated = false;

        let mut depth = 0usize;
        while !frontier.is_empty() {
            if depth >= self.max_depth {
                depth_truncated = true;
                break;
            }
            let expansions = self.expand_layer(spec, canon, &frontier);
            transitions += expansions.len();

            // Violations first: everything in this layer is depth-minimal,
            // the lexicographically least schedule wins deterministically.
            let mut best: Option<(Vec<(ProcId, Action)>, Violation)> = None;
            for e in &expansions {
                if let Some(v) = &e.violation {
                    let mut schedule = self.schedule_to(&arena, e.parent_node);
                    schedule.push((e.pid, e.action));
                    let better = match &best {
                        None => true,
                        Some((cur, _)) => schedule_key(&schedule) < schedule_key(cur),
                    };
                    if better {
                        best = Some((schedule, v.clone()));
                    }
                }
            }
            if let Some((schedule, violation)) = best {
                return Report {
                    states_explored: seen.len(),
                    transitions,
                    violation: Some(Counterexample {
                        violation,
                        schedule,
                    }),
                    depth_truncated,
                    states_truncated,
                };
            }

            // Deterministic merge: admission in re-assembled chunk order.
            let mut next_frontier = Vec::new();
            for e in expansions {
                if seen.contains(&e.canonical) {
                    continue;
                }
                if seen.len() >= self.max_states {
                    states_truncated = true;
                    continue;
                }
                seen.insert(e.canonical);
                let idx = arena.len();
                arena.push(Node {
                    parent: e.parent_node,
                    edge: Some((e.pid, e.action)),
                });
                next_frontier.push((idx, e.state));
            }
            frontier = next_frontier;
            depth += 1;
        }

        Report {
            states_explored: seen.len(),
            transitions,
            violation: None,
            depth_truncated,
            states_truncated,
        }
    }

    fn schedule_to(&self, arena: &[Node], mut node: usize) -> Vec<(ProcId, Action)> {
        let mut rev = Vec::new();
        while node != usize::MAX {
            if let Some(edge) = arena[node].edge {
                rev.push(edge);
            }
            node = arena[node].parent;
        }
        rev.reverse();
        rev
    }
}

impl<A> ParallelExplorer<A>
where
    A: Symmetric + Sync,
    A::State: Send + Sync,
{
    /// [`ParallelExplorer::check`] with process-symmetry deduplication
    /// (see [`crate::Explorer::check_symmetric`]).
    pub fn check_symmetric(&self, spec: &SafetySpec) -> Report {
        self.run(spec, &SymCanon::stabilizer(&self.automaton, self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::RegId;

    /// Increment-via-race: read the counter, write back +1, decide what
    /// you wrote. Lost updates make processes decide different values.
    struct RacyIncr;
    impl Automaton for RacyIncr {
        type State = (u8, u64);
        fn init(&self, _pid: ProcId) -> Self::State {
            (0, 0)
        }
        fn next_action(&self, s: &Self::State) -> Action {
            match s.0 {
                0 => Action::Read(RegId(0)),
                1 => Action::Write(RegId(0), s.1 + 1),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut Self::State, v: Option<u64>, obs: &mut Vec<Obs>) {
            match s.0 {
                0 => s.1 = v.unwrap(),
                1 => obs.push(Obs::Decided(s.1 + 1)),
                _ => {}
            }
            s.0 += 1;
        }
    }

    #[test]
    fn parallel_verdict_matches_sequential() {
        let spec = SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        };
        let seq = crate::Explorer::new(RacyIncr, 2).check(&spec);
        let par = ParallelExplorer::new(RacyIncr, 2).threads(4).check(&spec);
        assert_eq!(seq.violation.is_some(), par.violation.is_some());
        let cex = par.violation.unwrap();
        assert_eq!(
            crate::replay_schedule(&RacyIncr, 2, &spec, &cex.schedule),
            Some(cex.violation)
        );
    }

    #[test]
    fn counterexample_selection_is_deterministic_across_thread_counts() {
        let spec = SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        };
        let one = ParallelExplorer::new(RacyIncr, 3).threads(1).check(&spec);
        let many = ParallelExplorer::new(RacyIncr, 3).threads(8).check(&spec);
        let (a, b) = (one.violation.unwrap(), many.violation.unwrap());
        assert_eq!(
            a.schedule, b.schedule,
            "selection must not depend on threads"
        );
        assert_eq!(a.violation, b.violation);
        assert_eq!(one.states_explored, many.states_explored);
        assert_eq!(one.transitions, many.transitions);
    }
}
