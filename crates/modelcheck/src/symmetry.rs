//! Process-symmetry canonicalization.
//!
//! Two global configurations that differ only by a relabelling of
//! processes generate isomorphic futures when the automaton is
//! [`Symmetric`] — the transition relation commutes with the
//! relabelling — and when the relabelling fixes the *initial*
//! configuration (so it is an automorphism of the whole rooted
//! transition system, not just of the transition relation). Restricting
//! to the stabilizer of the initial configuration is what makes the
//! reduction valid for asymmetric inputs: with consensus inputs
//! `[0, 1, 1]` only the permutations preserving the input vector
//! qualify.
//!
//! Canonicalization maps a configuration to the minimum over the group
//! of its images, ordered by 64-bit hash with a full-content tiebreak
//! (so hash collisions cost a string comparison, never soundness).
//! The safety properties themselves are pid-closed — a disagreement,
//! invalid decision, or critical-section overlap maps to a violation of
//! the same kind under any relabelling — so collapsing an orbit to one
//! representative preserves the verdict.

use crate::independence::{Access, Kind};
use crate::{Global, Monitor};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tfr_registers::spec::{Action, Automaton, Perm, Symmetric};

/// Applies `perm` to a whole configuration: process `i`'s slot moves to
/// `perm.apply(i)`, registers and values map through the automaton's
/// relabelling.
pub(crate) fn permute_global<A: Symmetric>(
    automaton: &A,
    g: &Global<A::State>,
    perm: &Perm,
) -> Global<A::State> {
    let n = g.procs.len();
    let mut procs: Vec<Option<A::State>> = vec![None; n];
    let mut monitor = Monitor::new(n);
    for (i, s) in g.procs.iter().enumerate() {
        let j = perm.apply(i);
        procs[j] = Some(automaton.permute_state(s, perm));
        monitor.decided[j] = g.monitor.decided[i];
        monitor.in_cs[j] = g.monitor.in_cs[i];
    }
    let mut bank = tfr_registers::bank::MapBank::new();
    for (r, v) in g.bank.iter() {
        use tfr_registers::bank::RegisterBank;
        bank.write(
            automaton.permute_reg(r, perm),
            automaton.permute_value(r, v, perm),
        );
    }
    Global {
        procs: procs.into_iter().map(Option::unwrap).collect(),
        bank,
        monitor,
    }
}

/// Applies `perm` to an action (registers and written values relabel;
/// delays and halts are fixed).
pub(crate) fn permute_action<A: Symmetric>(automaton: &A, action: Action, perm: &Perm) -> Action {
    match action {
        Action::Read(r) => Action::Read(automaton.permute_reg(r, perm)),
        Action::Write(r, v) => Action::Write(
            automaton.permute_reg(r, perm),
            automaton.permute_value(r, v, perm),
        ),
        other => other,
    }
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The canonicalization strategy an explorer runs with. `IdCanon` is the
/// trivial one (no symmetry assumptions, no `Symmetric` bound);
/// `SymCanon` holds the stabilizer subgroup and maps every state to its
/// orbit minimum.
pub(crate) trait Canon<A: Automaton> {
    /// The canonical representative of `g`'s orbit and a permutation `σ`
    /// with `permute_global(g, σ) == canonical`.
    fn canonicalize(&self, automaton: &A, g: &Global<A::State>) -> (Global<A::State>, Perm);

    /// Maps an access footprint through `perm` (identity for `IdCanon`).
    fn permute_access(
        &self,
        automaton: &A,
        pid: usize,
        access: Access,
        perm: &Perm,
    ) -> (usize, Access);
}

/// No symmetry: every state is its own canonical form.
pub(crate) struct IdCanon;

impl<A: Automaton> Canon<A> for IdCanon {
    fn canonicalize(&self, _automaton: &A, g: &Global<A::State>) -> (Global<A::State>, Perm) {
        (g.clone(), Perm::identity(g.procs.len()))
    }
    fn permute_access(
        &self,
        _automaton: &A,
        pid: usize,
        access: Access,
        _perm: &Perm,
    ) -> (usize, Access) {
        (pid, access)
    }
}

/// Canonicalization over the stabilizer of the initial configuration.
pub(crate) struct SymCanon {
    perms: Vec<Perm>,
}

impl SymCanon {
    /// Computes the valid symmetry group for `n` copies of `automaton`:
    /// all process permutations that (a) fix the initial configuration,
    /// (b) are action-equivariant on it — `π(next_action(s_i)) ==
    /// next_action(s_{π(i)})` — and (c) pass the automaton's own
    /// [`Symmetric::respects`] filter (which rejects symmetries broken
    /// by per-process parameters invisible at the initial state, like a
    /// heterogeneous delay table).
    pub(crate) fn stabilizer<A: Symmetric>(automaton: &A, n: usize) -> SymCanon {
        let init = Global::initial(automaton, n);
        let perms = Perm::all(n)
            .into_iter()
            .filter(|p| {
                automaton.respects(p)
                    && permute_global(automaton, &init, p) == init
                    && (0..n).all(|i| {
                        let a = automaton.next_action(&init.procs[i]);
                        let b = automaton.next_action(&init.procs[p.apply(i)]);
                        permute_action(automaton, a, p) == b
                    })
            })
            .collect();
        SymCanon { perms }
    }

    /// Number of permutations in the group (at least 1: the identity).
    #[cfg(test)]
    pub(crate) fn order(&self) -> usize {
        self.perms.len()
    }
}

impl<A: Symmetric> Canon<A> for SymCanon {
    fn canonicalize(&self, automaton: &A, g: &Global<A::State>) -> (Global<A::State>, Perm) {
        let mut best: Option<(u64, Global<A::State>, &Perm)> = None;
        for p in &self.perms {
            let img = if p.is_identity() {
                g.clone()
            } else {
                permute_global(automaton, g, p)
            };
            let h = hash_of(&img);
            match &best {
                None => best = Some((h, img, p)),
                Some((bh, bimg, _)) => {
                    // Hash first; on the (rare) tie, the full Debug
                    // rendering decides — deterministic and exact.
                    if h < *bh || (h == *bh && format!("{img:?}") < format!("{bimg:?}")) {
                        best = Some((h, img, p));
                    }
                }
            }
        }
        let (_, img, p) = best.expect("group contains at least the identity");
        (img, p.clone())
    }

    fn permute_access(
        &self,
        automaton: &A,
        pid: usize,
        access: Access,
        perm: &Perm,
    ) -> (usize, Access) {
        let kind = match access.kind {
            Kind::Local => Kind::Local,
            Kind::Read(r) => Kind::Read(automaton.permute_reg(r, perm)),
            Kind::Write(r) => Kind::Write(automaton.permute_reg(r, perm)),
        };
        (
            perm.apply(pid),
            Access {
                kind,
                cs: access.cs,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::spec::Obs;
    use tfr_registers::{ProcId, RegId};

    /// Fully symmetric toy: every process writes 1 to its own slot...
    /// actually to a shared register — pid appears only in the state.
    struct Sym;
    impl Automaton for Sym {
        type State = (ProcId, u8);
        fn init(&self, pid: ProcId) -> Self::State {
            (pid, 0)
        }
        fn next_action(&self, s: &Self::State) -> Action {
            if s.1 == 0 {
                Action::Write(RegId(0), 1)
            } else {
                Action::Halt
            }
        }
        fn apply(&self, s: &mut Self::State, _v: Option<u64>, _obs: &mut Vec<Obs>) {
            s.1 = 1;
        }
    }
    impl Symmetric for Sym {
        fn permute_state(&self, s: &Self::State, perm: &Perm) -> Self::State {
            (perm.apply_pid(s.0), s.1)
        }
    }

    #[test]
    fn full_group_for_symmetric_automaton() {
        let g = SymCanon::stabilizer(&Sym, 3);
        assert_eq!(g.order(), 6);
    }

    #[test]
    fn orbit_collapses_to_one_canonical_form() {
        let group = SymCanon::stabilizer(&Sym, 2);
        let mut a = Global::initial(&Sym, 2);
        let mut b = Global::initial(&Sym, 2);
        let mut obs = Vec::new();
        // a: only process 0 stepped; b: only process 1 stepped.
        let spec = crate::SafetySpec::default();
        a.step(&Sym, 0, &spec, &mut obs);
        b.step(&Sym, 1, &spec, &mut obs);
        assert_ne!(a, b);
        let (ca, pa) = group.canonicalize(&Sym, &a);
        let (cb, _pb) = group.canonicalize(&Sym, &b);
        assert_eq!(ca, cb, "pid-swapped states share a canonical form");
        // The returned permutation really maps the state to the form.
        assert_eq!(permute_global(&Sym, &a, &pa), ca);
    }
}
