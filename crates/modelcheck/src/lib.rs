//! Bounded exhaustive interleaving explorer for register automata.
//!
//! Safety under timing failures (Theorems 2.2, 2.3 and the mutual exclusion
//! property of Algorithm 3) must hold for **every** behaviour the timing
//! failures can produce. In the register model, arbitrary timing failures
//! make arbitrary interleavings of atomic register accesses possible, and
//! strip `delay(d)` of any synchronizing power (other processes' steps may
//! outlast any delay). The *asynchronous closure* explored here — any
//! pending process may linearize its next action at any point, delays are
//! ordinary steps — is therefore a sound over-approximation: a safety
//! property verified over all interleavings holds under arbitrary timing
//! failures.
//!
//! Three explorers share one [`SafetySpec`]/[`Report`] interface:
//!
//! * [`Explorer`] — the reference: depth-first over every interleaving
//!   with exact state deduplication (full states, not hashes — no
//!   collision unsoundness). Slow, but its verdicts are the oracle the
//!   reduced explorers are differentially tested against.
//! * [`DporExplorer`] — dynamic partial-order reduction (persistent
//!   sets computed from register-access conflicts, plus sleep sets),
//!   optionally combined with process-symmetry canonicalization
//!   ([`DporExplorer::check_symmetric`]). Explores a provably
//!   sufficient subset of interleavings.
//! * [`ParallelExplorer`] — a layered breadth-first frontier fanned out
//!   over worker threads (std threads + channels only), with
//!   deterministic counterexample selection regardless of thread
//!   scheduling.
//!
//! All explorers check the [`SafetySpec`] after every transition and
//! report either exhaustion or a [`Counterexample`] with the full
//! schedule that reaches the violation.
//!
//! Beyond safety, [`check_eventual_completion`] decides **deadlock
//! freedom** as a graph property of the reachable state space: every
//! reachable state must still have *some* schedule that completes the
//! workload — the obligation a crash-recovery adversary attacks by
//! orphaning a held lock.
//!
//! # Example
//!
//! ```
//! use tfr_modelcheck::{Explorer, SafetySpec};
//! use tfr_registers::spec::{Action, Automaton, Obs};
//! use tfr_registers::{ProcId, RegId};
//!
//! /// Every process decides its own input parity — deliberately broken
//! /// consensus.
//! struct Broken;
//! impl Automaton for Broken {
//!     type State = (ProcId, bool);
//!     fn init(&self, pid: ProcId) -> Self::State { (pid, false) }
//!     fn next_action(&self, s: &Self::State) -> Action {
//!         if s.1 { Action::Halt } else { Action::Read(RegId(0)) }
//!     }
//!     fn apply(&self, s: &mut Self::State, _v: Option<u64>, obs: &mut Vec<Obs>) {
//!         obs.push(Obs::Decided(s.0 .0 as u64 % 2));
//!         s.1 = true;
//!     }
//! }
//!
//! let report = Explorer::new(Broken, 2).check(&SafetySpec::consensus(vec![0, 1]));
//! assert!(report.violation.is_some(), "processes decide different values");
//! ```

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use tfr_registers::bank::{MapBank, RegisterBank};
use tfr_registers::spec::{Action, Automaton, Obs, Symmetric};
use tfr_registers::ProcId;

pub mod corpus;
mod dpor;
mod exec;
pub mod independence;
mod parallel;
mod symmetry;

pub use dpor::DporExplorer;
pub use exec::{run_schedule, sample_execution, ScheduleRun, StepObs};
pub use parallel::ParallelExplorer;

use symmetry::{Canon, IdCanon, SymCanon};

/// Which safety properties to check after every transition.
#[derive(Debug, Clone, Default)]
pub struct SafetySpec {
    /// Agreement (Theorem 2.3): no two processes decide different values.
    pub agreement: bool,
    /// Validity (Theorem 2.2): every decided value must be in this set.
    pub validity: Option<Vec<u64>>,
    /// Mutual exclusion: no two processes in the critical section at once.
    pub mutual_exclusion: bool,
}

impl SafetySpec {
    /// Agreement + validity against the given admissible inputs.
    pub fn consensus(inputs: Vec<u64>) -> SafetySpec {
        SafetySpec {
            agreement: true,
            validity: Some(inputs),
            mutual_exclusion: false,
        }
    }

    /// Mutual exclusion only.
    pub fn mutex() -> SafetySpec {
        SafetySpec {
            agreement: false,
            validity: None,
            mutual_exclusion: true,
        }
    }
}

/// A safety violation found by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided different values.
    Disagreement {
        /// First process and its decision.
        a: (ProcId, u64),
        /// Second process and its conflicting decision.
        b: (ProcId, u64),
    },
    /// A process decided a value outside the admissible input set.
    InvalidDecision {
        /// The offending process.
        pid: ProcId,
        /// The value it decided.
        value: u64,
    },
    /// Two processes were in the critical section simultaneously.
    MutualExclusion {
        /// The two offending processes.
        pids: (ProcId, ProcId),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disagreement { a, b } => {
                write!(
                    f,
                    "disagreement: {} decided {}, {} decided {}",
                    a.0, a.1, b.0, b.1
                )
            }
            Violation::InvalidDecision { pid, value } => {
                write!(f, "invalid decision: {pid} decided {value}, not an input")
            }
            Violation::MutualExclusion { pids } => {
                write!(
                    f,
                    "mutual exclusion violated: {} and {} in CS",
                    pids.0, pids.1
                )
            }
        }
    }
}

/// A schedule that drives the system from its initial state into a safety
/// violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violation reached.
    pub violation: Violation,
    /// The linearization order: `(pid, action)` per step.
    pub schedule: Vec<(ProcId, Action)>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.violation)?;
        for (i, (pid, action)) in self.schedule.iter().enumerate() {
            writeln!(f, "  {i:3}: {pid} {action}")?;
        }
        Ok(())
    }
}

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct global states visited (distinct *canonical* states for
    /// the symmetry-reducing explorers).
    pub states_explored: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// The first violation found, with its schedule; `None` if the explored
    /// space is safe.
    pub violation: Option<Counterexample>,
    /// Whether any branch was cut by the `max_depth` bound. If set and
    /// `violation` is `None`, the result is "no violation within the
    /// depth bound", not a proof.
    pub depth_truncated: bool,
    /// Whether exploration stopped admitting states at the `max_states`
    /// budget. If set and `violation` is `None`, the result is "no
    /// violation within the state budget", not a proof.
    pub states_truncated: bool,
}

impl Report {
    /// Whether any bound cut the exploration short (depth *or* state
    /// budget).
    pub fn truncated(&self) -> bool {
        self.depth_truncated || self.states_truncated
    }

    /// Whether the reachable state space was fully exhausted — no bound
    /// interfered. An exhausted run with no violation is a proof.
    pub fn exhausted(&self) -> bool {
        !self.truncated()
    }

    /// `true` when the full state space was exhausted with no violation —
    /// a proof of safety for this configuration. An exploration cut off
    /// by `max_states` or `max_depth` never satisfies this.
    pub fn proven_safe(&self) -> bool {
        self.violation.is_none() && self.exhausted()
    }
}

/// Monitor folded into the explored state: decisions and critical-section
/// occupancy per process.
///
/// Every field is a per-process slot, so two different processes' monitor
/// updates commute — the property the partial-order reduction's
/// independence relation relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub(crate) struct Monitor {
    pub(crate) decided: Vec<Option<u64>>,
    pub(crate) in_cs: Vec<bool>,
}

impl Monitor {
    pub(crate) fn new(n: usize) -> Monitor {
        Monitor {
            decided: vec![None; n],
            in_cs: vec![false; n],
        }
    }

    pub(crate) fn observe(
        &mut self,
        pid: ProcId,
        obs: &[Obs],
        spec: &SafetySpec,
    ) -> Option<Violation> {
        for o in obs {
            match *o {
                Obs::Decided(v) => {
                    if let Some(valid) = &spec.validity {
                        if !valid.contains(&v) {
                            return Some(Violation::InvalidDecision { pid, value: v });
                        }
                    }
                    if spec.agreement {
                        for (j, d) in self.decided.iter().enumerate() {
                            if let Some(w) = d {
                                if *w != v {
                                    return Some(Violation::Disagreement {
                                        a: (ProcId(j), *w),
                                        b: (pid, v),
                                    });
                                }
                            }
                        }
                    }
                    self.decided[pid.0] = Some(v);
                }
                Obs::EnterCritical => {
                    if spec.mutual_exclusion {
                        if let Some(other) = self.in_cs.iter().position(|&c| c) {
                            return Some(Violation::MutualExclusion {
                                pids: (ProcId(other), pid),
                            });
                        }
                    }
                    self.in_cs[pid.0] = true;
                }
                Obs::ExitCritical => {
                    self.in_cs[pid.0] = false;
                }
                _ => {}
            }
        }
        None
    }
}

/// Deterministically replays a schedule — typically a
/// [`Counterexample::schedule`] — from fresh initial state and returns
/// the first violation the safety monitor observes, or `None` if the
/// schedule completes cleanly.
///
/// Replay recomputes every step from the automaton itself and
/// cross-checks it against the recorded action, so a schedule from a
/// different automaton or configuration fails loudly instead of
/// silently diverging. Since both the explorer and this function are
/// deterministic, replaying the same schedule twice must yield the
/// identical violation — the property the regression tests pin down.
///
/// # Panics
///
/// Panics if a scheduled `(pid, action)` does not match what the
/// automaton would do at that point, or if `pid` is out of range.
pub fn replay_schedule<A: Automaton>(
    automaton: &A,
    n: usize,
    spec: &SafetySpec,
    schedule: &[(ProcId, Action)],
) -> Option<Violation> {
    let mut bank = MapBank::new();
    let mut procs: Vec<A::State> = (0..n).map(|i| automaton.init(ProcId(i))).collect();
    let mut monitor = Monitor::new(n);
    let mut obs = Vec::new();
    for (i, &(pid, action)) in schedule.iter().enumerate() {
        let expected = automaton.next_action(&procs[pid.0]);
        assert_eq!(
            action, expected,
            "replay step {i}: schedule has {pid} take {action}, automaton would {expected}"
        );
        let observed = match action {
            Action::Read(r) => Some(bank.read(r)),
            Action::Write(r, v) => {
                bank.write(r, v);
                None
            }
            Action::Delay(_) => None,
            Action::Halt => panic!("replay step {i}: a halted process was scheduled"),
        };
        obs.clear();
        automaton.apply(&mut procs[pid.0], observed, &mut obs);
        if let Some(v) = monitor.observe(pid, &obs, spec) {
            return Some(v);
        }
    }
    None
}

/// One explored global configuration: every process's local state, the
/// shared register bank, and the safety monitor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Global<S> {
    pub(crate) procs: Vec<S>,
    pub(crate) bank: MapBank,
    pub(crate) monitor: Monitor,
}

impl<S> Global<S> {
    /// The initial configuration of `n` copies of `automaton`.
    pub(crate) fn initial<A: Automaton<State = S>>(automaton: &A, n: usize) -> Global<S> {
        Global {
            procs: (0..n).map(|i| automaton.init(ProcId(i))).collect(),
            bank: MapBank::new(),
            monitor: Monitor::new(n),
        }
    }

    /// Executes one atomic step of process `pid` (whose next action must
    /// not be `Halt`): linearizes the access, applies the local update,
    /// and feeds the emitted events to the monitor. Returns the action
    /// taken and the violation, if the monitor saw one.
    pub(crate) fn step<A: Automaton<State = S>>(
        &mut self,
        automaton: &A,
        pid: usize,
        spec: &SafetySpec,
        obs_buf: &mut Vec<Obs>,
    ) -> (Action, Option<Violation>) {
        let action = automaton.next_action(&self.procs[pid]);
        let observed = match action {
            Action::Read(r) => Some(self.bank.read(r)),
            Action::Write(r, v) => {
                self.bank.write(r, v);
                None
            }
            Action::Delay(_) => None,
            Action::Halt => panic!("stepping a halted process"),
        };
        obs_buf.clear();
        automaton.apply(&mut self.procs[pid], observed, obs_buf);
        let violation = self.monitor.observe(ProcId(pid), obs_buf, spec);
        (action, violation)
    }
}

/// Bounded exhaustive explorer of all interleavings of `n` copies of an
/// automaton.
#[derive(Debug)]
pub struct Explorer<A> {
    automaton: A,
    n: usize,
    max_depth: usize,
    max_states: usize,
}

impl<A: Automaton> Explorer<A> {
    /// An explorer over `n` processes with default bounds
    /// (depth 10 000, 5 000 000 states).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(automaton: A, n: usize) -> Explorer<A> {
        assert!(n > 0, "at least one process is required");
        Explorer {
            automaton,
            n,
            max_depth: 10_000,
            max_states: 5_000_000,
        }
    }

    /// Overrides the depth bound (schedule length).
    pub fn max_depth(mut self, d: usize) -> Explorer<A> {
        self.max_depth = d;
        self
    }

    /// Overrides the distinct-state bound.
    pub fn max_states(mut self, s: usize) -> Explorer<A> {
        self.max_states = s;
        self
    }

    /// Explores every interleaving (up to the bounds), checking `spec`
    /// after each transition.
    pub fn check(&self, spec: &SafetySpec) -> Report {
        self.check_with(spec, &IdCanon)
    }

    fn check_with<C: Canon<A>>(&self, spec: &SafetySpec, canon: &C) -> Report {
        let init = Global::initial(&self.automaton, self.n);

        // seen: canonical state -> shallowest depth at which it was
        // expanded. A state reached again at a depth not smaller than
        // before cannot lead to new behaviour within the depth budget.
        let mut seen: HashMap<Global<A::State>, usize> = HashMap::new();
        let mut transitions = 0usize;
        let mut depth_truncated = false;
        let mut states_truncated = false;

        struct Frame<S> {
            state: Global<S>,
            depth: usize,
            next_pid: usize,
        }
        let mut schedule: Vec<(ProcId, Action)> = Vec::new();
        let mut stack = vec![Frame {
            state: init.clone(),
            depth: 0,
            next_pid: 0,
        }];
        seen.insert(canon.canonicalize(&self.automaton, &init).0, 0);

        let mut obs_buf: Vec<Obs> = Vec::new();
        while let Some(frame) = stack.last_mut() {
            if frame.next_pid >= self.n {
                stack.pop();
                schedule.pop();
                continue;
            }
            let pid = frame.next_pid;
            frame.next_pid += 1;

            if matches!(
                self.automaton.next_action(&frame.state.procs[pid]),
                Action::Halt
            ) {
                continue;
            }
            if frame.depth >= self.max_depth {
                depth_truncated = true;
                continue;
            }
            transitions += 1;

            let mut next = frame.state.clone();
            let (action, violation) = next.step(&self.automaton, pid, spec, &mut obs_buf);
            let depth = frame.depth + 1;
            schedule.push((ProcId(pid), action));

            if let Some(v) = violation {
                return Report {
                    states_explored: seen.len(),
                    transitions,
                    violation: Some(Counterexample {
                        violation: v,
                        schedule,
                    }),
                    depth_truncated,
                    states_truncated,
                };
            }

            if seen.len() >= self.max_states {
                states_truncated = true;
                schedule.pop();
                continue;
            }
            let (canonical, _) = canon.canonicalize(&self.automaton, &next);
            let expand = match seen.entry(canonical) {
                Entry::Vacant(e) => {
                    e.insert(depth);
                    true
                }
                Entry::Occupied(mut e) => {
                    if depth < *e.get() {
                        e.insert(depth);
                        true
                    } else {
                        false
                    }
                }
            };
            if expand {
                stack.push(Frame {
                    state: next,
                    depth,
                    next_pid: 0,
                });
            } else {
                schedule.pop();
            }
        }

        Report {
            states_explored: seen.len(),
            transitions,
            violation: None,
            depth_truncated,
            states_truncated,
        }
    }
}

impl<A: Symmetric> Explorer<A> {
    /// Like [`Explorer::check`], but deduplicates states up to process
    /// symmetry: two configurations differing only by a process
    /// relabelling that fixes the initial configuration count as one.
    ///
    /// Sound because the permutations used are automorphisms of the
    /// transition system (see [`tfr_registers::spec::Symmetric`]) and the
    /// safety properties are pid-closed: a disagreement, invalid decision
    /// or mutual-exclusion overlap maps to one of the same kind under any
    /// relabelling.
    pub fn check_symmetric(&self, spec: &SafetySpec) -> Report {
        self.check_with(spec, &SymCanon::stabilizer(&self.automaton, self.n))
    }
}

/// Result of a [`check_eventual_completion`] run.
#[derive(Debug, Clone)]
pub struct ProgressReport {
    /// Distinct reachable global states.
    pub states_explored: usize,
    /// Transitions in the reachable state graph.
    pub transitions: usize,
    /// Whether exploration stopped admitting states at the budget. If
    /// set, `stuck_states` is meaningless — the verdict is "unknown".
    pub truncated: bool,
    /// Reachable states from which **no** schedule reaches completion
    /// (all processes halted). Zero means deadlock freedom: whatever the
    /// adversary has done so far, some continuation finishes the
    /// workload.
    pub stuck_states: usize,
    /// A shortest schedule from the initial state into one stuck state,
    /// if any — the prefix after which completion became unreachable.
    pub stuck_schedule: Option<Vec<(ProcId, Action)>>,
}

impl ProgressReport {
    /// `true` when the full reachable graph was built and every state
    /// can still reach completion — a proof of deadlock freedom (in the
    /// "potential progress" sense: no adversarial prefix wedges the
    /// system) for this configuration.
    pub fn proven_deadlock_free(&self) -> bool {
        !self.truncated && self.stuck_states == 0
    }
}

/// Deadlock-freedom as a graph property of the full reachable state
/// space: build every reachable global state (forward BFS over all
/// interleavings), mark the *completed* states (every process halted),
/// and close backwards. A reachable state outside the backward closure
/// is **stuck**: no continuation whatsoever completes the workload — in
/// the register model, where actions never block, that is how deadlocks
/// and orphaned-lock livelocks (every waiter spinning forever) manifest.
///
/// This is a branching-time "potential progress" property, strictly
/// weaker than starvation freedom but exactly the deadlock-freedom
/// obligation of a recoverable lock: a crash — even inside the critical
/// section — must never make completion unreachable, because the next
/// incarnation's recovery section can always repair.
///
/// Safety is [`Explorer::check`]'s job; this function ignores the
/// monitor's verdicts and only looks at reachability.
///
/// # Example
///
/// ```
/// use tfr_modelcheck::check_eventual_completion;
/// use tfr_registers::spec::{Action, Automaton, Obs};
/// use tfr_registers::{ProcId, RegId};
///
/// /// Spins until the register is nonzero — but nobody ever writes it.
/// struct WaitForever;
/// impl Automaton for WaitForever {
///     type State = bool;
///     fn init(&self, _pid: ProcId) -> bool { false }
///     fn next_action(&self, s: &bool) -> Action {
///         if *s { Action::Halt } else { Action::Read(RegId(0)) }
///     }
///     fn apply(&self, s: &mut bool, v: Option<u64>, _obs: &mut Vec<Obs>) {
///         *s = v == Some(1);
///     }
/// }
///
/// let report = check_eventual_completion(&WaitForever, 2, 10_000);
/// assert!(!report.proven_deadlock_free());
/// assert!(report.stuck_states > 0, "the spin loop can never complete");
/// ```
pub fn check_eventual_completion<A: Automaton>(
    automaton: &A,
    n: usize,
    max_states: usize,
) -> ProgressReport {
    assert!(n > 0, "at least one process is required");
    let spec = SafetySpec::default();
    let mut obs_buf: Vec<Obs> = Vec::new();

    // Forward BFS: the full reachable graph, states interned by index.
    let init = Global::initial(automaton, n);
    let mut index: HashMap<Global<A::State>, usize> = HashMap::new();
    let mut states: Vec<Global<A::State>> = Vec::new();
    // `preds` is all the closure needs; `entered_by` remembers one
    // shortest way in, for the stuck-prefix reconstruction.
    let mut preds: Vec<Vec<usize>> = Vec::new();
    let mut entered_by: Vec<Option<(usize, ProcId, Action)>> = Vec::new();
    let mut truncated = false;
    let mut transitions = 0usize;

    index.insert(init.clone(), 0);
    states.push(init);
    preds.push(Vec::new());
    entered_by.push(None);
    let mut frontier = 0usize;
    while frontier < states.len() {
        let here = frontier;
        frontier += 1;
        for pid in 0..n {
            if automaton.is_halted(&states[here].procs[pid]) {
                continue;
            }
            let mut next = states[here].clone();
            let (action, _) = next.step(automaton, pid, &spec, &mut obs_buf);
            transitions += 1;
            let to = match index.entry(next) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    if states.len() >= max_states {
                        truncated = true;
                        continue;
                    }
                    let id = states.len();
                    states.push(e.key().clone());
                    e.insert(id);
                    preds.push(Vec::new());
                    entered_by.push(Some((here, ProcId(pid), action)));
                    id
                }
            };
            preds[to].push(here);
        }
    }

    // Backward closure from the completed states.
    let mut can_complete = vec![false; states.len()];
    let mut queue: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, g)| g.procs.iter().all(|p| automaton.is_halted(p)))
        .map(|(i, _)| i)
        .collect();
    for &i in &queue {
        can_complete[i] = true;
    }
    while let Some(i) = queue.pop() {
        for &p in &preds[i] {
            if !can_complete[p] {
                can_complete[p] = true;
                queue.push(p);
            }
        }
    }

    let stuck_states = can_complete.iter().filter(|&&c| !c).count();
    // BFS discovery order is shortest-path order, so the first stuck
    // index unwinds to a shortest wedging prefix.
    let stuck_schedule = can_complete.iter().position(|&c| !c).map(|mut i| {
        let mut rev = Vec::new();
        while let Some((from, pid, action)) = entered_by[i] {
            rev.push((pid, action));
            i = from;
        }
        rev.reverse();
        rev
    });

    ProgressReport {
        states_explored: states.len(),
        transitions,
        truncated,
        stuck_states,
        stuck_schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::RegId;

    /// A racy "adopt first" protocol: read register 0; if unset, write
    /// `input+1` and re-read; decide `value−1`. Two concurrent writers can
    /// overwrite each other after the first has read back — a genuine
    /// disagreement the explorer must find.
    struct AdoptFirst {
        inputs: Vec<u64>,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum AfState {
        Read1(ProcId),
        MaybeWrite(ProcId),
        ReadBack,
        Decide(u64),
        Done,
    }

    impl Automaton for AdoptFirst {
        type State = AfState;
        fn init(&self, pid: ProcId) -> AfState {
            AfState::Read1(pid)
        }
        fn next_action(&self, s: &AfState) -> Action {
            match s {
                AfState::Read1(_) => Action::Read(RegId(0)),
                AfState::MaybeWrite(p) => Action::Write(RegId(0), self.inputs[p.0] + 1),
                AfState::ReadBack => Action::Read(RegId(0)),
                AfState::Decide(_) => Action::Delay(tfr_registers::Ticks(1)),
                AfState::Done => Action::Halt,
            }
        }
        fn apply(&self, s: &mut AfState, observed: Option<u64>, obs: &mut Vec<Obs>) {
            *s = match s {
                AfState::Read1(p) => {
                    if observed == Some(0) {
                        AfState::MaybeWrite(*p)
                    } else {
                        AfState::Decide(observed.unwrap() - 1)
                    }
                }
                AfState::MaybeWrite(_) => AfState::ReadBack,
                AfState::ReadBack => AfState::Decide(observed.unwrap() - 1),
                AfState::Decide(v) => {
                    obs.push(Obs::Decided(*v));
                    AfState::Done
                }
                AfState::Done => unreachable!(),
            };
        }
    }

    #[test]
    fn racy_adopt_first_disagreement_found() {
        let report = Explorer::new(AdoptFirst { inputs: vec![3, 7] }, 2).check(&SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        });
        let cex = report
            .violation
            .expect("the write race is a real disagreement");
        assert!(matches!(cex.violation, Violation::Disagreement { .. }));
        assert!(!cex.schedule.is_empty());
        assert!(!cex.to_string().is_empty());
    }

    /// Both processes decide the constant 9 — safe, and exhaustible.
    struct Const9;
    impl Automaton for Const9 {
        type State = u8;
        fn init(&self, _pid: ProcId) -> u8 {
            0
        }
        fn next_action(&self, s: &u8) -> Action {
            match s {
                0 => Action::Write(RegId(0), 9),
                1 => Action::Read(RegId(0)),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut u8, observed: Option<u64>, obs: &mut Vec<Obs>) {
            if *s == 1 {
                obs.push(Obs::Decided(observed.unwrap()));
            }
            *s += 1;
        }
    }

    #[test]
    fn safe_automaton_proven_safe() {
        let report = Explorer::new(Const9, 3).check(&SafetySpec::consensus(vec![9]));
        assert!(report.proven_safe());
        assert!(report.states_explored > 1);
    }

    #[test]
    fn completing_automaton_is_proven_deadlock_free() {
        let report = check_eventual_completion(&Const9, 2, 100_000);
        assert!(report.proven_deadlock_free());
        assert_eq!(report.stuck_states, 0);
        assert!(report.stuck_schedule.is_none());
    }

    #[test]
    fn validity_violation_detected() {
        let report = Explorer::new(Const9, 2).check(&SafetySpec::consensus(vec![1, 2]));
        let cex = report.violation.expect("9 is not an admissible input");
        assert!(matches!(
            cex.violation,
            Violation::InvalidDecision { value: 9, .. }
        ));
    }

    /// Both processes walk straight into the critical section — mutual
    /// exclusion obviously violated.
    struct NoLock;
    impl Automaton for NoLock {
        type State = u8;
        fn init(&self, _pid: ProcId) -> u8 {
            0
        }
        fn next_action(&self, s: &u8) -> Action {
            match s {
                0 => Action::Write(RegId(0), 1),
                1 => Action::Write(RegId(0), 0),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut u8, _observed: Option<u64>, obs: &mut Vec<Obs>) {
            match *s {
                0 => obs.push(Obs::EnterCritical),
                1 => obs.push(Obs::ExitCritical),
                _ => {}
            }
            *s += 1;
        }
    }

    #[test]
    fn mutual_exclusion_violation_detected() {
        let report = Explorer::new(NoLock, 2).check(&SafetySpec::mutex());
        let cex = report.violation.expect("no lock, overlap must exist");
        assert!(matches!(cex.violation, Violation::MutualExclusion { .. }));
    }

    #[test]
    fn single_process_never_violates_mutex() {
        let report = Explorer::new(NoLock, 1).check(&SafetySpec::mutex());
        assert!(report.proven_safe());
    }

    #[test]
    fn depth_bound_marks_truncated() {
        let report = Explorer::new(Const9, 2)
            .max_depth(1)
            .check(&SafetySpec::mutex());
        assert!(report.depth_truncated);
        assert!(!report.states_truncated);
        assert!(report.truncated());
        assert!(!report.exhausted());
        assert!(report.violation.is_none());
        assert!(!report.proven_safe());
    }

    #[test]
    fn state_budget_marks_truncated() {
        let report = Explorer::new(Const9, 2)
            .max_states(2)
            .check(&SafetySpec::mutex());
        assert!(report.states_truncated);
        assert!(!report.depth_truncated);
        assert!(report.truncated());
        assert!(report.violation.is_none());
        assert!(!report.proven_safe(), "a state-budget cut is not a proof");
    }

    #[test]
    fn unbounded_run_is_exhausted() {
        let report = Explorer::new(Const9, 2).check(&SafetySpec::mutex());
        assert!(report.exhausted());
        assert!(!report.depth_truncated && !report.states_truncated);
        assert!(report.proven_safe());
    }

    #[test]
    fn counterexample_replays_to_the_identical_violation_twice() {
        let spec = SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        };
        // Exploration itself is deterministic: two runs, one counterexample.
        let c1 = Explorer::new(AdoptFirst { inputs: vec![3, 7] }, 2)
            .check(&spec)
            .violation
            .unwrap();
        let c2 = Explorer::new(AdoptFirst { inputs: vec![3, 7] }, 2)
            .check(&spec)
            .violation
            .unwrap();
        assert_eq!(c1.violation, c2.violation);
        assert_eq!(c1.schedule, c2.schedule);

        // And replay is deterministic: the same schedule reproduces the
        // same violation, twice.
        let automaton = AdoptFirst { inputs: vec![3, 7] };
        let first = replay_schedule(&automaton, 2, &spec, &c1.schedule);
        let second = replay_schedule(&automaton, 2, &spec, &c1.schedule);
        assert_eq!(first, Some(c1.violation.clone()));
        assert_eq!(first, second);
    }

    #[test]
    fn replay_of_a_clean_prefix_finds_nothing() {
        let spec = SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        };
        let cex = Explorer::new(AdoptFirst { inputs: vec![3, 7] }, 2)
            .check(&spec)
            .violation
            .unwrap();
        let automaton = AdoptFirst { inputs: vec![3, 7] };
        let prefix = &cex.schedule[..cex.schedule.len() - 1];
        assert_eq!(
            replay_schedule(&automaton, 2, &spec, prefix),
            None,
            "the violation happens on the last step, not before"
        );
    }

    #[test]
    fn counterexample_schedule_replays_to_violation() {
        // Replay the schedule by hand and confirm the final decisions
        // disagree — validates that reported schedules are real.
        let automaton = AdoptFirst { inputs: vec![3, 7] };
        let report = Explorer::new(AdoptFirst { inputs: vec![3, 7] }, 2).check(&SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        });
        let cex = report.violation.unwrap();

        let mut bank = MapBank::new();
        let mut procs = [automaton.init(ProcId(0)), automaton.init(ProcId(1))];
        let mut decided = [None, None];
        for &(pid, action) in &cex.schedule {
            let observed = match action {
                Action::Read(r) => Some(bank.read(r)),
                Action::Write(r, v) => {
                    bank.write(r, v);
                    None
                }
                _ => None,
            };
            let mut obs = Vec::new();
            automaton.apply(&mut procs[pid.0], observed, &mut obs);
            for o in obs {
                if let Obs::Decided(v) = o {
                    decided[pid.0] = Some(v);
                }
            }
        }
        let (a, b) = (decided[0], decided[1]);
        assert!(
            a.is_some() && b.is_some() && a != b,
            "replayed schedule must disagree: {a:?} {b:?}"
        );
    }
}
