//! Dynamic partial-order reduction (persistent sets + sleep sets) with
//! optional process-symmetry canonicalization.
//!
//! The naive [`crate::Explorer`] expands every enabled process at every
//! state; for `n` processes taking `k` steps that is `(nk)!/(k!)^n`
//! interleavings folded only by exact-state dedup. But most of those
//! interleavings differ merely in the order of *independent* steps
//! (see [`crate::independence`]) and reach identical configurations
//! through identical intermediate behaviours. This explorer instead:
//!
//! * starts each state with a **single** candidate process and lazily
//!   adds *backtrack points*: whenever an executed transition conflicts
//!   with an earlier transition on the DFS path, the later process is
//!   added to the earlier state's candidate set (Flanagan–Godefroid
//!   DPOR, with the conservative "add at every racing frame" variant —
//!   a superset of the classic insertions, so the explored set at each
//!   state is still persistent);
//! * keeps **sleep sets**: a transition fully explored from a state is
//!   put to sleep for the state's later children and stays asleep along
//!   edges independent of it, so equivalent orderings are not re-walked;
//! * dedups states — optionally up to process symmetry — while staying
//!   sound in the presence of dedup: every stored state carries a
//!   *subtree access summary* (an over-approximation of all register
//!   accesses possible in its future). When a state is cut because an
//!   equivalent one was already explored, the summary's accesses are
//!   replayed through race detection against the current path, so no
//!   backtrack point is lost to the cut (the classic unsoundness of
//!   naive stateful DPOR);
//! * handles cycles with the standard proviso: if exploration closes a
//!   cycle (reaches a state whose exploration is still on the DFS
//!   stack, possibly via a symmetry), the ancestor is re-expanded fully
//!   and the frames along the loop body do not publish summaries (their
//!   futures include the ancestor's other branches, which their local
//!   subtree does not cover).
//!
//! A subtree summary is sound because the explored transitions at every
//! finalized state form a persistent set: every trace from the state is
//! Mazurkiewicz-equivalent to an explored one, and equivalent traces
//! perform exactly the same multiset of accesses — so the union of the
//! explored children's summaries plus the state's own enabled accesses
//! over-approximates everything any future can do.
//!
//! Verdict equivalence with the naive explorer is pinned down by the
//! differential tests over the random [`crate::corpus`] automata.

use crate::independence::{conflicts, Access, Kind};
use crate::symmetry::{Canon, IdCanon, SymCanon};
use crate::{Counterexample, Global, Report, SafetySpec};
use std::collections::{BTreeSet, HashMap};
use tfr_registers::spec::{Action, Automaton, Obs, Perm, Symmetric};
use tfr_registers::ProcId;

/// An over-approximation of the register accesses a subtree can perform:
/// `(process, footprint)` pairs.
type AccessSet = BTreeSet<(usize, Access)>;

/// Whether an observation batch contains a critical-section event (the
/// part of a footprint the independence relation orders globally).
fn has_cs(obs: &[Obs]) -> bool {
    obs.iter()
        .any(|o| matches!(o, Obs::EnterCritical | Obs::ExitCritical))
}

struct Frame<S> {
    state: Global<S>,
    /// Canonical form of `state` (equal to `state` without symmetry).
    canon: Global<S>,
    /// `permute_global(state, sigma) == canon`.
    sigma: Perm,
    /// Index of this frame's entry in `table[canon]`.
    entry_idx: usize,
    depth: usize,
    /// Processes to explore from here (grows as races are discovered).
    backtrack: BTreeSet<usize>,
    /// Processes already explored from here.
    done: BTreeSet<usize>,
    /// Processes whose transition here is covered by an earlier sibling
    /// exploration — skipped.
    sleep: BTreeSet<usize>,
    /// Access summary of this frame's future (own coordinates).
    sub: AccessSet,
    /// Whether any branch below was cut by a bound.
    sub_truncated: bool,
    /// Set when this frame sits on a detected cycle's loop body: its
    /// local summary does not cover its futures, so it must not be
    /// published to the table.
    no_store: bool,
    /// The edge into the currently-pushed child, if any.
    taken: Option<(usize, Action, Access)>,
}

struct TableEntry {
    depth: usize,
    /// Sleep set the exploration ran with, canonical coordinates. A new
    /// visit may reuse the entry only if it would sleep *at least* as
    /// much (explore no more than was already covered).
    sleep: BTreeSet<usize>,
    status: Status,
}

enum Status {
    /// Still on the DFS stack (reaching it again closes a cycle).
    InProgress { frame: usize },
    /// Fully explored; `sub` is the published access summary in
    /// canonical coordinates.
    Done { sub: AccessSet, truncated: bool },
}

/// Bounded explorer using dynamic partial-order reduction, optionally
/// combined with symmetry reduction ([`DporExplorer::check_symmetric`]).
///
/// Same interface and verdict semantics as [`crate::Explorer`]; explores
/// a sufficient subset of interleavings instead of all of them.
#[derive(Debug)]
pub struct DporExplorer<A> {
    automaton: A,
    n: usize,
    max_depth: usize,
    max_states: usize,
}

impl<A: Automaton> DporExplorer<A> {
    /// An explorer over `n` processes with default bounds
    /// (depth 10 000, 5 000 000 states).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(automaton: A, n: usize) -> DporExplorer<A> {
        assert!(n > 0, "at least one process is required");
        DporExplorer {
            automaton,
            n,
            max_depth: 10_000,
            max_states: 5_000_000,
        }
    }

    /// Overrides the depth bound (schedule length).
    pub fn max_depth(mut self, d: usize) -> DporExplorer<A> {
        self.max_depth = d;
        self
    }

    /// Overrides the distinct-state bound.
    pub fn max_states(mut self, s: usize) -> DporExplorer<A> {
        self.max_states = s;
        self
    }

    /// Explores a persistent-set-reduced subset of interleavings,
    /// checking `spec` after each transition. Verdicts agree with
    /// [`crate::Explorer::check`] whenever both runs are exhaustive.
    pub fn check(&self, spec: &SafetySpec) -> Report {
        self.run(spec, &IdCanon)
    }

    fn enabled(&self, state: &Global<A::State>) -> impl Iterator<Item = usize> + '_ {
        let flags: Vec<bool> = state
            .procs
            .iter()
            .map(|s| !matches!(self.automaton.next_action(s), Action::Halt))
            .collect();
        (0..self.n).filter(move |&q| flags[q])
    }

    /// The footprint of `q`'s next transition at `state`. Whether the
    /// step emits a critical-section event is only known by running it,
    /// so the step is applied speculatively to a clone (with an empty
    /// spec — the probe never reports violations).
    ///
    /// `q` must be enabled (non-halted) at `state`.
    fn footprint(&self, state: &Global<A::State>, q: usize) -> Access {
        let kind = Kind::of(self.automaton.next_action(&state.procs[q]));
        let mut probe = state.clone();
        let mut obs: Vec<Obs> = Vec::new();
        probe.step(&self.automaton, q, &SafetySpec::default(), &mut obs);
        Access {
            kind,
            cs: has_cs(&obs),
        }
    }

    fn immediate_accesses(&self, state: &Global<A::State>) -> AccessSet {
        let mut set = AccessSet::new();
        for q in self.enabled(state) {
            set.insert((q, self.footprint(state, q)));
        }
        set
    }

    fn new_frame(
        &self,
        state: Global<A::State>,
        canon_state: Global<A::State>,
        sigma: Perm,
        depth: usize,
        sleep: BTreeSet<usize>,
        entry_idx: usize,
    ) -> Frame<A::State> {
        let backtrack: BTreeSet<usize> = self
            .enabled(&state)
            .find(|q| !sleep.contains(q))
            .into_iter()
            .collect();
        let sub = self.immediate_accesses(&state);
        Frame {
            state,
            canon: canon_state,
            sigma,
            entry_idx,
            depth,
            backtrack,
            done: BTreeSet::new(),
            sleep,
            sub,
            sub_truncated: false,
            no_store: false,
            taken: None,
        }
    }

    fn run<C: Canon<A>>(&self, spec: &SafetySpec, canon: &C) -> Report {
        let mut table: HashMap<Global<A::State>, Vec<TableEntry>> = HashMap::new();
        let mut transitions = 0usize;
        let mut depth_truncated = false;
        let mut states_truncated = false;
        let mut obs_buf: Vec<Obs> = Vec::new();

        let init = Global::initial(&self.automaton, self.n);
        let (init_canon, init_sigma) = canon.canonicalize(&self.automaton, &init);
        let root = self.new_frame(init, init_canon, init_sigma, 0, BTreeSet::new(), 0);
        table.insert(
            root.canon.clone(),
            vec![TableEntry {
                depth: 0,
                sleep: BTreeSet::new(),
                status: Status::InProgress { frame: 0 },
            }],
        );
        let mut stack: Vec<Frame<A::State>> = vec![root];

        while let Some(top) = stack.len().checked_sub(1) {
            // Pick the next candidate at the top frame: in the backtrack
            // set, not yet explored, not asleep. BTreeSet iteration makes
            // the choice (and thus the whole exploration) deterministic.
            let pick = {
                let f = &stack[top];
                f.backtrack
                    .iter()
                    .copied()
                    .find(|q| !f.done.contains(q) && !f.sleep.contains(q))
            };
            let Some(p) = pick else {
                // Frame finished: publish (or retract) its table entry
                // and fold its summary into the parent.
                let f = stack.pop().expect("non-empty stack");
                let entries = table.get_mut(&f.canon).expect("entry exists");
                if f.no_store {
                    entries.swap_remove(f.entry_idx);
                } else {
                    let sub_canon: AccessSet = f
                        .sub
                        .iter()
                        .map(|&(q, a)| canon.permute_access(&self.automaton, q, a, &f.sigma))
                        .collect();
                    entries[f.entry_idx].status = Status::Done {
                        sub: sub_canon,
                        truncated: f.sub_truncated,
                    };
                }
                if let Some(parent) = stack.last_mut() {
                    parent.sub.extend(f.sub.iter().copied());
                    parent.sub_truncated |= f.sub_truncated;
                    parent.taken = None;
                }
                continue;
            };

            stack[top].done.insert(p);
            let action = self.automaton.next_action(&stack[top].state.procs[p]);
            if matches!(action, Action::Halt) {
                continue;
            }

            if stack[top].depth >= self.max_depth {
                depth_truncated = true;
                stack[top].sub_truncated = true;
                continue;
            }

            let mut next = stack[top].state.clone();
            let (_, violation) = next.step(&self.automaton, p, spec, &mut obs_buf);
            transitions += 1;
            // The full footprint is only known now: whether the step
            // emitted a critical-section event is part of it.
            let access = Access {
                kind: Kind::of(action),
                cs: has_cs(&obs_buf),
            };

            // Race detection for the executed transition: every earlier
            // edge on the path that conflicts with it gets `p` as a
            // backtrack point — the other order must be tried there.
            for frame in stack.iter_mut().take(top) {
                if let Some((q, _, acc)) = frame.taken {
                    if conflicts(q, acc, p, access) {
                        frame.backtrack.insert(p);
                    }
                }
            }

            if let Some(v) = violation {
                let mut schedule: Vec<(ProcId, Action)> = stack
                    .iter()
                    .filter_map(|f| f.taken.map(|(q, a, _)| (ProcId(q), a)))
                    .collect();
                schedule.push((ProcId(p), action));
                return Report {
                    states_explored: table.len(),
                    transitions,
                    violation: Some(Counterexample {
                        violation: v,
                        schedule,
                    }),
                    depth_truncated,
                    states_truncated,
                };
            }

            // A transition that does not change the configuration at all
            // (a spin re-read) only generates the same state's other
            // interleavings: skip it. Its access is already in the
            // frame's summary and was race-checked above.
            if next == stack[top].state {
                continue;
            }

            let depth = stack[top].depth + 1;

            // Sleep set inherited along the edge: entries independent of
            // the executed transition stay asleep; the executed process
            // itself goes to sleep for later siblings.
            let child_sleep: BTreeSet<usize> = stack[top]
                .sleep
                .iter()
                .copied()
                .filter(|&q| {
                    let qa = self.footprint(&stack[top].state, q);
                    !conflicts(q, qa, p, access)
                })
                .collect();
            stack[top].sleep.insert(p);

            let (canon_state, sigma) = canon.canonicalize(&self.automaton, &next);
            let sleep_canon: BTreeSet<usize> = child_sleep
                .iter()
                .map(|&q| {
                    canon
                        .permute_access(&self.automaton, q, Access::LOCAL, &sigma)
                        .0
                })
                .collect();

            // Can this state be cut against an existing table entry?
            enum Outcome {
                Explore,
                Cut {
                    absorbed: AccessSet,
                    truncated: bool,
                },
                Cycle {
                    ancestor: usize,
                },
            }
            let outcome = match table.get(&canon_state) {
                None => Outcome::Explore,
                Some(entries) => {
                    // Prefer a reusable finished summary; fall back to the
                    // cycle proviso if the only match is still on the
                    // stack; explore otherwise.
                    let mut out = Outcome::Explore;
                    for e in entries {
                        match &e.status {
                            Status::InProgress { frame } => {
                                if matches!(out, Outcome::Explore) {
                                    out = Outcome::Cycle { ancestor: *frame };
                                }
                            }
                            Status::Done { sub, truncated } => {
                                // Reusable only if the stored run had at
                                // least as much depth budget left and
                                // explored at least as much (slept no
                                // more than we would).
                                if e.depth <= depth && e.sleep.is_subset(&sleep_canon) {
                                    let inv = sigma.inverse();
                                    let absorbed: AccessSet = sub
                                        .iter()
                                        .map(|&(q, a)| {
                                            canon.permute_access(&self.automaton, q, a, &inv)
                                        })
                                        .collect();
                                    out = Outcome::Cut {
                                        absorbed,
                                        truncated: *truncated,
                                    };
                                    break;
                                }
                            }
                        }
                    }
                    out
                }
            };

            match outcome {
                Outcome::Cut {
                    absorbed,
                    truncated,
                } => {
                    // The cut subtree's future accesses still race with
                    // the *current* path — replay them through backtrack
                    // insertion so the dedup loses no reorderings.
                    for &(q, acc) in &absorbed {
                        for frame in stack.iter_mut().take(top) {
                            if let Some((w, _, wacc)) = frame.taken {
                                if conflicts(w, wacc, q, acc) {
                                    frame.backtrack.insert(q);
                                }
                            }
                        }
                        if conflicts(p, access, q, acc) {
                            stack[top].backtrack.insert(q);
                        }
                    }
                    stack[top].sub.extend(absorbed);
                    stack[top].sub_truncated |= truncated;
                }
                Outcome::Cycle { ancestor } => {
                    // Proviso: somewhere on every cycle one state must be
                    // fully expanded, or transitions could be ignored
                    // forever (the "ignoring problem"). Re-expand the
                    // ancestor completely and drop the loop body's
                    // summaries — their futures include the ancestor's
                    // other branches.
                    let all: BTreeSet<usize> = self.enabled(&stack[ancestor].state).collect();
                    stack[ancestor].backtrack = all;
                    stack[ancestor].sleep.clear();
                    // The ancestor now explores with an empty sleep set;
                    // advertise that, so its summary is maximally
                    // reusable.
                    let (c, ei) = (stack[ancestor].canon.clone(), stack[ancestor].entry_idx);
                    table.get_mut(&c).expect("ancestor entry")[ei].sleep.clear();
                    for f in stack.iter_mut().skip(ancestor + 1) {
                        f.no_store = true;
                    }
                }
                Outcome::Explore => {
                    if !table.contains_key(&canon_state) && table.len() >= self.max_states {
                        states_truncated = true;
                        stack[top].sub_truncated = true;
                        continue;
                    }
                    stack[top].taken = Some((p, action, access));
                    let entries = table.entry(canon_state.clone()).or_default();
                    let entry_idx = entries.len();
                    entries.push(TableEntry {
                        depth,
                        sleep: sleep_canon,
                        status: Status::InProgress { frame: stack.len() },
                    });
                    let frame =
                        self.new_frame(next, canon_state, sigma, depth, child_sleep, entry_idx);
                    stack.push(frame);
                }
            }
        }

        Report {
            states_explored: table.len(),
            transitions,
            violation: None,
            depth_truncated,
            states_truncated,
        }
    }
}

impl<A: Symmetric> DporExplorer<A> {
    /// [`DporExplorer::check`] plus process-symmetry canonicalization:
    /// states differing only by a process relabelling that fixes the
    /// initial configuration dedupe to one canonical representative, and
    /// cut summaries are mapped through the matching permutation.
    pub fn check_symmetric(&self, spec: &SafetySpec) -> Report {
        self.run(spec, &SymCanon::stabilizer(&self.automaton, self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::RegId;

    /// Two writers to distinct registers then one read each — fully
    /// independent, so DPOR should explore a single interleaving class.
    struct Disjoint;
    impl Automaton for Disjoint {
        type State = (ProcId, u8);
        fn init(&self, pid: ProcId) -> Self::State {
            (pid, 0)
        }
        fn next_action(&self, s: &Self::State) -> Action {
            match s.1 {
                0 => Action::Write(RegId(s.0 .0 as u64), 1),
                1 => Action::Read(RegId(s.0 .0 as u64)),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut Self::State, _v: Option<u64>, _obs: &mut Vec<Obs>) {
            s.1 += 1;
        }
    }

    #[test]
    fn independent_processes_explore_one_interleaving() {
        let spec = SafetySpec::default();
        let naive = crate::Explorer::new(Disjoint, 3).check(&spec);
        let dpor = DporExplorer::new(Disjoint, 3).check(&spec);
        assert!(naive.proven_safe() && dpor.proven_safe());
        // 3 processes × 2 steps fully independent: one representative
        // order suffices — 7 states on a single path (plus nothing else).
        assert_eq!(dpor.transitions, 6, "one interleaving of 6 steps");
        assert!(
            dpor.states_explored < naive.states_explored,
            "dpor {} vs naive {}",
            dpor.states_explored,
            naive.states_explored
        );
    }

    /// Ping-pong over one register — a genuinely cyclic state space.
    /// Process i writes its own id when it reads the other's; runs are
    /// infinite but the global state space is 4 configurations.
    struct PingPong;
    impl Automaton for PingPong {
        type State = (ProcId, bool);
        fn init(&self, pid: ProcId) -> Self::State {
            (pid, false)
        }
        fn next_action(&self, s: &Self::State) -> Action {
            if s.1 {
                Action::Write(RegId(0), s.0 .0 as u64 + 1)
            } else {
                Action::Read(RegId(0))
            }
        }
        fn apply(&self, s: &mut Self::State, v: Option<u64>, _obs: &mut Vec<Obs>) {
            match v {
                // After a read: write back only if the register holds the
                // other process (or nobody).
                Some(val) => s.1 = val != s.0 .0 as u64 + 1,
                None => s.1 = false,
            }
        }
    }

    #[test]
    fn cyclic_state_space_terminates_and_matches_naive() {
        let spec = SafetySpec::default();
        let naive = crate::Explorer::new(PingPong, 2).check(&spec);
        let dpor = DporExplorer::new(PingPong, 2).check(&spec);
        assert!(naive.proven_safe(), "no safety predicate, trivially safe");
        assert!(dpor.proven_safe(), "cycle proviso must not lose exhaustion");
    }
}
