//! The independence relation the partial-order reduction is keyed on.
//!
//! Two transitions of *different* processes are **dependent** (conflict)
//! when they access the same register and at least one writes it — or
//! when both emit critical-section events. Everything else commutes:
//!
//! * reads of the same or different registers commute — a read does not
//!   change the bank;
//! * accesses to distinct registers commute — each observes and updates
//!   disjoint bank entries;
//! * `Delay`/local steps commute with everything — in the asynchronous
//!   closure a delay has no effect on shared state at all;
//! * process-local state and the safety monitor's per-process slots are
//!   disjoint between processes, so they never induce extra conflicts.
//!
//! This is the exact-commutation notion DPOR requires: for independent
//! transitions `t`, `u` enabled in the same configuration, executing
//! `t;u` and `u;t` yields the *identical* global configuration (bank,
//! local states, monitor), and neither order enables or disables the
//! other (a non-halted process stays non-halted; its next action is a
//! function of its own local state only).
//!
//! # Why critical-section events conflict
//!
//! Commuting two steps preserves the *final* configuration but swaps
//! the *intermediate* one — so a safety property must be closed under
//! such swaps (trace-closed) for the reduction to preserve its verdict.
//! Decisions are: `decided` slots are write-once, so a disagreement or
//! invalid decision is visible in every ordering once both steps ran.
//! Critical-section occupancy is *not*: `p exits; q enters` and
//! `q enters; p exits` reach the same final state, but only the second
//! passes through the two-in-CS configuration. Ordering all CS events
//! against each other fixes the global Enter/Exit sequence within an
//! equivalence class, making mutual exclusion trace-closed too. (This
//! is the seed-1 corpus program in miniature: all reads, no writes —
//! the overlap exists in some orderings only.)

use tfr_registers::spec::Action;
use tfr_registers::RegId;

/// The shared-memory part of a transition's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// No shared access (`Delay` — local computation only).
    Local,
    /// Atomic read of a register.
    Read(RegId),
    /// Atomic write of a register (the written value is irrelevant to
    /// dependence: we conservatively treat same-value writes as
    /// conflicting too).
    Write(RegId),
}

impl Kind {
    /// The footprint kind of an action.
    ///
    /// # Panics
    ///
    /// Panics on `Halt`: a halted process has no transition.
    pub fn of(action: Action) -> Kind {
        match action {
            Action::Read(r) => Kind::Read(r),
            Action::Write(r, _) => Kind::Write(r),
            Action::Delay(_) => Kind::Local,
            Action::Halt => panic!("a halted process has no access footprint"),
        }
    }

    /// Non-panicking variant of [`Kind::of`]: `Halt` has no footprint.
    pub fn try_of(action: Action) -> Option<Kind> {
        match action {
            Action::Halt => None,
            other => Some(Kind::of(other)),
        }
    }
}

/// The full footprint of one transition, as seen by the independence
/// relation: its register access plus whether it emits a
/// critical-section event (`EnterCritical`/`ExitCritical`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Access {
    /// The register access performed.
    pub kind: Kind,
    /// Whether applying the step emits `EnterCritical`/`ExitCritical`.
    pub cs: bool,
}

impl Access {
    /// A purely local step with no monitored events.
    pub const LOCAL: Access = Access {
        kind: Kind::Local,
        cs: false,
    };

    /// The register touched, if any.
    pub fn reg(&self) -> Option<RegId> {
        match self.kind {
            Kind::Local => None,
            Kind::Read(r) | Kind::Write(r) => Some(r),
        }
    }

    /// Whether this footprint writes shared memory.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, Kind::Write(_))
    }
}

/// Whether two transitions conflict (are *dependent*): different
/// processes, and either a register conflict (same register, at least
/// one write) or both emitting critical-section events.
#[inline]
pub fn conflicts(p: usize, a: Access, q: usize, b: Access) -> bool {
    if p == q {
        // Same process: its own steps are totally ordered anyway; the
        // reduction never reorders them.
        return false;
    }
    if a.cs && b.cs {
        return true;
    }
    match (a.reg(), b.reg()) {
        (Some(r), Some(s)) => r == s && (a.is_write() || b.is_write()),
        _ => false,
    }
}

/// Whether two footprint *sets*, attributed to different processes,
/// contain any dependent pair — the check the sharded simulator uses to
/// certify that two process groups' sampled access footprints commute.
/// Returns the first conflicting pair, if any.
pub fn footprints_conflict(a: &[Access], b: &[Access]) -> Option<(Access, Access)> {
    for &x in a {
        for &y in b {
            if conflicts(0, x, 1, y) {
                return Some((x, y));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::Ticks;

    fn acc(kind: Kind) -> Access {
        Access { kind, cs: false }
    }

    fn cs(kind: Kind) -> Access {
        Access { kind, cs: true }
    }

    #[test]
    fn conflict_table() {
        let r = RegId(3);
        let s = RegId(4);
        // Same register, at least one write, different processes.
        assert!(conflicts(0, acc(Kind::Read(r)), 1, acc(Kind::Write(r))));
        assert!(conflicts(0, acc(Kind::Write(r)), 1, acc(Kind::Read(r))));
        assert!(conflicts(0, acc(Kind::Write(r)), 1, acc(Kind::Write(r))));
        // Reads commute.
        assert!(!conflicts(0, acc(Kind::Read(r)), 1, acc(Kind::Read(r))));
        // Distinct registers commute.
        assert!(!conflicts(0, acc(Kind::Write(r)), 1, acc(Kind::Write(s))));
        // Delays commute with everything.
        assert!(!conflicts(0, Access::LOCAL, 1, acc(Kind::Write(r))));
        // Same process never self-conflicts.
        assert!(!conflicts(2, acc(Kind::Write(r)), 2, acc(Kind::Write(r))));
    }

    #[test]
    fn cs_events_are_mutually_dependent() {
        let r = RegId(0);
        let s = RegId(1);
        // Two CS events conflict even on disjoint registers or none.
        assert!(conflicts(0, cs(Kind::Read(r)), 1, cs(Kind::Read(s))));
        assert!(conflicts(0, cs(Kind::Local), 1, cs(Kind::Local)));
        // A CS event and a plain access stay independent.
        assert!(!conflicts(0, cs(Kind::Local), 1, acc(Kind::Write(r))));
        // Same process: still no self-conflict.
        assert!(!conflicts(1, cs(Kind::Local), 1, cs(Kind::Local)));
    }

    #[test]
    fn footprint_sets_report_first_conflict() {
        let a = [acc(Kind::Read(RegId(1))), acc(Kind::Write(RegId(2)))];
        let b = [acc(Kind::Read(RegId(2))), acc(Kind::Write(RegId(9)))];
        let c = [acc(Kind::Read(RegId(2))), acc(Kind::Write(RegId(3)))];
        assert_eq!(
            footprints_conflict(&a, &b),
            Some((acc(Kind::Write(RegId(2))), acc(Kind::Read(RegId(2)))))
        );
        assert_eq!(footprints_conflict(&b, &c), None, "shared reads commute");
        assert_eq!(Kind::try_of(Action::Halt), None);
        assert_eq!(
            Kind::try_of(Action::Read(RegId(5))),
            Some(Kind::Read(RegId(5)))
        );
    }

    #[test]
    fn access_of_actions() {
        assert_eq!(Kind::of(Action::Read(RegId(1))), Kind::Read(RegId(1)));
        assert_eq!(Kind::of(Action::Write(RegId(2), 9)), Kind::Write(RegId(2)));
        assert_eq!(Kind::of(Action::Delay(Ticks(5))), Kind::Local);
        assert!(acc(Kind::Write(RegId(0))).is_write());
        assert!(!acc(Kind::Read(RegId(0))).is_write());
        assert_eq!(Access::LOCAL.reg(), None);
    }
}
