//! SplitMix64-seeded corpus of random small automata for differential
//! testing of the explorers.
//!
//! Every corpus automaton runs the *same* straight-line program on all
//! processes (which keeps it honestly [`Symmetric`]): a short sequence
//! of register reads (with a data-dependent forward branch), writes and
//! delays, with consensus decisions or critical-section markers
//! attached to chosen program points. Program counters only move
//! forward, so every corpus automaton is acyclic and all explorers
//! exhaust it — the precondition for comparing verdicts.
//!
//! Two flavors exercise both halves of the symmetry machinery:
//!
//! * **const** programs write small constants; process ids appear in no
//!   register, so every permutation is a symmetry and value relabelling
//!   is the identity;
//! * **token** programs write the writer's `ProcId::token()`; the
//!   symmetry must relabel register *values* too (like Fischer's
//!   `x := token(pid)`), and decisions may test "is the last read mine",
//!   which races into genuine disagreements.

use crate::exec::SplitMix64;
use crate::SafetySpec;
use tfr_registers::spec::{Action, Automaton, Obs, Perm, Symmetric};
use tfr_registers::{ProcId, RegId, Ticks};

/// What a write stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteVal {
    /// A fixed small constant (1 or 2).
    Const(u64),
    /// The writer's token (`pid + 1`).
    MyToken,
}

/// What a decision reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecideVal {
    /// A fixed value.
    Const(u64),
    /// Parity of the last value read (const flavor only — parity of a
    /// token is not permutation-invariant).
    LastParity,
    /// Whether the last value read is the decider's own token (token
    /// flavor only; invariant under simultaneous pid/value relabelling).
    MineFlag,
}

/// One program step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Read `reg`; fall through on zero, jump `skip` ops forward on
    /// non-zero.
    Read { reg: RegId, skip: usize },
    /// Write `val` to `reg`.
    Write { reg: RegId, val: WriteVal },
    /// A `delay(1)` — no shared access.
    Delay,
}

/// An event attached to the completion of a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emission {
    Decide(DecideVal),
    Enter,
    Exit,
}

/// A randomly generated corpus automaton: one shared program, run by
/// every process.
#[derive(Debug, Clone)]
pub struct CorpusAutomaton {
    ops: Vec<Op>,
    emissions: Vec<(usize, Emission)>,
    tokens: bool,
    n: usize,
}

/// Per-process state: owner, program counter, last value read.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CorpusState {
    pid: ProcId,
    pc: usize,
    last: u64,
}

impl CorpusAutomaton {
    fn emissions_at(&self, pc: usize) -> impl Iterator<Item = Emission> + '_ {
        self.emissions
            .iter()
            .filter(move |(at, _)| *at == pc)
            .map(|&(_, e)| e)
    }

    fn permute_token_value(&self, value: u64, perm: &Perm) -> u64 {
        match ProcId::from_token(value) {
            Some(p) if p.0 < self.n => perm.apply_pid(p).token(),
            _ => value,
        }
    }
}

impl Automaton for CorpusAutomaton {
    type State = CorpusState;

    fn init(&self, pid: ProcId) -> CorpusState {
        CorpusState {
            pid,
            pc: 0,
            last: 0,
        }
    }

    fn next_action(&self, s: &CorpusState) -> Action {
        match self.ops.get(s.pc) {
            None => Action::Halt,
            Some(Op::Read { reg, .. }) => Action::Read(*reg),
            Some(Op::Write { reg, val }) => {
                let v = match val {
                    WriteVal::Const(c) => *c,
                    WriteVal::MyToken => s.pid.token(),
                };
                Action::Write(*reg, v)
            }
            Some(Op::Delay) => Action::Delay(Ticks(1)),
        }
    }

    fn apply(&self, s: &mut CorpusState, observed: Option<u64>, obs: &mut Vec<Obs>) {
        let op = self.ops[s.pc];
        let completed = s.pc;
        match op {
            Op::Read { skip, .. } => {
                let v = observed.expect("read observes a value");
                s.last = v;
                s.pc += if v != 0 { skip } else { 1 };
            }
            Op::Write { .. } | Op::Delay => s.pc += 1,
        }
        for e in self.emissions_at(completed) {
            match e {
                Emission::Decide(d) => {
                    let v = match d {
                        DecideVal::Const(c) => c,
                        DecideVal::LastParity => s.last & 1,
                        DecideVal::MineFlag => u64::from(s.last == s.pid.token()),
                    };
                    obs.push(Obs::Decided(v));
                }
                Emission::Enter => obs.push(Obs::EnterCritical),
                Emission::Exit => obs.push(Obs::ExitCritical),
            }
        }
    }
}

impl Symmetric for CorpusAutomaton {
    fn permute_state(&self, s: &CorpusState, perm: &Perm) -> CorpusState {
        CorpusState {
            pid: perm.apply_pid(s.pid),
            pc: s.pc,
            last: if self.tokens {
                self.permute_token_value(s.last, perm)
            } else {
                s.last
            },
        }
    }

    fn permute_value(&self, _reg: RegId, value: u64, perm: &Perm) -> u64 {
        if self.tokens {
            self.permute_token_value(value, perm)
        } else {
            value
        }
    }
}

/// One differential test case: the automaton, the process count, and the
/// safety spec to check it against.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The generated automaton.
    pub automaton: CorpusAutomaton,
    /// Number of processes to run.
    pub n: usize,
    /// The property matching the attached emissions.
    pub spec: SafetySpec,
    /// The generating seed, for failure reports.
    pub seed: u64,
}

/// Generates the corpus case for `seed`. Deterministic; distinct seeds
/// cover consensus- and mutex-shaped programs in both value flavors.
pub fn generate(seed: u64) -> CorpusCase {
    let mut rng = SplitMix64(seed);
    let n = 2 + rng.below(2) as usize; // 2 or 3 processes
    let tokens = rng.below(2) == 0;
    let mutex_mode = rng.below(2) == 0;
    let len = 3 + rng.below(4) as usize; // 3..=6 ops
    let regs = 1 + rng.below(3); // 1..=3 registers

    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let reg = RegId(rng.below(regs));
        ops.push(match rng.below(5) {
            0 | 1 => Op::Read {
                reg,
                skip: 1 + rng.below(2) as usize,
            },
            2 | 3 => Op::Write {
                reg,
                val: if tokens {
                    WriteVal::MyToken
                } else {
                    WriteVal::Const(1 + rng.below(2))
                },
            },
            _ => Op::Delay,
        });
    }

    let mut emissions = Vec::new();
    let spec = if mutex_mode {
        // Enter somewhere in the first half, exit strictly later: the
        // random "entry protocol" before the enter point is usually racy
        // enough to overlap — which is the point.
        let enter = rng.below(len as u64) as usize;
        let exit = enter + 1 + rng.below((len - enter) as u64) as usize;
        emissions.push((enter, Emission::Enter));
        emissions.push((exit.min(len - 1).max(enter), Emission::Exit));
        SafetySpec::mutex()
    } else {
        let decide = if tokens {
            DecideVal::MineFlag
        } else if rng.below(3) == 0 {
            DecideVal::Const(rng.below(2))
        } else {
            DecideVal::LastParity
        };
        emissions.push((rng.below(len as u64) as usize, Emission::Decide(decide)));
        SafetySpec {
            agreement: true,
            validity: None,
            mutual_exclusion: false,
        }
    };

    CorpusCase {
        automaton: CorpusAutomaton {
            ops,
            emissions,
            tokens,
            n,
        },
        n,
        spec,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::{permute_global, SymCanon};
    use crate::Global;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.automaton.ops, b.automaton.ops);
            assert_eq!(a.automaton.emissions, b.automaton.emissions);
            assert_eq!(a.n, b.n);
        }
    }

    #[test]
    fn programs_are_acyclic() {
        // pc strictly increases on every op, so a run of one process is
        // bounded by the program length.
        for seed in 0..64 {
            let case = generate(seed);
            for op in &case.automaton.ops {
                if let Op::Read { skip, .. } = op {
                    assert!(*skip >= 1);
                }
            }
        }
    }

    #[test]
    fn corpus_automata_are_equivariant() {
        // Brute-check the Symmetric contract on sampled executions: for
        // every group permutation, stepping then permuting equals
        // permuting then stepping (with the permuted process).
        for seed in 0..48 {
            let case = generate(seed);
            let a = &case.automaton;
            let group = Perm::all(case.n);
            let mut rng = SplitMix64(seed ^ 0xD1F);
            let mut g = Global::initial(a, case.n);
            let mut obs = Vec::new();
            for _ in 0..12 {
                let live: Vec<usize> = (0..case.n)
                    .filter(|&q| !matches!(a.next_action(&g.procs[q]), Action::Halt))
                    .collect();
                let Some(&p) = live.first() else { break };
                let _ = rng.next_u64();
                for perm in &group {
                    let mut permuted_then_step = permute_global(a, &g, perm);
                    let mut step_then_permute = g.clone();
                    let spec = SafetySpec::default();
                    step_then_permute.step(a, p, &spec, &mut obs);
                    let expect = permute_global(a, &step_then_permute, perm);
                    permuted_then_step.step(a, perm.apply(p), &spec, &mut obs);
                    assert_eq!(
                        permuted_then_step, expect,
                        "equivariance broken: seed {seed}, perm {perm:?}"
                    );
                }
                g.step(a, p, &SafetySpec::default(), &mut obs);
            }
        }
    }

    #[test]
    #[ignore]
    fn debug_seed() {
        use crate::{DporExplorer, Explorer};
        let seed: u64 = std::env::var("SEED").unwrap().parse().unwrap();
        let case = generate(seed);
        let a = &case.automaton;
        println!("case: {case:?}");
        let naive = Explorer::new(a, case.n).check(&case.spec);
        println!(
            "naive: states {} transitions {} violation {:?}",
            naive.states_explored,
            naive.transitions,
            naive
                .violation
                .as_ref()
                .map(|c| (&c.violation, &c.schedule))
        );
        let dpor = DporExplorer::new(a, case.n).check(&case.spec);
        println!(
            "dpor: states {} transitions {} violation {:?}",
            dpor.states_explored,
            dpor.transitions,
            dpor.violation.as_ref().map(|c| (&c.violation, &c.schedule))
        );
    }

    #[test]
    fn differential_verdicts_across_explorers() {
        // The in-crate smoke version of the root differential suite:
        // every explorer agrees with the naive oracle on violation
        // presence, and every reported counterexample replays to its own
        // violation.
        use crate::{replay_schedule, DporExplorer, Explorer, ParallelExplorer};
        for seed in 0..200 {
            let case = generate(seed);
            let a = &case.automaton;
            let naive = Explorer::new(a, case.n).check(&case.spec);
            assert!(naive.exhausted(), "corpus is acyclic: seed {seed}");
            let reports = [
                ("dpor", DporExplorer::new(a, case.n).check(&case.spec)),
                (
                    "dpor+sym",
                    DporExplorer::new(a, case.n).check_symmetric(&case.spec),
                ),
                (
                    "naive+sym",
                    Explorer::new(a, case.n).check_symmetric(&case.spec),
                ),
                (
                    "parallel",
                    ParallelExplorer::new(a, case.n)
                        .threads(2)
                        .check(&case.spec),
                ),
            ];
            for (name, r) in reports {
                assert!(r.exhausted(), "{name} truncated: seed {seed}");
                assert_eq!(
                    naive.violation.is_some(),
                    r.violation.is_some(),
                    "verdict mismatch ({name}): seed {seed}"
                );
                if let Some(cex) = &r.violation {
                    assert_eq!(
                        replay_schedule(a, case.n, &case.spec, &cex.schedule),
                        Some(cex.violation.clone()),
                        "{name} schedule must replay: seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn stabilizer_is_the_full_group() {
        // Identical programs and pid-free initial registers: every
        // permutation fixes the initial configuration.
        for seed in 0..16 {
            let case = generate(seed);
            let g = SymCanon::stabilizer(&case.automaton, case.n);
            let expected = (1..=case.n).product::<usize>();
            assert_eq!(g.order(), expected, "seed {seed}");
        }
    }
}
