//! Executing concrete schedules: replay with full observation capture,
//! and seeded sampling of explorer-visitable executions.
//!
//! [`crate::replay_schedule`] answers only "does this schedule violate
//! the spec?". The cross-stack bridges need more: the chaos converter
//! wants the per-step actions, and the linearizability bridge wants the
//! [`Obs`] stream (trying/critical/remainder events) with step indices
//! to build a concurrent history. [`run_schedule`] provides both.
//! [`sample_execution`] draws one maximal interleaving with a seeded
//! SplitMix64 scheduler — every sampled execution is by construction a
//! path of the exhaustive explorer's tree, so histories extracted from
//! it are "explorer-visited" executions.

use crate::{Global, SafetySpec, Violation};
use tfr_registers::spec::{Action, Automaton, Obs};
use tfr_registers::ProcId;

/// One executed step of a schedule: who moved, what they did, what they
/// emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepObs {
    /// The process that moved.
    pub pid: ProcId,
    /// The atomic action it performed.
    pub action: Action,
    /// The events it emitted while applying the step.
    pub obs: Vec<Obs>,
}

/// The full record of a schedule execution: every step with its
/// observations, and the first violation if the monitor saw one (the
/// run stops there).
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Executed steps, in schedule order.
    pub steps: Vec<StepObs>,
    /// First violation observed, if any.
    pub violation: Option<Violation>,
}

impl ScheduleRun {
    /// All `(step_index, pid, obs)` triples, flattened.
    pub fn events(&self) -> impl Iterator<Item = (usize, ProcId, Obs)> + '_ {
        self.steps
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.obs.iter().map(move |&o| (i, s.pid, o)))
    }
}

/// Replays `schedule` from the initial configuration, recording every
/// step's action and observations. Stops at the first violation of
/// `spec` (the remaining schedule is not executed).
///
/// # Panics
///
/// Like [`crate::replay_schedule`]: panics if a scheduled `(pid,
/// action)` does not match what the automaton would do at that point,
/// or if a halted process is scheduled.
pub fn run_schedule<A: Automaton>(
    automaton: &A,
    n: usize,
    spec: &SafetySpec,
    schedule: &[(ProcId, Action)],
) -> ScheduleRun {
    let mut global = Global::initial(automaton, n);
    let mut steps = Vec::with_capacity(schedule.len());
    let mut obs_buf = Vec::new();
    for (i, &(pid, action)) in schedule.iter().enumerate() {
        let expected = automaton.next_action(&global.procs[pid.0]);
        assert_eq!(
            action, expected,
            "run step {i}: schedule has {pid} take {action}, automaton would {expected}"
        );
        assert!(
            !matches!(action, Action::Halt),
            "run step {i}: a halted process was scheduled"
        );
        let (_, violation) = global.step(automaton, pid.0, spec, &mut obs_buf);
        steps.push(StepObs {
            pid,
            action,
            obs: obs_buf.clone(),
        });
        if violation.is_some() {
            return ScheduleRun { steps, violation };
        }
    }
    ScheduleRun {
        steps,
        violation: None,
    }
}

/// The SplitMix64 generator (same construction as `tfr-chaos` uses;
/// re-implemented here because the dependency points the other way).
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Samples one maximal execution (all processes halted, or `max_steps`
/// reached) by repeatedly scheduling a uniformly random non-halted
/// process. Deterministic in `seed`.
///
/// Every returned schedule is a path in the interleaving tree the
/// exhaustive explorer walks, so this is the cheap way to obtain
/// "explorer-visited" executions for history extraction.
pub fn sample_execution<A: Automaton>(
    automaton: &A,
    n: usize,
    seed: u64,
    max_steps: usize,
) -> Vec<(ProcId, Action)> {
    let mut rng = SplitMix64(seed);
    let mut global = Global::initial(automaton, n);
    let mut schedule = Vec::new();
    let mut obs_buf = Vec::new();
    let spec = SafetySpec::default();
    for _ in 0..max_steps {
        let live: Vec<usize> = (0..n)
            .filter(|&q| !matches!(automaton.next_action(&global.procs[q]), Action::Halt))
            .collect();
        if live.is_empty() {
            break;
        }
        let pid = live[rng.below(live.len() as u64) as usize];
        let (action, _) = global.step(automaton, pid, &spec, &mut obs_buf);
        schedule.push((ProcId(pid), action));
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfr_registers::RegId;

    /// Write 1, read it back, decide, halt.
    struct WriteRead;
    impl Automaton for WriteRead {
        type State = u8;
        fn init(&self, _pid: ProcId) -> u8 {
            0
        }
        fn next_action(&self, s: &u8) -> Action {
            match s {
                0 => Action::Write(RegId(0), 1),
                1 => Action::Read(RegId(0)),
                _ => Action::Halt,
            }
        }
        fn apply(&self, s: &mut u8, v: Option<u64>, obs: &mut Vec<Obs>) {
            if *s == 1 {
                obs.push(Obs::Decided(v.unwrap()));
            }
            *s += 1;
        }
    }

    #[test]
    fn run_schedule_records_steps_and_obs() {
        let schedule = vec![
            (ProcId(0), Action::Write(RegId(0), 1)),
            (ProcId(0), Action::Read(RegId(0))),
        ];
        let run = run_schedule(&WriteRead, 1, &SafetySpec::consensus(vec![1]), &schedule);
        assert_eq!(run.steps.len(), 2);
        assert!(run.violation.is_none());
        let events: Vec<_> = run.events().collect();
        assert_eq!(events, vec![(1, ProcId(0), Obs::Decided(1))]);
    }

    #[test]
    fn sample_execution_is_deterministic_and_maximal() {
        let a = sample_execution(&WriteRead, 3, 42, 100);
        let b = sample_execution(&WriteRead, 3, 42, 100);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 6, "3 processes × 2 steps, all run to halt");
        let c = sample_execution(&WriteRead, 3, 43, 100);
        // Different seed is allowed to coincide, but the run must still
        // be complete.
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn sampled_execution_is_replayable() {
        let schedule = sample_execution(&WriteRead, 2, 7, 100);
        let spec = SafetySpec::consensus(vec![1]);
        assert_eq!(
            crate::replay_schedule(&WriteRead, 2, &spec, &schedule),
            None
        );
    }
}
