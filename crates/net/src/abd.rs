//! The client side of the quorum protocol: [`QuorumSpace`], a
//! [`RegisterSpace`] whose every cell is an ABD multi-writer
//! multi-reader atomic register replicated across the cluster.
//!
//! Both operations are built from the same primitive — a *quorum round*
//! that sends one payload to every replica and collects acknowledgements
//! until a majority (`R/2 + 1`) has answered, retransmitting to the
//! silent replicas on a timer. Because any two majorities intersect, a
//! completed round is guaranteed to touch at least one replica that saw
//! every previously completed round; that intersection is the whole
//! correctness argument.
//!
//! * **write(v)** — round 1 queries a majority for the highest version;
//!   the writer picks a fresh timestamp above everything it saw (and
//!   above everything it ever issued, via a CAS floor), stamps it with
//!   its unique `wid`, and round 2 stores `(ts, wid, v)` on a majority.
//! * **read()** — round 1 queries a majority and takes the maximum
//!   `(ts, wid)` answer; round 2 writes that answer *back* to a majority
//!   before returning it, so a later read can never see an older value
//!   (the new/old inversion ABD exists to prevent). The write-back is
//!   skipped when every collected ack already carries the maximum
//!   version — it is then already committed on a majority.
//!
//! Liveness needs a connected majority: under a partition that strands
//! clients with a minority, rounds retransmit forever — operations
//! *stall but never regress* — and complete after
//! [`crate::NetControl::heal`]. Safety never depends on timing, which is
//! this backend's whole point in a workspace about timing failures: the
//! Δ-tuned algorithms keep their *own* guarantees even when "shared
//! memory" is a lossy network.

use crate::msg::{Message, NodeId, Payload, Version, Versioned};
use crate::net::{Network, Waiter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use tfr_registers::space::RegisterSpace;
use tfr_registers::ProcId;
use tfr_telemetry::{current_pid, current_span_id, EventKind, Span};

/// A replicated register array: the `tfr-net` implementation of
/// [`RegisterSpace`]. Obtain one with [`Network::space`]; every handle
/// carries its own unique writer id, so clone-by-`space()` per thread.
///
/// Handles are cheap (an [`Arc`] plus two words) and `Send + Sync`; a
/// single handle shared by several threads is safe but serializes nothing
/// — each operation is its own quorum round.
pub struct QuorumSpace {
    net: Arc<Network>,
    /// This handle's unique writer id (tie-breaker of equal timestamps).
    wid: u64,
    /// Highest timestamp this handle has issued — a CAS floor that keeps
    /// its timestamps strictly increasing even across concurrent writes
    /// through the same handle.
    issued: AtomicU64,
}

impl QuorumSpace {
    pub(crate) fn new(net: Arc<Network>) -> QuorumSpace {
        let wid = net.shared().next_wid.fetch_add(1, Ordering::SeqCst) + 1;
        QuorumSpace {
            net,
            wid,
            issued: AtomicU64::new(0),
        }
    }

    /// The writer id stamped on this handle's writes.
    pub fn writer_id(&self) -> u64 {
        self.wid
    }

    /// Which client node this thread's traffic leaves from: worker pids
    /// fold onto clients by `pid mod clients`; unregistered threads use
    /// client 0.
    fn client(&self) -> usize {
        let clients = self.net.config().clients;
        current_pid().map_or(0, |p| p.0 % clients)
    }

    /// Runs one quorum round: sends `payload` to every replica and
    /// blocks until a majority has acknowledged, retransmitting to the
    /// replicas that stay silent. Returns the collected acks (at least a
    /// majority, keyed by replica index, at most one per replica).
    fn quorum_round(&self, client: usize, payload: Payload) -> Vec<(usize, Payload)> {
        let shared = self.net.shared();
        let cfg = &shared.cfg;
        let replicas = cfg.replicas;
        let majority = cfg.majority();
        let rid = shared.next_rid.fetch_add(1, Ordering::SeqCst) + 1;
        let waiter = Arc::new(Waiter {
            acks: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        });
        shared
            .waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(rid, Arc::clone(&waiter));

        // Outgoing requests carry the ambient causal span (the enclosing
        // quorum-phase span); replies echo it, tying the whole round trip
        // into the client's span tree.
        let span = current_span_id();
        let mut got: Vec<Option<Payload>> = vec![None; replicas];
        let mut count = 0;
        'round: loop {
            // (Re)transmit to every replica we have no answer from yet.
            for (i, slot) in got.iter().enumerate() {
                if slot.is_none() {
                    shared.send(Message {
                        from: NodeId::Client(client),
                        to: NodeId::Replica(i),
                        rid,
                        span,
                        payload,
                    });
                }
            }
            let deadline = Instant::now() + cfg.retransmit;
            let mut inbox = waiter.acks.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                while let Some((i, ack)) = inbox.pop() {
                    if got[i].is_none() {
                        shared.trace.emit_current(EventKind::MsgRecv {
                            from: ProcId(cfg.clients + i),
                            reg: ack.reg(),
                            span,
                        });
                        got[i] = Some(ack);
                        count += 1;
                    }
                }
                if count >= majority {
                    break 'round;
                }
                let now = Instant::now();
                if now >= deadline {
                    continue 'round; // timer expired: retransmit
                }
                inbox = waiter
                    .cv
                    .wait_timeout(inbox, deadline - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
        shared
            .waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&rid);
        got.into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .collect()
    }

    /// Reads register `index` with its version — the full ABD read
    /// (query, then write-back unless already committed on a majority).
    pub fn read_versioned(&self, index: u64) -> Versioned {
        let shared = self.net.shared();
        let t0 = shared.trace.now_ns();
        shared.trace.emit_current(EventKind::QuorumStart {
            reg: index,
            write: false,
        });
        let op_span = Span::enter(&shared.trace, "quorum.read");
        let client = self.client();
        let acks = {
            let _phase = Span::enter(&shared.trace, "quorum.phase1");
            self.quorum_round(client, Payload::ReadReq { reg: index })
        };
        let mut max = Versioned::ZERO;
        let mut committed = 0usize;
        for (_, ack) in &acks {
            if let Payload::ReadAck { data, .. } = ack {
                match data.version.cmp(&max.version) {
                    std::cmp::Ordering::Greater => {
                        max = *data;
                        committed = 1;
                    }
                    std::cmp::Ordering::Equal => committed += 1,
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        // Write-back phase: needed only when some majority member might
        // miss the maximum. If every ack already carries it, a majority
        // provably stores it and the round trip can be skipped.
        if committed < shared.cfg.majority() {
            let _phase = Span::enter(&shared.trace, "quorum.phase2");
            self.quorum_round(
                client,
                Payload::WriteReq {
                    reg: index,
                    data: max,
                },
            );
        }
        drop(op_span);
        // The version this read returns — per client lane these must
        // never regress (the new/old inversion ABD's write-back exists to
        // prevent), which is exactly what the online monitor checks.
        shared.trace.emit_current(EventKind::QuorumVersion {
            reg: index,
            ts: max.version.ts,
            wid: max.version.wid,
        });
        if let (Some(t0), Some(t1)) = (t0, shared.trace.now_ns()) {
            shared.trace.emit_current(EventKind::QuorumEnd {
                reg: index,
                write: false,
                rtt_ns: t1.saturating_sub(t0),
            });
        }
        max
    }

    /// Reserves a fresh timestamp: strictly above `floor` (the highest
    /// version a query phase observed) and above every timestamp this
    /// handle previously issued.
    fn reserve_ts(&self, floor: u64) -> u64 {
        let mut cur = self.issued.load(Ordering::SeqCst);
        loop {
            let candidate = cur.max(floor) + 1;
            match self
                .issued
                .compare_exchange(cur, candidate, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return candidate,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl RegisterSpace for QuorumSpace {
    fn read(&self, index: u64) -> u64 {
        self.read_versioned(index).value
    }

    fn write(&self, index: u64, value: u64) {
        let shared = self.net.shared();
        let t0 = shared.trace.now_ns();
        shared.trace.emit_current(EventKind::QuorumStart {
            reg: index,
            write: true,
        });
        let op_span = Span::enter(&shared.trace, "quorum.write");
        let client = self.client();
        // Phase 1: learn the highest timestamp a majority has seen.
        let acks = {
            let _phase = Span::enter(&shared.trace, "quorum.phase1");
            self.quorum_round(client, Payload::ReadReq { reg: index })
        };
        let mut max_ts = 0;
        for (_, ack) in &acks {
            if let Payload::ReadAck { data, .. } = ack {
                max_ts = max_ts.max(data.version.ts);
            }
        }
        // Phase 2: commit the value under a fresh unique version.
        let data = Versioned {
            version: Version {
                ts: self.reserve_ts(max_ts),
                wid: self.wid,
            },
            value,
        };
        {
            let _phase = Span::enter(&shared.trace, "quorum.phase2");
            self.quorum_round(client, Payload::WriteReq { reg: index, data });
        }
        drop(op_span);
        shared.trace.emit_current(EventKind::QuorumVersion {
            reg: index,
            ts: data.version.ts,
            wid: data.version.wid,
        });
        if let (Some(t0), Some(t1)) = (t0, shared.trace.now_ns()) {
            shared.trace.emit_current(EventKind::QuorumEnd {
                reg: index,
                write: true,
                rtt_ns: t1.saturating_sub(t0),
            });
        }
    }
}

impl std::fmt::Debug for QuorumSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumSpace")
            .field("wid", &self.wid)
            .field("issued", &self.issued.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;

    fn small_net() -> Arc<Network> {
        Arc::new(Network::new(NetConfig::new(2, 3, 0xABD)))
    }

    #[test]
    fn reads_see_the_latest_write() {
        let net = small_net();
        let space = net.space();
        assert_eq!(space.read(0), 0);
        space.write(0, 41);
        space.write(0, 42);
        assert_eq!(space.read(0), 42);
        assert_eq!(space.read(1), 0, "registers are independent");
    }

    #[test]
    fn handles_get_unique_writer_ids_and_versions_advance() {
        let net = small_net();
        let a = net.space();
        let b = net.space();
        assert_ne!(a.writer_id(), b.writer_id());
        a.write(5, 1);
        let va = a.read_versioned(5);
        b.write(5, 2);
        let vb = b.read_versioned(5);
        assert!(vb.version > va.version, "later write wins the order");
        assert_eq!(vb.value, 2);
    }

    #[test]
    fn concurrent_writers_from_threads_converge() {
        let net = small_net();
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let space = net.space();
                for i in 0..5 {
                    space.write(9, t * 100 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let space = net.space();
        let last = space.read(9);
        assert!(last < 5 || (100..105).contains(&last));
        // And a second read agrees — the winner is committed.
        assert_eq!(space.read(9), last);
    }
}
