//! The third execution stack: a deterministic, seedable in-process
//! message-passing network hosting ABD majority-quorum registers.
//!
//! The workspace already runs the paper's Δ-tuned algorithms on two
//! stacks — native threads over shared atomics and the virtual-time
//! simulator. This crate adds a stack where *there is no shared memory
//! at all*: every register is replicated across `R` replica servers and
//! accessed through two-phase majority-quorum rounds (the ABD emulation
//! of an atomic register on an asynchronous message-passing system).
//! Because [`QuorumSpace`] implements
//! [`tfr_registers::space::RegisterSpace`], the mutual-exclusion and
//! consensus algorithms run on it **unchanged** — the same
//! `ResilientMutex` that spins on an `AtomicU64` spins on a replicated
//! quorum register, and its timing-failure story composes with network
//! faults (drops, delay spikes, partitions) injected by [`NetControl`].
//!
//! Layers:
//!
//! * [`msg`] — the typed message vocabulary: `(ts, wid)` [`Version`]s
//!   with a derived lexicographic total order, versioned values, the
//!   four-payload protocol, node ids.
//! * [`net`] — the [`Network`]: one router thread owning the replica
//!   tables, per-link [`tfr_registers::rng::SplitMix64`] streams (every
//!   message consumes exactly two draws — delay, then drop — so a run is
//!   a pure function of the seed), and the [`NetControl`] nemesis.
//! * [`abd`] — the [`QuorumSpace`] client: quorum rounds with
//!   retransmission, reads with write-back (skipped when the maximum is
//!   already committed on a majority), writes with unique `(ts, wid)`
//!   reservation.
//!
//! Telemetry rides along on the workspace tracer: message sends,
//! receives, drops, and quorum round trips become events on the Perfetto
//! timeline, and [`tfr_telemetry::heal_convergence_from_events`] turns a
//! partition-heal trace into the §1.3-style convergence number.
//!
//! # Example
//!
//! Mutual exclusion over the network, unchanged:
//!
//! ```
//! use std::sync::Arc;
//! use tfr_net::{NetConfig, Network};
//! use tfr_registers::space::RegisterSpace;
//!
//! let net = Arc::new(Network::new(NetConfig::new(2, 3, 7)));
//! let space = net.space();
//! space.write(0, 1); // every cell is a replicated atomic register
//! assert_eq!(space.read(0), 1);
//! ```

pub mod abd;
pub mod msg;
pub mod net;

pub use abd::QuorumSpace;
pub use msg::{Message, NodeId, Payload, Version, Versioned};
pub use net::{NetConfig, NetControl, Network};

#[cfg(test)]
mod quorum_math {
    //! Property tests for the arithmetic the protocol's safety rests on.

    use crate::msg::{Version, Versioned};
    use std::collections::HashMap;
    use tfr_registers::rng::SplitMix64;

    /// Any two majorities of `R ≤ 9` replicas intersect — enumerated
    /// exhaustively over subsets as bitmasks. This is the fact that lets
    /// a read's query phase always meet a replica that saw the last
    /// committed write.
    #[test]
    fn majorities_always_intersect() {
        for r in 1..=9u32 {
            let majority = r / 2 + 1;
            let masks: Vec<u32> = (0u32..1 << r)
                .filter(|m| m.count_ones() >= majority)
                .collect();
            for &a in &masks {
                for &b in &masks {
                    assert!(
                        a & b != 0,
                        "disjoint majorities {a:b} and {b:b} for R = {r}"
                    );
                }
            }
        }
    }

    /// A sub-majority set does *not* always intersect a majority — the
    /// quorum size is tight, not conservative.
    #[test]
    fn sub_majority_quorums_are_unsafe() {
        for r in [3u32, 5, 7, 9] {
            let sub = r / 2; // one less than a majority
            let a = (1u32 << sub) - 1; // lowest `sub` replicas
            let b = ((1u32 << r) - 1) & !a; // everyone else: r − sub ≥ majority
            assert!(b.count_ones() > r / 2);
            assert_eq!(a & b, 0, "R = {r}: sub-majority dodged a majority");
        }
    }

    /// `(ts, wid)` ordering is total on distinct versions and timestamp
    /// ties break by writer id, exhaustively over a small grid.
    #[test]
    fn version_order_is_total_with_writer_tiebreak() {
        let grid: Vec<Version> = (0..6u64)
            .flat_map(|ts| (0..6u64).map(move |wid| Version { ts, wid }))
            .collect();
        for &a in &grid {
            for &b in &grid {
                let cmp = a.cmp(&b);
                assert_eq!(cmp.reverse(), b.cmp(&a), "antisymmetry");
                if a != b {
                    assert_ne!(cmp, std::cmp::Ordering::Equal, "distinct versions compare");
                }
                if a.ts == b.ts {
                    assert_eq!(cmp, a.wid.cmp(&b.wid), "ties break by wid");
                }
            }
        }
    }

    /// Read-repair monotonicity: a replica applying any seeded
    /// reordering (with duplication) of the same set of versioned writes
    /// always converges to the maximum version — delivery order never
    /// matters, which is why retransmission is safe.
    #[test]
    fn replica_state_is_order_insensitive() {
        let writes: Vec<Versioned> = (1..=8u64)
            .map(|i| Versioned {
                version: Version {
                    ts: i / 2 + 1,
                    wid: i % 3,
                },
                value: i * 10,
            })
            .collect();
        let expected = *writes.iter().max_by_key(|w| w.version).unwrap();

        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(seed);
            // A seeded shuffle with duplicated deliveries mixed in.
            let mut order: Vec<Versioned> = writes.clone();
            for _ in 0..4 {
                order.push(writes[rng.index(writes.len())]);
            }
            for i in (1..order.len()).rev() {
                order.swap(i, rng.index(i + 1));
            }

            let mut table: HashMap<u64, Versioned> = HashMap::new();
            for w in order {
                let cur = table.entry(0).or_insert(Versioned::ZERO);
                if w.version > cur.version {
                    *cur = w;
                }
            }
            assert_eq!(
                table[&0], expected,
                "seed {seed}: reordered delivery changed the outcome"
            );
        }
    }
}
