//! The deterministic in-process message-passing network.
//!
//! A [`Network`] hosts `R` passive replica servers behind a single router
//! thread. Clients hand messages to the router; each link `(from, to)`
//! owns a [`SplitMix64`] stream forked deterministically from the master
//! seed, and every message consumes exactly two draws from its link —
//! one for the delivery delay, one for the drop decision. The fate of the
//! n-th message on a link is therefore a pure function of
//! `(seed, link, n)` and the fault settings in force: printing the seed
//! *is* printing the timing model, the same replay story the chaos layer
//! tells for shared-memory faults.
//!
//! The router **coalesces** deliveries: each wake-up drains every due
//! message in one lock hold, applies the batch outside the lock, and
//! routes the batch's acks under one more hold. Heap order is
//! preserved, so per-link FIFO — and each link's seed-determined draw
//! order — is unchanged from one-at-a-time delivery; only the lock
//! traffic shrinks. [`NetControl::delivery_batches`] exposes the
//! coalescing rate.
//!
//! Faults are evaluated at **send time** by the [`NetControl`] handle:
//! per-message drop probability, a flat delay spike added to every link,
//! and partitions (messages never cross group boundaries). A partitioned
//! or dropped message is gone — reliability is the *client's* job
//! (quorum rounds retransmit), which is exactly how ABD survives a lossy
//! asynchronous network.
//!
//! Telemetry: senders stamp [`EventKind::MsgSend`] / `MsgDropped`,
//! receivers stamp `MsgRecv`, and [`NetControl`] marks fault transitions
//! with the [`tfr_telemetry::event::net_marks`] names. Replica-side
//! events are emitted by the router thread (the only writer for replica
//! pids); client-side events go through `emit_current`, so the
//! single-writer ring contract holds without any extra locking.

use crate::msg::{Message, NodeId, Payload, Versioned};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tfr_registers::rng::SplitMix64;
use tfr_registers::ProcId;
use tfr_telemetry::event::net_marks;
use tfr_telemetry::{EventKind, Trace};

/// Shape of an emulated cluster.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of client nodes (the algorithm processes; worker pids map
    /// onto clients by `pid mod clients`).
    pub clients: usize,
    /// Number of replica servers (`R`); a quorum is `R/2 + 1`.
    pub replicas: usize,
    /// Master seed for every per-link delay/drop stream.
    pub seed: u64,
    /// Minimum one-way link delay.
    pub min_delay: Duration,
    /// Maximum one-way link delay (uniform in `[min, max]`).
    pub max_delay: Duration,
    /// How long a quorum round waits for acknowledgements before
    /// retransmitting to the replicas that have not answered.
    pub retransmit: Duration,
}

impl NetConfig {
    /// A cluster of `clients` clients and `replicas` replicas with
    /// workspace-default link delays (10–80 µs) and a 1 ms retransmit
    /// timer.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `replicas == 0`.
    pub fn new(clients: usize, replicas: usize, seed: u64) -> NetConfig {
        assert!(clients > 0, "at least one client is required");
        assert!(replicas > 0, "at least one replica is required");
        NetConfig {
            clients,
            replicas,
            seed,
            min_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(80),
            retransmit: Duration::from_millis(1),
        }
    }

    /// Size of a majority quorum: `R/2 + 1`.
    pub fn majority(&self) -> usize {
        self.replicas / 2 + 1
    }

    /// Total node count (clients + replicas).
    pub fn nodes(&self) -> usize {
        self.clients + self.replicas
    }

    /// The telemetry pid of a node: clients keep their own index (they
    /// *are* the worker processes), replicas follow at
    /// `clients + replica_index`.
    pub fn node_pid(&self, node: NodeId) -> ProcId {
        match node {
            NodeId::Client(i) => ProcId(i % self.clients),
            NodeId::Replica(i) => ProcId(self.clients + i),
        }
    }

    /// The telemetry pid the [`NetControl`] nemesis stamps marks on (one
    /// past the last replica).
    pub fn control_pid(&self) -> ProcId {
        ProcId(self.nodes())
    }

    /// How many processes a [`tfr_telemetry::Tracer`] needs to hold every
    /// lane of this cluster: clients, replicas, and the control lane.
    pub fn tracer_processes(&self) -> usize {
        self.nodes() + 1
    }

    /// Dense key of a node for link/partition tables.
    fn key(&self, node: NodeId) -> usize {
        match node {
            NodeId::Client(i) => i % self.clients,
            NodeId::Replica(i) => self.clients + i,
        }
    }
}

/// One scheduled delivery, ordered by time then submission sequence.
struct InFlight {
    deliver_at: Instant,
    seq: u64,
    msg: Message,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Mutable router state, guarded by one mutex (never held across a
/// delivery or a user-visible call).
struct RouterState {
    queue: BinaryHeap<Reverse<InFlight>>,
    links: HashMap<(usize, usize), SplitMix64>,
    drop_prob: f64,
    extra_delay: Duration,
    /// `Some(groups)` = partitioned: `groups[key]` is the node's side,
    /// and messages never cross sides. `None` = fully connected.
    groups: Option<Vec<u8>>,
    seq: u64,
    shutdown: bool,
}

/// Ack mailbox of one in-flight quorum round, keyed by `rid`.
pub(crate) struct Waiter {
    pub(crate) acks: Mutex<Vec<(usize, Payload)>>,
    pub(crate) cv: Condvar,
}

pub(crate) struct Shared {
    pub(crate) cfg: NetConfig,
    state: Mutex<RouterState>,
    router_cv: Condvar,
    pub(crate) waiters: Mutex<HashMap<u64, Arc<Waiter>>>,
    pub(crate) next_rid: AtomicU64,
    pub(crate) next_wid: AtomicU64,
    pub(crate) trace: Trace,
    /// Messages the router has delivered (coalescing diagnostics).
    delivered: AtomicU64,
    /// Router wake-ups that delivered at least one message; `delivered /
    /// delivery_batches` is the mean coalesced batch size.
    delivery_batches: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Evaluates link faults and either schedules `msg` for delivery or
    /// drops it. Client-side telemetry uses `emit_current` (the calling
    /// worker thread owns its lane); replica-side sends are stamped by
    /// the router thread on the replica's lane.
    fn route(&self, st: &mut RouterState, msg: Message) {
        let reg = msg.payload.reg();
        let to_pid = self.cfg.node_pid(msg.to);
        let from_key = self.cfg.key(msg.from);
        let to_key = self.cfg.key(msg.to);
        let cut = match &st.groups {
            Some(g) => g[from_key] != g[to_key],
            None => false,
        };
        let seed = self.cfg.seed;
        let rng = st.links.entry((from_key, to_key)).or_insert_with(|| {
            // Distinct stream per (seed, link): golden-ratio mixing keeps
            // nearby link keys far apart in seed space.
            let link = (from_key as u64) << 32 | to_key as u64;
            SplitMix64::new(seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        });
        // Every message consumes exactly two draws — delay, then drop —
        // so the n-th message on a link has a seed-determined fate
        // regardless of what happened to earlier messages.
        let span_ns = self
            .cfg
            .max_delay
            .saturating_sub(self.cfg.min_delay)
            .as_nanos() as u64;
        let jitter = Duration::from_nanos(rng.random_range(0..=span_ns));
        let lost = rng.random_bool(st.drop_prob);
        let kind = if cut || lost {
            EventKind::MsgDropped {
                to: to_pid,
                reg,
                span: msg.span,
            }
        } else {
            EventKind::MsgSend {
                to: to_pid,
                reg,
                span: msg.span,
            }
        };
        match msg.from {
            NodeId::Client(_) => self.trace.emit_current(kind),
            NodeId::Replica(_) => self.trace.emit(self.cfg.node_pid(msg.from), kind),
        }
        if cut || lost {
            return;
        }
        st.seq += 1;
        st.queue.push(Reverse(InFlight {
            deliver_at: Instant::now() + self.cfg.min_delay + jitter + st.extra_delay,
            seq: st.seq,
            msg,
        }));
        self.router_cv.notify_all();
    }

    /// Hands `msg` to the link layer from a client thread.
    pub(crate) fn send(&self, msg: Message) {
        let mut st = lock(&self.state);
        self.route(&mut st, msg);
    }
}

/// The emulated cluster: router thread, replica state, fault switches.
///
/// Dropping the `Network` shuts the router down; do so only at
/// quiescence (no quorum operation still blocked), and heal partitions
/// first — a client stranded by an eternal partition retransmits forever
/// by design.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfr_net::{NetConfig, Network};
/// use tfr_registers::space::RegisterSpace;
///
/// let net = Arc::new(Network::new(NetConfig::new(1, 3, 42)));
/// let space = net.space();
/// assert_eq!(space.read(7), 0); // zero-initialized, like every backend
/// space.write(7, 99);
/// assert_eq!(space.read(7), 99);
/// ```
pub struct Network {
    shared: Arc<Shared>,
    router: Option<JoinHandle<()>>,
}

impl Network {
    /// Boots a cluster with telemetry disabled.
    pub fn new(cfg: NetConfig) -> Network {
        Network::with_trace(cfg, Trace::disabled())
    }

    /// Boots a cluster stamping message/quorum events into `trace`
    /// (size the tracer with [`NetConfig::tracer_processes`]).
    pub fn with_trace(cfg: NetConfig, trace: Trace) -> Network {
        assert!(cfg.clients > 0 && cfg.replicas > 0, "empty cluster");
        assert!(cfg.min_delay <= cfg.max_delay, "delay range is inverted");
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(RouterState {
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                drop_prob: 0.0,
                extra_delay: Duration::ZERO,
                groups: None,
                seq: 0,
                shutdown: false,
            }),
            router_cv: Condvar::new(),
            waiters: Mutex::new(HashMap::new()),
            next_rid: AtomicU64::new(0),
            next_wid: AtomicU64::new(0),
            trace,
            delivered: AtomicU64::new(0),
            delivery_batches: AtomicU64::new(0),
        });
        let router = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tfr-net-router".into())
                .spawn(move || router_loop(&shared))
                .expect("spawn router thread")
        };
        Network {
            shared,
            router: Some(router),
        }
    }

    /// The cluster shape.
    pub fn config(&self) -> &NetConfig {
        &self.shared.cfg
    }

    /// A fault-injection handle (cloneable, sendable to a nemesis thread).
    pub fn control(&self) -> NetControl {
        NetControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A fresh [`crate::QuorumSpace`] over this cluster, with its own
    /// unique writer id.
    pub fn space(self: &Arc<Network>) -> crate::QuorumSpace {
        crate::QuorumSpace::new(Arc::clone(self))
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.router_cv.notify_all();
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("clients", &self.shared.cfg.clients)
            .field("replicas", &self.shared.cfg.replicas)
            .field("seed", &self.shared.cfg.seed)
            .finish()
    }
}

/// Applies one request to a replica's register table and builds the ack.
/// Idempotent by construction: a retransmitted or reordered `WriteReq`
/// only ever moves a register's version *up* (read-repair monotonicity).
fn replica_apply(table: &mut HashMap<u64, Versioned>, payload: Payload) -> Payload {
    match payload {
        Payload::ReadReq { reg } => Payload::ReadAck {
            reg,
            data: *table.get(&reg).unwrap_or(&Versioned::ZERO),
        },
        Payload::WriteReq { reg, data } => {
            let cur = table.entry(reg).or_insert(Versioned::ZERO);
            if data.version > cur.version {
                *cur = data;
            }
            Payload::WriteAck {
                reg,
                version: data.version,
            }
        }
        Payload::ReadAck { .. } | Payload::WriteAck { .. } => {
            unreachable!("acks are never addressed to replicas")
        }
    }
}

fn router_loop(shared: &Shared) {
    let mut tables: Vec<HashMap<u64, Versioned>> =
        (0..shared.cfg.replicas).map(|_| HashMap::new()).collect();
    let mut due: Vec<Message> = Vec::new();
    let mut replies: Vec<Message> = Vec::new();
    loop {
        // Drain *every* due delivery in one lock hold (or sleep until
        // one is due). Coalescing matters under commit pipelining: a
        // pipelined proposer keeps several quorum rounds in flight, so
        // their messages tend to fall due together — one wake-up then
        // delivers the whole burst instead of re-acquiring the router
        // lock per message. Deliveries stay in `(deliver_at, seq)` heap
        // order, so per-link FIFO order — and therefore each link's
        // seed-determined draw order — is exactly what it was with
        // one-at-a-time delivery.
        {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                let now = Instant::now();
                while matches!(st.queue.peek(), Some(Reverse(f)) if f.deliver_at <= now) {
                    due.push(st.queue.pop().expect("peeked").0.msg);
                }
                if !due.is_empty() {
                    break;
                }
                match st.queue.peek() {
                    Some(Reverse(f)) => {
                        let wait = f.deliver_at - now;
                        st = shared
                            .router_cv
                            .wait_timeout(st, wait)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    None => {
                        st = shared.router_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        shared
            .delivered
            .fetch_add(due.len() as u64, Ordering::Relaxed);
        shared.delivery_batches.fetch_add(1, Ordering::Relaxed);
        // Process the batch outside the router lock: replica applies
        // accumulate their acks, client acks land in their mailboxes.
        for msg in due.drain(..) {
            match msg.to {
                NodeId::Replica(r) => {
                    let pid = shared.cfg.node_pid(msg.to);
                    shared.trace.emit(
                        pid,
                        EventKind::MsgRecv {
                            from: shared.cfg.node_pid(msg.from),
                            reg: msg.payload.reg(),
                            span: msg.span,
                        },
                    );
                    let ack = replica_apply(&mut tables[r], msg.payload);
                    replies.push(Message {
                        from: msg.to,
                        to: msg.from,
                        rid: msg.rid,
                        span: msg.span,
                        payload: ack,
                    });
                }
                NodeId::Client(_) => {
                    // Deliver into the round's mailbox; the client thread
                    // stamps its own MsgRecv when it consumes the ack. A
                    // missing mailbox means the round already completed
                    // on a majority — late acks are simply redundant.
                    let NodeId::Replica(r) = msg.from else {
                        unreachable!("clients only receive replica acks")
                    };
                    let waiter = lock(&shared.waiters).get(&msg.rid).cloned();
                    if let Some(w) = waiter {
                        lock(&w.acks).push((r, msg.payload));
                        w.cv.notify_all();
                    }
                }
            }
        }
        // One more lock hold routes the whole batch of acks.
        if !replies.is_empty() {
            let mut st = lock(&shared.state);
            for reply in replies.drain(..) {
                shared.route(&mut st, reply);
            }
        }
    }
}

/// The network nemesis handle: flips fault switches on a live cluster.
///
/// Cloneable and `Send`; drive it from one nemesis thread at a time (its
/// telemetry marks share the single control lane).
#[derive(Clone)]
pub struct NetControl {
    shared: Arc<Shared>,
}

impl NetControl {
    fn mark(&self, name: &'static str, value: u64) {
        self.shared.trace.emit(
            self.shared.cfg.control_pid(),
            EventKind::Mark { name, value },
        );
    }

    /// Sets the per-message drop probability on every link.
    pub fn set_drop(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        lock(&self.shared.state).drop_prob = p;
        self.mark(net_marks::DROP, (p * 100.0) as u64);
    }

    /// Adds a flat `extra` to every link delay (a delay spike; the
    /// network-world timing failure that is slow rather than lossy).
    pub fn delay_spike(&self, extra: Duration) {
        lock(&self.shared.state).extra_delay = extra;
        self.mark(net_marks::DELAY_SPIKE, extra.as_nanos() as u64);
    }

    /// Installs a partition: nodes in different groups cannot exchange
    /// messages. Every node must appear in exactly one group.
    ///
    /// # Panics
    ///
    /// Panics if a node is missing, duplicated, or more than 255 groups
    /// are given.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        assert!(groups.len() <= u8::MAX as usize, "too many groups");
        let cfg = &self.shared.cfg;
        let mut table: Vec<Option<u8>> = vec![None; cfg.nodes()];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                let k = cfg.key(m);
                assert!(table[k].is_none(), "node {m} appears in two groups");
                table[k] = Some(g as u8);
            }
        }
        let table: Vec<u8> = table
            .into_iter()
            .enumerate()
            .map(|(k, g)| g.unwrap_or_else(|| panic!("node key {k} missing from the partition")))
            .collect();
        lock(&self.shared.state).groups = Some(table);
        self.mark(net_marks::PARTITION, groups.len() as u64);
    }

    /// Cuts replicas `0..k` off from everyone else; all clients stay with
    /// the remaining `R − k` replicas. With `k < R/2 + 1` the clients
    /// keep a majority and operations proceed (reads may repair).
    pub fn partition_minority(&self, k: usize) {
        let cfg = &self.shared.cfg;
        assert!(k <= cfg.replicas, "k exceeds the replica count");
        let minority: Vec<NodeId> = (0..k).map(NodeId::Replica).collect();
        let rest: Vec<NodeId> = (0..cfg.clients)
            .map(NodeId::Client)
            .chain((k..cfg.replicas).map(NodeId::Replica))
            .collect();
        self.partition(&[rest, minority]);
    }

    /// Strands every client with only replicas `0..k`. With `k` below a
    /// majority, every quorum operation **stalls** (retransmitting,
    /// changing nothing) until [`NetControl::heal`] — the "writes stall
    /// but never regress" scenario.
    pub fn isolate_clients_with(&self, k: usize) {
        let cfg = &self.shared.cfg;
        assert!(k <= cfg.replicas, "k exceeds the replica count");
        let client_side: Vec<NodeId> = (0..cfg.clients)
            .map(NodeId::Client)
            .chain((0..k).map(NodeId::Replica))
            .collect();
        let far_side: Vec<NodeId> = (k..cfg.replicas).map(NodeId::Replica).collect();
        self.partition(&[client_side, far_side]);
    }

    /// Messages the router has delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.shared.delivered.load(Ordering::Relaxed)
    }

    /// Router wake-ups that delivered at least one message. The ratio
    /// `delivered_messages / delivery_batches` is the mean coalesced
    /// batch size — above 1.0 means pipelined traffic actually shares
    /// wake-ups.
    pub fn delivery_batches(&self) -> u64 {
        self.shared.delivery_batches.load(Ordering::Relaxed)
    }

    /// Lifts every fault: full connectivity, no drops, no delay spike.
    pub fn heal(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.groups = None;
            st.drop_prob = 0.0;
            st.extra_delay = Duration::ZERO;
        }
        self.mark(net_marks::HEAL, 0);
    }
}

impl std::fmt::Debug for NetControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NetControl")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_quorum_and_pids() {
        let cfg = NetConfig::new(2, 5, 1);
        assert_eq!(cfg.majority(), 3);
        assert_eq!(cfg.node_pid(NodeId::Client(1)), ProcId(1));
        assert_eq!(cfg.node_pid(NodeId::Replica(0)), ProcId(2));
        assert_eq!(cfg.control_pid(), ProcId(7));
        assert_eq!(cfg.tracer_processes(), 8);
    }

    #[test]
    fn replica_apply_is_monotone_and_idempotent() {
        use crate::msg::{Version, Versioned};
        let mut t = HashMap::new();
        let v1 = Versioned {
            version: Version { ts: 1, wid: 1 },
            value: 10,
        };
        let v2 = Versioned {
            version: Version { ts: 2, wid: 1 },
            value: 20,
        };
        replica_apply(&mut t, Payload::WriteReq { reg: 0, data: v2 });
        // A late, stale write must not regress the register.
        replica_apply(&mut t, Payload::WriteReq { reg: 0, data: v1 });
        // A duplicated fresh write must be harmless.
        replica_apply(&mut t, Payload::WriteReq { reg: 0, data: v2 });
        match replica_apply(&mut t, Payload::ReadReq { reg: 0 }) {
            Payload::ReadAck { data, .. } => assert_eq!(data, v2),
            other => panic!("expected ReadAck, got {other:?}"),
        }
    }

    #[test]
    fn network_boots_and_shuts_down() {
        let net = Network::new(NetConfig::new(1, 3, 7));
        assert_eq!(net.config().majority(), 2);
        drop(net); // must join the router without hanging
    }

    #[test]
    #[should_panic(expected = "missing from the partition")]
    fn partition_requires_total_coverage() {
        let net = Network::new(NetConfig::new(1, 3, 7));
        net.control()
            .partition(&[vec![NodeId::Client(0), NodeId::Replica(0)]]);
    }
}
