//! The typed message vocabulary of the quorum protocol.
//!
//! Four message kinds suffice for multi-writer ABD: a query
//! ([`Payload::ReadReq`]) with its versioned answer ([`Payload::ReadAck`]),
//! and a store ([`Payload::WriteReq`]) with its acknowledgement
//! ([`Payload::WriteAck`]). Both phases of both operations are built from
//! the same two round trips; the client side decides what the answers mean.

use std::fmt;

/// A register version: a logical timestamp plus the writer's identity.
///
/// Versions are **totally ordered** — lexicographically by `(ts, wid)` —
/// which is what makes the replicated register converge: two concurrent
/// writes with distinct versions have a definite winner at every replica,
/// and equal versions are impossible because each writer handle issues
/// strictly increasing timestamps under its own unique `wid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Logical timestamp (Lamport-style: one past the highest observed).
    pub ts: u64,
    /// Unique id of the writing [`crate::QuorumSpace`] handle.
    pub wid: u64,
}

impl Version {
    /// The version of the never-written register (ts 0, writer 0 — below
    /// every real version, since real writes use `ts ≥ 1`).
    pub const ZERO: Version = Version { ts: 0, wid: 0 };
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.ts, self.wid)
    }
}

/// A register value stamped with the version that wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Versioned {
    /// The write's version.
    pub version: Version,
    /// The written value.
    pub value: u64,
}

impl Versioned {
    /// The zero-initialized register: value 0 at [`Version::ZERO`].
    pub const ZERO: Versioned = Versioned {
        version: Version::ZERO,
        value: 0,
    };
}

/// What a message says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Client → replica: report your current `(version, value)` for `reg`.
    ReadReq {
        /// The queried register.
        reg: u64,
    },
    /// Replica → client: the answer to a [`Payload::ReadReq`].
    ReadAck {
        /// The queried register.
        reg: u64,
        /// The replica's current copy.
        data: Versioned,
    },
    /// Client → replica: store `data` for `reg` if its version exceeds
    /// yours (idempotent — retransmits and reorderings are harmless).
    WriteReq {
        /// The written register.
        reg: u64,
        /// The versioned value to store.
        data: Versioned,
    },
    /// Replica → client: a [`Payload::WriteReq`] was applied (or
    /// superseded by a newer version, which is just as good).
    WriteAck {
        /// The written register.
        reg: u64,
        /// The version the request carried.
        version: Version,
    },
}

impl Payload {
    /// The register this message is about (every payload names one).
    pub fn reg(&self) -> u64 {
        match *self {
            Payload::ReadReq { reg }
            | Payload::ReadAck { reg, .. }
            | Payload::WriteReq { reg, .. }
            | Payload::WriteAck { reg, .. } => reg,
        }
    }
}

/// A node of the emulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A client — one of the algorithm processes driving quorum ops.
    Client(usize),
    /// A replica server holding a full copy of every register.
    Replica(usize),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Client(i) => write!(f, "c{i}"),
            NodeId::Replica(i) => write!(f, "s{i}"),
        }
    }
}

/// One message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The sending node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// The round id: acks carry their request's `rid`, which is how the
    /// client matches late, duplicated, or reordered answers to the
    /// quorum round that asked.
    pub rid: u64,
    /// The causal span this message belongs to (0 = untraced). Requests
    /// carry the sending client's current span id and replies echo it, so
    /// the exporter can draw flow links from a quorum-phase span to every
    /// replica it touched.
    pub span: u64,
    /// The content.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_order_lexicographically() {
        let a = Version { ts: 1, wid: 9 };
        let b = Version { ts: 2, wid: 0 };
        let c = Version { ts: 2, wid: 1 };
        assert!(a < b, "timestamp dominates");
        assert!(b < c, "writer id breaks timestamp ties");
        assert!(Version::ZERO < a);
        assert_eq!(a.to_string(), "1.9");
    }

    #[test]
    fn payload_names_its_register() {
        assert_eq!(Payload::ReadReq { reg: 7 }.reg(), 7);
        assert_eq!(
            Payload::WriteAck {
                reg: 3,
                version: Version::ZERO
            }
            .reg(),
            3
        );
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::Client(2).to_string(), "c2");
        assert_eq!(NodeId::Replica(0).to_string(), "s0");
    }
}
