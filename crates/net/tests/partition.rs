//! ABD safety under partitions: quorum operations on the minority side
//! stall (they never return wrong answers early), operations on a
//! majority side keep completing and never regress, and after heal every
//! read returns the latest committed value.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfr_net::{NetConfig, Network};
use tfr_registers::space::RegisterSpace;

fn fast_cfg(clients: usize, replicas: usize, seed: u64) -> NetConfig {
    let mut cfg = NetConfig::new(clients, replicas, seed);
    // Short retransmit so post-heal recovery is quick in a test.
    cfg.retransmit = Duration::from_micros(200);
    cfg
}

#[test]
fn minority_partition_ops_complete_and_never_regress() {
    let cfg = fast_cfg(1, 5, 0x5EED);
    let spare = cfg.replicas - cfg.majority();
    let net = Arc::new(Network::new(cfg));
    let space = net.space();

    space.write(0, 1);
    let mut last_version = space.read_versioned(0);
    assert_eq!(last_version.value, 1);

    // Cut off as many replicas as a majority can spare: the client side
    // keeps a working quorum and every operation still completes.
    net.control().partition_minority(spare);
    for k in 2..=6u64 {
        space.write(0, k);
        let v = space.read_versioned(0);
        assert_eq!(v.value, k, "read regressed during a minority partition");
        assert!(
            v.version > last_version.version,
            "versions must advance monotonically"
        );
        last_version = v;
    }

    // Heal: the isolated replicas rejoin; reads still see the latest.
    net.control().heal();
    assert_eq!(space.read(0), 6);
}

#[test]
fn client_isolation_stalls_writes_but_never_loses_them() {
    let cfg = fast_cfg(2, 5, 0xC11E);
    let net = Arc::new(Network::new(cfg));
    let space = Arc::new(net.space());

    space.write(0, 10);
    assert_eq!(space.read(0), 10);

    // Strand the clients with a single replica — below majority, so every
    // quorum round stalls (retransmitting) until heal.
    net.control().isolate_clients_with(1);
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let (space, done) = (Arc::clone(&space), Arc::clone(&done));
        std::thread::spawn(move || {
            space.write(0, 11);
            done.store(true, Ordering::SeqCst);
        })
    };

    // The write cannot commit without a majority: it is still pending
    // well past many retransmit periods.
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !done.load(Ordering::SeqCst),
        "a write must not complete without a majority"
    );

    // Heal: the stalled write drains and is durable.
    net.control().heal();
    writer.join().unwrap();
    assert!(done.load(Ordering::SeqCst));
    assert_eq!(
        space.read(0),
        11,
        "the write stranded by the partition commits exactly once after heal"
    );
}

#[test]
fn reads_after_heal_return_the_latest_committed_value() {
    let cfg = fast_cfg(2, 3, 0x41AD);
    let net = Arc::new(Network::new(cfg));
    let space = Arc::new(net.space());

    // Commit a value, then partition the minority replica away and keep
    // writing through the majority.
    space.write(7, 1);
    net.control().partition_minority(1);
    space.write(7, 2);
    space.write(7, 3);
    net.control().heal();

    // A second client handle (fresh writer id, no cached state) also
    // reads the latest committed value after heal — read-repair and the
    // (ts, wid) order make the answer independent of which replicas the
    // read quorum happens to hit.
    let other = net.space();
    for _ in 0..8 {
        assert_eq!(other.read(7), 3);
        assert_eq!(space.read(7), 3);
    }
}
