//! Cross-crate integration tests for Algorithm 1: the specification form
//! (simulator + model checker) and the native form must realize the same
//! object, and every Theorem 2.x property must hold through the public
//! API.

use std::sync::Arc;
use std::time::Duration;
use tfr::core::consensus::{ConsensusSpec, NativeConsensus};
use tfr::modelcheck::{Explorer, SafetySpec};
use tfr::registers::bank::ArrayBank;
use tfr::registers::spec::run_solo;
use tfr::registers::{Delta, ProcId, Ticks};
use tfr::sim::metrics::consensus_stats;
use tfr::sim::timing::{standard_no_failures, CrashSchedule, Fate, Scripted, UniformAccess};
use tfr::sim::{RunConfig, Sim};

#[test]
fn spec_and_native_agree_on_solo_behaviour() {
    for input in [false, true] {
        // Spec form.
        let mut bank = ArrayBank::new();
        let run = run_solo(&ConsensusSpec::new(vec![input]), ProcId(0), &mut bank, 50);
        // Native form.
        let native = NativeConsensus::new(Duration::from_micros(1));
        let native_decision = native.propose(input);
        assert_eq!(run.decision(), Some(input as u64));
        assert_eq!(native_decision, input);
        assert_eq!(
            run.shared_accesses, 7,
            "the fast path is 7 steps in both forms"
        );
    }
}

#[test]
fn unanimous_inputs_decide_that_value_in_all_three_harnesses() {
    for input in [false, true] {
        // Simulator.
        let d = Delta::from_ticks(100);
        let result = Sim::new(
            ConsensusSpec::new(vec![input; 4]),
            RunConfig::new(4, d),
            standard_no_failures(d, 3),
        )
        .run();
        assert_eq!(consensus_stats(&result).decided_value, Some(input as u64));

        // Model checker: with unanimous inputs, only that value is valid —
        // exhaustively.
        let report = Explorer::new(ConsensusSpec::new(vec![input; 2]).max_rounds(3), 2)
            .check(&SafetySpec::consensus(vec![input as u64]));
        assert!(report.proven_safe(), "{:?}", report.violation);

        // Native threads.
        let native = Arc::new(NativeConsensus::new(Duration::from_micros(2)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&native);
                std::thread::spawn(move || c.propose(input))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), input);
        }
    }
}

#[test]
fn agreement_under_heavy_failures_and_crashes_combined() {
    let d = Delta::from_ticks(100);
    for seed in 0..30 {
        let n = 5;
        let inputs: Vec<bool> = (0..n)
            .map(|i| (i as u64 + seed).is_multiple_of(2))
            .collect();
        let valid: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let base = UniformAccess::new(Ticks(10), Ticks(800), seed);
        let model =
            CrashSchedule::new(base, vec![(ProcId(2), Ticks(300)), (ProcId(4), Ticks(900))]);
        let config = RunConfig::new(n, d).max_steps(100_000);
        let result = Sim::new(ConsensusSpec::new(inputs).max_rounds(40), config, model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "seed={seed}");
        assert!(stats.valid_against(&valid), "seed={seed}");
    }
}

#[test]
fn decision_is_sticky_across_late_arrivals() {
    // A process that starts after the decision adopts it in one step.
    let d = Delta::from_ticks(100);
    let model = Scripted::new(Ticks(10)).set(ProcId(2), 0, Fate::Take(Ticks(5_000)));
    let result = Sim::new(
        ConsensusSpec::new(vec![true, true, false]),
        RunConfig::new(3, d),
        model,
    )
    .run();
    let stats = consensus_stats(&result);
    assert!(stats.agreement);
    assert_eq!(stats.decided_value, Some(1), "early unanimous true wins");
    let (t2, v2) = result.decision_of(ProcId(2)).expect("late process decides");
    assert_eq!(v2, 1);
    assert!(t2 >= Ticks(5_000), "p2 was stalled until t=5000");
}

#[test]
fn forced_conflict_rounds_then_recovery_bound() {
    // The E3b adversary as a regression test: R rounds of forced split,
    // then clean — decide by round R + 2 (= r + 1 where r is the first
    // clean round).
    let d = Delta::from_ticks(100);
    for forced in 1u64..=4 {
        let mut model = Scripted::new(Ticks(10));
        for k in 0..forced {
            if k > 0 {
                model = model.set(ProcId(0), 7 * k, Fate::Take(Ticks(260)));
            }
            model = model.set(ProcId(0), 7 * k + 6, Fate::Take(Ticks(150))).set(
                ProcId(1),
                7 * k + 3,
                Fate::Take(Ticks(400)),
            );
        }
        let spec = ConsensusSpec::new(vec![false, true]).with_delta(d.ticks());
        let result = Sim::new(spec, RunConfig::new(2, d), model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "R={forced}");
        assert!(
            stats.all_decided_by.is_some(),
            "R={forced}: must decide after failures stop"
        );
        assert!(
            stats.max_round > forced,
            "R={forced}: the adversary must actually force {forced} conflict rounds \
             (reached only {})",
            stats.max_round
        );
        assert!(
            stats.max_round <= forced + 2,
            "R={forced}: Theorem 2.1(2) bound violated"
        );
    }
}

#[test]
fn modelcheck_three_processes_exhaustive() {
    let report = Explorer::new(ConsensusSpec::new(vec![true, false, true]).max_rounds(2), 3)
        .check(&SafetySpec::consensus(vec![0, 1]));
    assert!(report.proven_safe(), "{:?}", report.violation);
    assert!(
        report.states_explored > 10_000,
        "the space must be nontrivial"
    );
}

#[test]
fn native_decision_visible_to_non_proposers() {
    let c = Arc::new(NativeConsensus::new(Duration::from_micros(2)));
    assert_eq!(c.decision(), None);
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.propose(false));
    let decided = h.join().unwrap();
    assert!(!decided);
    assert_eq!(
        c.decision(),
        Some(false),
        "observers read the decision wait-free"
    );
}
