//! Acceptance for the replicated log: chaos schedules with
//! crash-recoveries landing mid-pipeline (new incarnations resume from
//! the registers, zero divergence over twenty seeds), the same
//! `ReplicatedLog` running unchanged over the quorum backend through a
//! partition, Wing–Gong linearization of counter/queue/renaming
//! histories committed through the log, the 2-height/3-process log
//! automaton model-checked safe (and its mutant caught), and the online
//! prefix monitor flagging a reordering applier while it runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfr::chaos::{random_schedule, ScheduleConfig};
use tfr::core::universal::{Counter, FifoQueue, Sequential};
use tfr::linearize::{check_history, CounterModel, QueueModel, Recorder, RenamingModel};
use tfr::log::{
    LogAutomaton, LogConfig, LogReplica, LogWorker, Renaming, ReorderingApplier, ReplicatedLog,
    SmrConfig,
};
use tfr::modelcheck::{DporExplorer, Explorer, SafetySpec};
use tfr::net::{NetConfig, Network};
use tfr::obs::MonitorBank;
use tfr::registers::chaos::{run_as, ChaosSession, Fault, ThreadOutcome};
use tfr::registers::ProcId;
use tfr::telemetry::{with_pid, DrainCursor, Trace, Tracer};

fn delta() -> Duration {
    Duration::from_micros(100)
}

// ---------------------------------------------------------------------
// Chaos: crash-recoveries mid-pipeline, twenty seeds, zero divergence
// ---------------------------------------------------------------------

const N: usize = 3;
const REPLICAS: usize = 1;
const BATCHES: u64 = 5;

fn chaos_log() -> Arc<ReplicatedLog<Counter>> {
    Arc::new(ReplicatedLog::new(
        Counter,
        LogConfig {
            n: N,
            replicas: REPLICAS,
            heights: 64,
            max_batch: 4,
            window: 2,
            delta: delta(),
        },
    ))
}

/// One applier lane's outcome: the entries it applied and its final
/// counter state.
type LaneResult = (Vec<tfr::log::AppliedEntry>, u64);

/// Drives the standard workload under an installed fault plan: each
/// worker commits [`BATCHES`] tagged batches, restarting as a fresh
/// [`LogWorker::resumed`] incarnation after every recoverable crash
/// (a batch interrupted mid-commit is redone — committing it twice is
/// legal; the invariants below are against what the registers actually
/// hold). After its own batches, every lane keeps replicating until all
/// decided heights are applied everywhere, so the pipeline floor never
/// strands another worker.
fn drive_log_workload(
    log: &Arc<ReplicatedLog<Counter>>,
    faults: &[Fault],
) -> (Vec<LaneResult>, usize) {
    let session = ChaosSession::install(faults);
    let finished = AtomicUsize::new(0);
    let recoveries = AtomicUsize::new(0);
    let lanes: Vec<LaneResult> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..N {
            let log = Arc::clone(log);
            let (finished, recoveries) = (&finished, &recoveries);
            handles.push(s.spawn(move || {
                let pid = ProcId(w);
                let progress = AtomicU64::new(0);
                let started = AtomicBool::new(false);
                let counted_done = AtomicBool::new(false);
                loop {
                    let outcome = run_as(pid, || {
                        let mut worker = if started.swap(true, Ordering::SeqCst) {
                            LogWorker::resumed(Arc::clone(&log), pid)
                        } else {
                            LogWorker::new(Arc::clone(&log), pid)
                        };
                        for r in progress.load(Ordering::SeqCst)..BATCHES {
                            worker.enqueue(&[w as u64 * 1000 + r + 1]);
                            worker.drive();
                            progress.store(r + 1, Ordering::SeqCst);
                        }
                        if !counted_done.swap(true, Ordering::SeqCst) {
                            finished.fetch_add(1, Ordering::SeqCst);
                        }
                        // Replicate everyone else's tail: quiescence is
                        // "all workers done and nothing decided beyond
                        // my applied prefix".
                        loop {
                            if !worker.pump() {
                                std::thread::yield_now();
                            }
                            if finished.load(Ordering::SeqCst) == N
                                && log.decision(worker.applied_len()).is_none()
                            {
                                break;
                            }
                        }
                        (worker.applied_log().to_vec(), *worker.state())
                    });
                    match outcome {
                        ThreadOutcome::Completed(lane) => return lane,
                        ThreadOutcome::Crashed => {
                            panic!("log schedules draw no permanent crash-stops")
                        }
                        ThreadOutcome::CrashedRecoverable(down) => {
                            recoveries.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(down);
                        }
                    }
                }
            }));
        }
        for rid in 0..REPLICAS {
            let log = Arc::clone(log);
            let finished = &finished;
            handles.push(s.spawn(move || {
                // Replicas run outside the chaos regime (faults target
                // worker pids); their lane still gates the floor.
                let mut replica = LogReplica::new(Arc::clone(&log), rid);
                loop {
                    if replica.poll() == 0 {
                        std::thread::sleep(Duration::from_micros(20));
                    }
                    if finished.load(Ordering::SeqCst) == N
                        && log.decision(replica.applied_len()).is_none()
                    {
                        break;
                    }
                }
                (replica.applied_log().to_vec(), *replica.state())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("a log chaos lane panicked"))
            .collect()
    });
    drop(session);
    (lanes, recoveries.load(Ordering::SeqCst))
}

/// The acceptance sweep: twenty seeded log schedules with stalls at
/// every timing-sensitive point and crash-recoveries confined to the
/// two log points — and on every seed, every lane applied the identical
/// full prefix, every acknowledged batch is in the log, and every
/// lane's state equals the register ground truth.
#[test]
fn seeded_log_schedules_never_diverge() {
    let mut total_recoveries = 0usize;
    for seed in 0..20u64 {
        let faults = random_schedule(seed, &ScheduleConfig::log(N, delta()));
        let log = chaos_log();
        let (lanes, recoveries) = drive_log_workload(&log, &faults);
        total_recoveries += recoveries;

        let lane_refs: Vec<&[tfr::log::AppliedEntry]> =
            lanes.iter().map(|(l, _)| l.as_slice()).collect();
        let audit = log.audit(&lane_refs);
        assert!(
            audit.converged(),
            "seed {seed}: lanes diverged: {:?}",
            audit.divergence
        );

        // Ground truth from the registers: what actually committed.
        let (truth, _) = log.truth();
        let committed: Vec<u64> = truth
            .iter()
            .flat_map(|e| log.batch(e.height, e.winner))
            .collect();
        let expected: u64 = committed.iter().sum();
        for (lane, (applied, state)) in lanes.iter().enumerate() {
            assert_eq!(
                applied.len(),
                truth.len(),
                "seed {seed}: lane {lane} stopped short of the full prefix"
            );
            assert_eq!(
                *state, expected,
                "seed {seed}: lane {lane} state diverged from the register truth"
            );
        }
        // Every acknowledged batch (the workload only advanced past a
        // batch once `drive` returned) is committed at least once.
        for w in 0..N as u64 {
            for r in 0..BATCHES {
                let tag = w * 1000 + r + 1;
                assert!(
                    committed.contains(&tag),
                    "seed {seed}: worker {w}'s acknowledged batch {r} is missing"
                );
            }
        }
    }
    assert!(
        total_recoveries >= 5,
        "the sweep must exercise mid-pipeline recovery (got {total_recoveries} restarts)"
    );
}

// ---------------------------------------------------------------------
// The same log over the quorum backend, through a partition
// ---------------------------------------------------------------------

/// `run_smr` is generic over the register space: the identical workload
/// that runs on native atomics runs over `tfr-net`'s ABD quorum
/// emulation — while a minority partition opens and heals mid-run,
/// i.e. across live height transitions.
#[test]
fn the_log_survives_a_minority_partition_on_the_quorum_backend() {
    let mut cfg = SmrConfig::new(0xD15C);
    cfg.workers = 2;
    cfg.replicas = 1;
    cfg.batches_per_worker = 4;
    cfg.batch = 2;
    cfg.window = 2;
    let net_cfg = NetConfig::new(cfg.log_config().lanes(), 3, 0x5eed);
    let net = Arc::new(Network::new(net_cfg));
    let control = net.control();
    let space = Arc::new(net.space());

    let report = std::thread::scope(|s| {
        s.spawn(|| {
            // Cut one replica off mid-run — the two-of-three quorum
            // keeps committing — then heal so it catches back up.
            std::thread::sleep(Duration::from_millis(3));
            control.partition_minority(1);
            std::thread::sleep(Duration::from_millis(8));
            control.heal();
        });
        tfr::log::run_smr(space, &cfg, Trace::default())
    });

    assert!(
        report.converged,
        "lanes diverged over the quorum backend: {:?}",
        report.divergence
    );
    assert!(report.state_ok, "replicated state diverged from expected");
    assert_eq!(report.commits, cfg.total_heights(), "batches lost");
}

// ---------------------------------------------------------------------
// Linearizability through the log
// ---------------------------------------------------------------------

/// Commits each worker's ops through a shared log (one op per batch),
/// recording real-time invoke/response intervals, and returns the
/// history for the checker.
fn record_log_history<T>(object: T, per_worker: Vec<Vec<u64>>) -> tfr::linearize::History
where
    T: Sequential + Send + Sync + 'static,
    T::State: Send,
{
    let n = per_worker.len();
    let cfg = LogConfig {
        n,
        replicas: 0,
        heights: 64,
        max_batch: 1,
        window: 4,
        delta: Duration::from_micros(20),
    };
    let log = Arc::new(ReplicatedLog::new(object, cfg));
    let recorder = Arc::new(Recorder::new(n));
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for (w, ops) in per_worker.iter().enumerate() {
            let log = Arc::clone(&log);
            let recorder = Arc::clone(&recorder);
            let finished = &finished;
            s.spawn(move || {
                let pid = ProcId(w);
                let mut worker = LogWorker::new(log.clone(), pid);
                for &op in ops {
                    let token = recorder.invoke(pid, 0, op);
                    worker.enqueue(&[op]);
                    worker.drive();
                    let resps = worker.take_responses();
                    let (committed, resp) = resps[0];
                    assert_eq!(committed, op);
                    recorder.response(pid, 0, token, resp);
                }
                finished.fetch_add(1, Ordering::SeqCst);
                // Keep the lane's floor moving until global quiescence.
                loop {
                    if !worker.pump() {
                        std::thread::yield_now();
                    }
                    if finished.load(Ordering::SeqCst) == n
                        && log.decision(worker.applied_len()).is_none()
                    {
                        break;
                    }
                }
            });
        }
    });
    assert_eq!(recorder.dropped(), 0, "history buffers overflowed");
    recorder.history()
}

/// Counter increments from three contending workers linearize: every
/// response is the post-increment total of some legal total order.
#[test]
fn counter_history_through_the_log_linearizes() {
    let per_worker: Vec<Vec<u64>> = (0..3)
        .map(|w| (1..=4).map(|i| w * 10 + i).collect())
        .collect();
    let h = record_log_history(Counter, per_worker);
    assert_eq!(h.completed(), 12);
    check_history(&h, &CounterModel).expect("log-committed counter must linearize");
}

/// Mixed enqueues and dequeues from two workers respect FIFO order
/// under some linearization.
#[test]
fn queue_history_through_the_log_linearizes() {
    let producer: Vec<u64> = (1..=5).map(FifoQueue::enqueue_op).collect();
    let consumer: Vec<u64> = vec![
        FifoQueue::enqueue_op(100),
        FifoQueue::DEQUEUE,
        FifoQueue::DEQUEUE,
        FifoQueue::DEQUEUE,
    ];
    let h = record_log_history(FifoQueue, vec![producer, consumer]);
    assert_eq!(h.completed(), 9);
    check_history(&h, &QueueModel).expect("log-committed queue must linearize");
}

/// Concurrent acquires through the log hand out distinct names inside
/// the namespace.
#[test]
fn renaming_history_through_the_log_linearizes() {
    let per_worker = vec![vec![0, 0], vec![0, 0], vec![0, 0]];
    let h = record_log_history(Renaming::new(8), per_worker);
    assert_eq!(h.completed(), 6);
    check_history(&h, &RenamingModel { n: 8 })
        .expect("log-committed renaming must hand out distinct names");
}

// ---------------------------------------------------------------------
// Model checking the log automaton
// ---------------------------------------------------------------------

/// The 2-height / 2-process log in spec form, exhaustively explored:
/// every interleaving agrees on the *packed pair* of height decisions —
/// which is per-height agreement plus identical assembly order at once
/// — and every packed value decodes to admissible per-height inputs.
/// No bound is hit, so the verdict is a proof.
#[test]
fn two_height_two_process_log_model_checks_safe() {
    let a = LogAutomaton::new(vec![false, true], 4);
    let spec = SafetySpec::consensus(a.valid_packed());
    let report = DporExplorer::new(a, 2).check(&spec);
    assert!(
        report.violation.is_none(),
        "the log automaton must be safe: {:?}",
        report.violation.map(|v| v.violation)
    );
    assert!(!report.truncated(), "the verdict must be a proof");
    assert!(report.states_explored > 1_000, "a real space was walked");
}

/// The 2-height / 3-process log under an explicit state budget: the
/// composed space squares the per-height one, so exhausting it is out
/// of reach — the verdict here is "no violation within the budget",
/// never mistaken for a proof (the truncation flag says so), but a
/// packed-pair disagreement anywhere in the first quarter-million
/// states would fail loudly.
#[test]
fn two_height_three_process_log_is_clean_within_budget() {
    let a = LogAutomaton::new(vec![false, true, true], 2);
    let spec = SafetySpec::consensus(a.valid_packed());
    let report = DporExplorer::new(a, 3).max_states(250_000).check(&spec);
    assert!(
        report.violation.is_none(),
        "3-process log violated within budget: {:?}",
        report.violation.map(|v| v.violation)
    );
    assert!(
        report.states_explored >= 250_000,
        "the budget must actually be spent (got {})",
        report.states_explored
    );
}

/// The seeded mutant — one process assembles the two height decisions
/// in the wrong order — is caught as disagreement on the packed value.
#[test]
fn log_automaton_assembly_mutant_is_caught() {
    let a = LogAutomaton::new(vec![false, true], 4).mutant();
    let spec = SafetySpec::consensus(a.valid_packed());
    let report = Explorer::new(a, 2).check(&spec);
    assert!(
        report.violation.is_some(),
        "swapped assembly order must violate packed agreement"
    );
}

// ---------------------------------------------------------------------
// The online prefix monitor, against the live mutant
// ---------------------------------------------------------------------

/// The [`ReorderingApplier`] is caught by **both** teeth while the run
/// is still in flight: the online `log` monitor flags the out-of-order
/// apply from the event stream, and the post-hoc register audit rejects
/// the lane — and a clean replica trips neither.
#[test]
fn online_monitor_and_audit_both_catch_the_reordering_applier() {
    let cfg = LogConfig {
        n: 1,
        replicas: 1,
        heights: 32,
        max_batch: 2,
        window: 4,
        delta: Duration::from_micros(10),
    };
    let tracer = Arc::new(Tracer::new(cfg.lanes()));
    let log =
        Arc::new(ReplicatedLog::new(Counter, cfg).with_trace(Trace::attached(Arc::clone(&tracer))));
    let mut bank = MonitorBank::new();
    let mut cursor = DrainCursor::new();
    let mut buf = Vec::new();

    with_pid(ProcId(0), || {
        let mut w = LogWorker::new(Arc::clone(&log), ProcId(0));
        let mut bad = ReorderingApplier::new(Arc::clone(&log), 0, 0xBAD5EED);
        for b in 0..10u64 {
            w.enqueue(&[b + 1]);
        }
        let mut i = 0u32;
        while w.pending() > 0 || w.applied_len() < 10 {
            w.pump();
            if i.is_multiple_of(4) {
                bad.poll();
            }
            i += 1;
            // Drain *while running*: this is the online path, not a
            // post-mortem scan.
            tracer.drain_new(&mut cursor, &mut buf);
            for e in buf.drain(..) {
                bank.observe(&e);
            }
        }
        bad.poll();
        assert!(bad.fired(), "the seeded swap must fire");

        tracer.drain_new(&mut cursor, &mut buf);
        for e in buf.drain(..) {
            bank.observe(&e);
        }
        bank.finalize();
        assert!(!bank.clean(), "the monitor must flag the mutant");
        assert!(
            bank.violations().iter().any(|v| v.monitor == "log"),
            "the flag must come from the log prefix monitor: {:?}",
            bank.violations()
        );

        let audit = log.audit(&[w.applied_log(), bad.applied_log()]);
        assert!(!audit.converged(), "the audit must also reject the lane");
        assert!(!audit.in_order, "the defect is an ordering violation");
    });
}

/// The same pipeline with an honest replica stays clean: no false
/// positives from the prefix monitor.
#[test]
fn online_monitor_stays_clean_on_an_honest_run() {
    let cfg = LogConfig {
        n: 1,
        replicas: 1,
        heights: 32,
        max_batch: 2,
        window: 4,
        delta: Duration::from_micros(10),
    };
    let tracer = Arc::new(Tracer::new(cfg.lanes()));
    let log =
        Arc::new(ReplicatedLog::new(Counter, cfg).with_trace(Trace::attached(Arc::clone(&tracer))));
    with_pid(ProcId(0), || {
        let mut w = LogWorker::new(Arc::clone(&log), ProcId(0));
        let mut r = LogReplica::new(Arc::clone(&log), 0);
        for b in 0..8u64 {
            w.enqueue(&[b + 1]);
        }
        while w.pending() > 0 || w.applied_len() < 8 {
            w.pump();
            r.poll();
        }
        r.poll();
        let audit = log.audit(&[w.applied_log(), r.applied_log()]);
        assert!(audit.converged());
    });
    let mut bank = MonitorBank::new();
    let mut cursor = DrainCursor::new();
    let mut buf = Vec::new();
    tracer.drain_new(&mut cursor, &mut buf);
    for e in &buf {
        bank.observe(e);
    }
    bank.finalize();
    assert!(bank.clean(), "honest run flagged: {:?}", bank.violations());
}
