//! End-to-end observability tests: the causal span tree of a client op
//! on the network backend (walked through the exported Perfetto JSON),
//! online monitors catching a seeded combiner mutant *while it runs* and
//! a real Fischer mutual-exclusion violation under the chaos nemesis,
//! and ring-overflow counts surfaced end-to-end in the JSON summary.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tfr::chaos::nemesis::violation_setup_from_seed;
use tfr::chaos::{run_mutex_chaos_observed, MutexChaosConfig};
use tfr::core::mutex::fischer::Fischer;
use tfr::net::{NetConfig, Network};
use tfr::obs::{Collector, CollectorConfig};
use tfr::registers::ProcId;
use tfr::service::load::{run_load, run_load_native, CombinerKind, LoadConfig};
use tfr::telemetry::summary::run_summary_json;
use tfr::telemetry::{convergence_from_events, ChromeTraceBuilder, EventKind, Json, Trace, Tracer};

/// One client op through the sharded service over the ABD quorum backend
/// yields a *connected* causal span tree in the exported Perfetto JSON:
/// every `quorum.phase1`/`quorum.phase2` slice walks up its parent links
/// to a `client.op` root, and the client↔replica message hops appear as
/// paired flow arrows.
#[test]
fn net_backend_client_op_exports_a_connected_span_tree() {
    let net_cfg = NetConfig::new(1, 3, 0x0b5e);
    let tracer = Arc::new(Tracer::new(net_cfg.tracer_processes()));
    let net = Arc::new(Network::with_trace(
        net_cfg,
        Trace::attached(Arc::clone(&tracer)),
    ));
    // A single client, a single op: one `client.op` root span.
    let cfg = LoadConfig {
        ops_per_client: 1,
        burst: 1,
        delta: Duration::from_micros(200),
        ..LoadConfig::new(1, 1, 1)
    };
    let report = run_load(
        Arc::new(net.space()),
        &cfg,
        &Trace::attached(Arc::clone(&tracer)),
    );
    assert!(report.state_ok && report.audit_complete, "workload correct");
    assert_eq!(report.ops, 1);
    drop(net); // quiesce the router before reading the rings

    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0, "nothing may be dropped in this test");
    let mut builder = ChromeTraceBuilder::new();
    builder.add_run("net single op", &events);
    let parsed = Json::parse(&builder.render()).expect("exporter emits valid JSON");
    let track = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Index every causal slice: span id → (label, parent id).
    let mut slices: BTreeMap<u64, (String, u64)> = BTreeMap::new();
    for ev in track {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let (Some(args), Some(name)) = (ev.get("args"), ev.get("name").and_then(Json::as_str))
        else {
            continue;
        };
        if let (Some(span), Some(parent)) = (
            args.get("span").and_then(Json::as_num),
            args.get("parent").and_then(Json::as_num),
        ) {
            slices.insert(span as u64, (name.to_string(), parent as u64));
        }
    }

    // Every quorum phase must walk its parent links to a root without
    // dangling — that is the tree being *connected* — and the client
    // op's phases must climb the whole chain: quorum.phase* →
    // quorum.read/write → consensus → batch.drive → client.op. (Setup
    // and audit ops run outside the worker loop, so their quorum ops
    // legitimately root at the quorum span itself.)
    let mut phases = 0;
    let mut full_chains = 0;
    for (span, (label, _)) in &slices {
        if label != "quorum.phase1" && label != "quorum.phase2" {
            continue;
        }
        phases += 1;
        let mut at = *span;
        let mut path = vec![label.clone()];
        loop {
            let (_, parent) = slices[&at];
            if parent == 0 {
                break;
            }
            let (plabel, _) = slices
                .get(&parent)
                .unwrap_or_else(|| panic!("span {at} has a dangling parent {parent}"))
                .clone();
            path.push(plabel);
            at = parent;
        }
        assert!(
            path.iter()
                .any(|l| l == "quorum.read" || l == "quorum.write"),
            "phase span {span} must nest inside a quorum op, walked {path:?}"
        );
        if path.last().map(String::as_str) == Some("client.op")
            && path.iter().any(|l| l == "consensus")
        {
            full_chains += 1;
        }
    }
    assert!(phases >= 2, "a quorum op runs at least two phases");
    assert!(
        full_chains >= 2,
        "the client op's consensus round must reach the quorum phases \
         through a connected chain rooted at client.op"
    );
    // The batching layers are on the same tree.
    for required in ["client.op", "client.enqueue", "batch.drive", "consensus"] {
        assert!(
            slices.values().any(|(l, _)| l == required),
            "the tree must contain a {required} span"
        );
    }

    // Client↔replica hops: every flow start has a matching finish.
    let mut starts = Vec::new();
    let mut finishes = Vec::new();
    for ev in track {
        let id = ev.get("id").and_then(Json::as_num);
        match ev.get("ph").and_then(Json::as_str) {
            Some("s") => starts.push(id),
            Some("f") => finishes.push(id),
            _ => {}
        }
    }
    assert!(starts.len() >= 2, "message hops must produce flow arrows");
    assert_eq!(starts, finishes, "every flow start pairs with a finish");
}

/// The batch monitor catches the seeded reordering mutant *while the
/// load is still running* (the live flag flips mid-run), not just in the
/// post-mortem — and names the right monitor.
#[test]
fn online_monitors_flag_the_reordering_mutant_during_the_run() {
    let cfg = LoadConfig {
        combiner: CombinerKind::Reordering,
        ops_per_client: 16,
        delta: Duration::from_micros(20),
        ..LoadConfig::new(4_096, 4, 4)
    };
    let tracer = Arc::new(Tracer::with_capacity(cfg.workers, 1 << 16));
    let collector = Collector::spawn(
        Arc::clone(&tracer),
        CollectorConfig {
            poll_interval: Duration::from_micros(500),
            window: Duration::from_millis(100),
        },
    );
    run_load_native(&cfg, &Trace::attached(Arc::clone(&tracer)));
    let obs = collector.finish();
    assert!(!obs.clean(), "the mutant must be flagged");
    assert!(
        obs.violations.iter().all(|v| v.monitor == "batch"),
        "the duplicate (shard, slot) commits are a batch-monitor matter: {:?}",
        obs.violations.first()
    );
    assert!(
        obs.flagged_live,
        "the violation must be flagged while the run is going \
         ({} violations, {} polls)",
        obs.violations.len(),
        obs.polls
    );
}

/// The same load shape with the real combiner stays CLEAN — the flag in
/// the test above is the monitor's doing, not the harness's.
#[test]
fn online_monitors_stay_clean_on_the_real_combiner() {
    let cfg = LoadConfig {
        ops_per_client: 16,
        delta: Duration::from_micros(20),
        ..LoadConfig::new(4_096, 4, 4)
    };
    let tracer = Arc::new(Tracer::with_capacity(cfg.workers, 1 << 16));
    let collector = Collector::spawn(Arc::clone(&tracer), CollectorConfig::default());
    let report = run_load_native(&cfg, &Trace::attached(Arc::clone(&tracer)));
    let obs = collector.finish();
    assert!(report.state_ok && report.audit_complete);
    assert!(obs.clean(), "fault-free run: {:?}", obs.violations);
    assert!(!obs.flagged_live);
    assert_eq!(obs.batches, report.batches);
}

/// The mutex monitor re-detects the paper's §2 headline independently:
/// a seeded stall breaks native Fischer on real threads, and the online
/// monitor — watching only the lock's own trace events — flags the
/// intrusion that the chaos harness's intruder counter reports.
#[test]
fn mutex_monitor_redetects_the_fischer_violation() {
    let mut detected = false;
    for seed in 0x0b5eed..0x0b5eed + 16u64 {
        let setup = violation_setup_from_seed(seed);
        let tracer = Arc::new(Tracer::new(setup.config.n));
        let lock = Fischer::new(setup.config.n, setup.delta)
            .with_trace(Trace::attached(Arc::clone(&tracer)));
        let (report, obs) = run_mutex_chaos_observed(
            &lock,
            &setup.config,
            &setup.faults,
            &tracer,
            CollectorConfig {
                poll_interval: Duration::from_millis(1),
                window: Duration::from_millis(100),
            },
        );
        if !report.mutual_exclusion_violated() {
            continue; // this seed's schedule lost the race — try the next
        }
        assert!(
            !obs.clean(),
            "seed {seed}: the harness saw {} intruders but the monitor \
             stayed clean",
            report.intrusions
        );
        assert!(
            obs.violations.iter().any(|v| v.monitor == "mutex"),
            "seed {seed}: the intrusion is a mutex-monitor matter: {:?}",
            obs.violations.first()
        );
        detected = true;
        break;
    }
    assert!(detected, "no seed in the window broke Fischer — unexpected");
}

/// Ring overflow is reported end-to-end: a deliberately tiny ring drops
/// events, and the count survives into the machine-readable summary.
#[test]
fn ring_overflow_counts_reach_the_json_summary() {
    let tracer = Arc::new(Tracer::with_capacity(1, 4));
    let trace = Trace::attached(Arc::clone(&tracer));
    for _ in 0..20 {
        trace.emit(ProcId(0), EventKind::LockReleased);
    }
    let events = tracer.events();
    assert_eq!(events.len(), 4, "the ring keeps its capacity");
    assert_eq!(tracer.dropped(), 16);

    let convergence = convergence_from_events(&events, 0);
    let summary = run_summary_json(
        "overflow probe",
        1,
        0,
        0,
        &events,
        tracer.dropped(),
        &convergence,
    );
    let parsed = Json::parse(&summary.to_string()).expect("summary is valid JSON");
    assert_eq!(
        parsed.get("dropped_events").and_then(Json::as_num),
        Some(16.0),
        "the overflow count must survive into the summary"
    );

    // …and the same count flows through the live collector's report.
    let collector = Collector::spawn(Arc::clone(&tracer), CollectorConfig::default());
    let obs = collector.finish();
    assert_eq!(obs.dropped, 16);
    assert_eq!(
        obs.to_json().get("dropped_events").and_then(Json::as_num),
        Some(16.0)
    );
}

/// `MutexChaosConfig` sanity for the observed wrapper: the default
/// workload over the resilient stack runs CLEAN under the monitors.
#[test]
fn observed_wrapper_is_clean_on_a_fault_free_mutex_run() {
    let n = 2;
    let delta = Duration::from_micros(200);
    let tracer = Arc::new(Tracer::new(n));
    let lock = Fischer::new(n, delta).with_trace(Trace::attached(Arc::clone(&tracer)));
    let cfg = MutexChaosConfig {
        n,
        iterations: 8,
        cs_hold: Duration::from_micros(50),
        ncs_hold: Duration::from_micros(50),
    };
    let (report, obs) =
        run_mutex_chaos_observed(&lock, &cfg, &[], &tracer, CollectorConfig::default());
    assert!(!report.mutual_exclusion_violated());
    assert!(obs.clean(), "no faults, no flags: {:?}", obs.violations);
    assert_eq!(obs.events as usize, tracer.events().len());
}
