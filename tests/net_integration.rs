//! Acceptance: the paper's algorithms run **unchanged** over the quorum
//! backend (`tfr-net`), under a seeded network fault schedule, with three
//! oracles watching — mutual exclusion, consensus agreement/validity, and
//! register-level linearizability of the ABD emulation itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfr::asynclock::RawLock;
use tfr::chaos::netfault::{apply_net_schedule, random_net_schedule};
use tfr::core::consensus::NativeConsensus;
use tfr::core::mutex::resilient::ResilientMutex;
use tfr::linearize::register::{RecordingSpace, RegisterModel};
use tfr::linearize::{check_history, Recorder};
use tfr::net::{NetConfig, Network};
use tfr::registers::space::SubSpace;
use tfr::registers::ProcId;
use tfr::telemetry::with_pid;

const LOCK_WORKERS: usize = 2;
const PROPOSERS: usize = 3;

#[test]
fn algorithms_survive_a_seeded_partition_schedule_over_quorum_registers() {
    let seed = 13; // drops + a minority cut + a client-isolating cut
    let mut cfg = NetConfig::new(LOCK_WORKERS + PROPOSERS, 5, seed);
    cfg.retransmit = Duration::from_micros(300);
    let net = Arc::new(Network::new(cfg));

    let recorder = Arc::new(Recorder::new(LOCK_WORKERS + PROPOSERS));
    let space = Arc::new(RecordingSpace::new(net.space(), Arc::clone(&recorder)));
    let delta = Duration::from_micros(500);
    let lock = Arc::new(ResilientMutex::standard_on(
        SubSpace::new(Arc::clone(&space), 0, 2),
        LOCK_WORKERS,
        delta,
    ));
    let consensus = Arc::new(NativeConsensus::on(
        SubSpace::new(Arc::clone(&space), 1, 2),
        delta,
    ));

    let schedule = random_net_schedule(seed, net.config());
    let control = net.control();
    let in_cs = Arc::new(AtomicU64::new(0));
    let max_in_cs = Arc::new(AtomicU64::new(0));

    let mut decisions = Vec::new();
    std::thread::scope(|s| {
        s.spawn(|| apply_net_schedule(&control, &schedule));
        for i in 0..LOCK_WORKERS {
            let (lock, in_cs, max_in_cs) = (
                Arc::clone(&lock),
                Arc::clone(&in_cs),
                Arc::clone(&max_in_cs),
            );
            s.spawn(move || {
                with_pid(ProcId(i), || {
                    for _ in 0..3 {
                        lock.lock(ProcId(i));
                        let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_in_cs.fetch_max(now, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock(ProcId(i));
                    }
                })
            });
        }
        let proposer_handles: Vec<_> = (0..PROPOSERS)
            .map(|i| {
                let consensus = Arc::clone(&consensus);
                s.spawn(move || {
                    with_pid(ProcId(LOCK_WORKERS + i), || consensus.propose(i % 2 == 1))
                })
            })
            .collect();
        decisions = proposer_handles
            .into_iter()
            .map(|h| h.join().expect("proposer panicked"))
            .collect();
    });

    // Oracle 1: mutual exclusion, through every partition.
    assert_eq!(max_in_cs.load(Ordering::SeqCst), 1, "two threads in the CS");

    // Oracle 2: agreement and validity.
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    assert_eq!(consensus.decision(), Some(decisions[0]));

    // Oracle 3: the emulated registers linearize as atomic registers.
    assert_eq!(recorder.dropped(), 0, "history buffers overflowed");
    let history = recorder.history();
    assert!(!history.is_empty());
    check_history(&history, &RegisterModel)
        .expect("ABD registers must linearize under the partition schedule");
}

#[test]
fn the_same_lock_object_works_on_both_backends() {
    // `standard` (native atomics) and `standard_on` (quorum registers)
    // build the *same* generic type — only the space differs.
    let delta = Duration::from_micros(200);
    let native = ResilientMutex::standard(2, delta);
    let net = Arc::new(Network::new(NetConfig::new(2, 3, 1)));
    let quorum = ResilientMutex::standard_on(net.space(), 2, delta);

    for lock in [&native as &dyn RawLock, &quorum as &dyn RawLock] {
        lock.lock(ProcId(0));
        lock.unlock(ProcId(0));
    }
}
