//! End-to-end tests of the verification stack: the paper's theorems
//! checked exhaustively through `tfr_core::verify`, the reduced
//! explorers cross-validated against the naive one on a random corpus,
//! budget semantics that never mistake truncation for proof, the
//! parallel frontier's determinism, and the model-checker ↔
//! linearizability-checker cross-examination.

use std::time::Duration;
use tfr::asynclock::workload::LockLoop;
use tfr::core::verify::{
    consensus_safety_spec, consensus_workload, fischer_counterexample, fischer_workload,
    resilient_workload, verify_consensus, verify_resilient_mutex,
};
use tfr::linearize::mutants::SplitTasSpec;
use tfr::linearize::{check_history, lock_history_from_schedule, LockModel};
use tfr::modelcheck::{
    corpus, replay_schedule, sample_execution, DporExplorer, Explorer, ParallelExplorer, SafetySpec,
};

// ---------------------------------------------------------------------
// The theorems, verified exhaustively
// ---------------------------------------------------------------------

/// Theorems 2.2 + 2.3 for n = 3: agreement and validity of Algorithm 1
/// hold on *every* interleaving — and all interleavings is exactly what
/// arbitrary timing failures can produce.
#[test]
fn theorem_2_2_and_2_3_consensus_n3_exhaustive() {
    let report = verify_consensus(&[false, true, true], 2);
    assert!(
        report.proven_safe(),
        "{:?}",
        report.violation.map(|v| v.violation)
    );
    assert!(
        report.states_explored > 1000,
        "a real state space was walked"
    );
}

/// Algorithm 3's mutual exclusion for n = 2, fully exhausted: the
/// explored space fits well under the depth bound, so the verdict is a
/// proof, not a bounded search.
#[test]
fn algorithm_3_mutual_exclusion_n2_exhaustive() {
    let report = verify_resilient_mutex(2, 100_000);
    assert!(
        report.proven_safe(),
        "{:?}",
        report.violation.map(|v| v.violation)
    );
    assert!(!report.truncated());
}

/// The §3.1 negative result: Fischer's lock breaks, and the
/// counterexample replays at the model level.
#[test]
fn fischer_counterexample_exists_and_replays() {
    let cex = fischer_counterexample(2).expect("Fischer must break under timing failures");
    let replayed = replay_schedule(&fischer_workload(2), 2, &SafetySpec::mutex(), &cex.schedule);
    assert_eq!(replayed.as_ref(), Some(&cex.violation));
}

// ---------------------------------------------------------------------
// Differential soundness: reduced explorers vs ground truth
// ---------------------------------------------------------------------

/// DPOR + symmetry must return the same verdict as the unreduced
/// explorer on every corpus program. A reduction that prunes a violating
/// interleaving is unsound; one that invents a violation is broken —
/// violations must also replay.
#[test]
fn reduced_explorers_agree_with_naive_on_random_corpus() {
    for seed in 0..120 {
        let case = corpus::generate(seed);
        let truth = Explorer::new(case.automaton.clone(), case.n).check(&case.spec);
        let reduced = DporExplorer::new(case.automaton.clone(), case.n).check(&case.spec);
        assert_eq!(
            truth.violation.is_some(),
            reduced.violation.is_some(),
            "seed {seed}: DPOR verdict diverged from ground truth"
        );
        if let Some(cex) = &reduced.violation {
            let replayed = replay_schedule(&case.automaton, case.n, &case.spec, &cex.schedule);
            assert_eq!(
                replayed.as_ref(),
                Some(&cex.violation),
                "seed {seed}: reduced counterexample must replay"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Budget semantics: truncation is never proof
// ---------------------------------------------------------------------

/// A depth-cut exploration reports `depth_truncated` and refuses
/// `proven_safe`, whatever it saw.
#[test]
fn depth_truncation_never_proves_safety() {
    let report = DporExplorer::new(consensus_workload(&[false, true], 3), 2)
        .max_depth(4)
        .check(&consensus_safety_spec(&[false, true]));
    assert!(report.violation.is_none());
    assert!(report.depth_truncated);
    assert!(report.truncated());
    assert!(!report.exhausted());
    assert!(!report.proven_safe(), "a bounded search is not a proof");
}

/// Same for the state budget, on the naive and parallel explorers.
#[test]
fn state_budget_truncation_never_proves_safety() {
    let spec = consensus_safety_spec(&[false, true]);
    let naive = Explorer::new(consensus_workload(&[false, true], 3), 2)
        .max_states(50)
        .check(&spec);
    assert!(naive.states_truncated && !naive.proven_safe());
    let parallel = ParallelExplorer::new(consensus_workload(&[false, true], 3), 2)
        .max_states(50)
        .check(&spec);
    assert!(parallel.states_truncated && !parallel.proven_safe());
}

// ---------------------------------------------------------------------
// Parallel frontier: deterministic across thread counts
// ---------------------------------------------------------------------

/// The parallel explorer's counts and chosen counterexample are a pure
/// function of the automaton, not of the thread schedule.
#[test]
fn parallel_exploration_deterministic_across_threads() {
    let baseline = ParallelExplorer::new(fischer_workload(2), 2)
        .threads(1)
        .check(&SafetySpec::mutex());
    let cex = baseline.violation.as_ref().expect("Fischer breaks");
    for threads in [2, 4, 8] {
        let report = ParallelExplorer::new(fischer_workload(2), 2)
            .threads(threads)
            .check(&SafetySpec::mutex());
        assert_eq!(
            (report.states_explored, report.transitions),
            (baseline.states_explored, baseline.transitions),
            "threads={threads}: exploration counts must not depend on parallelism"
        );
        assert_eq!(
            report.violation.as_ref().map(|c| &c.schedule),
            Some(&cex.schedule),
            "threads={threads}: the selected counterexample must be deterministic"
        );
    }
}

// ---------------------------------------------------------------------
// Cross-checker: explorer tier ↔ Wing–Gong tier
// ---------------------------------------------------------------------

/// Histories of explorer-visited executions of a *safe* lock pass the
/// linearizability checker against the sequential lock model.
#[test]
fn safe_lock_executions_linearize() {
    let workload = resilient_workload(2);
    for seed in [0, 1, 7] {
        let schedule = sample_execution(&workload, 2, seed, 400);
        let history = lock_history_from_schedule(&workload, 2, &schedule);
        assert!(!history.is_empty());
        assert!(
            check_history(&history, &LockModel).is_ok(),
            "seed {seed}: safe-lock history must linearize"
        );
    }
}

/// The seeded split test-and-set mutant is rejected by BOTH tiers: the
/// explorer finds the mutual exclusion violation, and the violating
/// execution's history fails Wing–Gong against the lock model.
#[test]
fn split_tas_mutant_rejected_by_both_tiers() {
    let workload = LockLoop::new(SplitTasSpec::new(2), 1);

    // Tier 1: exhaustive exploration finds the lost exclusion.
    let report = DporExplorer::new(workload.clone(), 2).check(&SafetySpec::mutex());
    let cex = report
        .violation
        .expect("the split TAS must lose mutual exclusion");

    // Tier 2: the same execution, read as a concurrent history, has two
    // completed acquires with no release — non-linearizable.
    let history = lock_history_from_schedule(&workload, 2, &cex.schedule);
    assert!(
        check_history(&history, &LockModel).is_err(),
        "the Wing–Gong tier must reject the violating execution too"
    );
}

// ---------------------------------------------------------------------
// Cross-stack: abstract counterexample → native violation
// ---------------------------------------------------------------------

/// The model-level Fischer counterexample compiles to a native fault
/// schedule that reproduces the violation on real threads (the full
/// pipeline also runs in `tests/chaos_integration.rs`).
#[test]
fn fischer_counterexample_compiles_to_native_faults() {
    use tfr::chaos::fischer_faults_from_counterexample;
    use tfr::core::mutex::fischer::FischerSpec;
    use tfr::registers::{RegId, Ticks};

    let cex = fischer_counterexample(2).expect("Fischer must break");
    let x: RegId = FischerSpec::new(2, 0, Ticks(100)).x();
    let compiled = fischer_faults_from_counterexample(&cex, 2, x, Duration::from_micros(500));
    assert_eq!(compiled.config.n, 2);
    assert_eq!(compiled.config.iterations, 1);
    assert!(
        !compiled.faults.is_empty(),
        "a racing schedule needs at least one ordering stall"
    );
    assert!(
        compiled.config.cs_hold > Duration::from_millis(50),
        "the winner must dwell long enough for the intruder to arrive"
    );
}
