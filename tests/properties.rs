//! Property-based tests over the whole stack: randomized timing models,
//! inputs, and workloads must never shake a safety property loose.

use proptest::prelude::*;
use tfr::asynclock::bakery::BakerySpec;
use tfr::asynclock::bar_david::StarvationFreeSpec;
use tfr::asynclock::bw_bakery::BwBakerySpec;
use tfr::asynclock::lamport_fast::LamportFastSpec;
use tfr::asynclock::peterson::PetersonSpec;
use tfr::asynclock::workload::LockLoop;
use tfr::core::consensus::ConsensusSpec;
use tfr::core::mutex::resilient::standard_resilient_spec;
use tfr::registers::spec::Obs;
use tfr::registers::{Delta, ProcId, Ticks};
use tfr::sim::metrics::{consensus_stats, mutex_stats};
use tfr::sim::timing::{CrashSchedule, UniformAccess};
use tfr::sim::{RunConfig, Sim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement and validity of Algorithm 1 hold for arbitrary process
    /// counts, inputs, timing distributions (including failure-heavy
    /// ones), and crash schedules.
    #[test]
    fn consensus_safety_under_arbitrary_timing_and_crashes(
        n in 1usize..6,
        inputs_seed in any::<u64>(),
        timing_seed in any::<u64>(),
        hi in 20u64..1000,
        crash in proptest::option::of((0usize..6, 0u64..2000)),
    ) {
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let valid: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let base = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let crashes = crash
            .into_iter()
            .filter(|(p, _)| *p < n)
            .map(|(p, t)| (ProcId(p), Ticks(t)))
            .collect();
        let model = CrashSchedule::new(base, crashes);
        let config = RunConfig::new(n, d).max_steps(50_000);
        let result = Sim::new(ConsensusSpec::new(inputs).max_rounds(30), config, model).run();
        let stats = consensus_stats(&result);
        prop_assert!(stats.agreement);
        prop_assert!(stats.valid_against(&valid));
    }

    /// When the timing constraints hold (durations ≤ Δ), Algorithm 1
    /// always terminates within the 15Δ bound.
    #[test]
    fn consensus_terminates_within_bound_when_constraints_hold(
        n in 1usize..8,
        inputs_seed in any::<u64>(),
        timing_seed in any::<u64>(),
    ) {
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let model = UniformAccess::new(Ticks(1), d.ticks(), timing_seed);
        let result = Sim::new(
            ConsensusSpec::new(inputs).with_delta(d.ticks()),
            RunConfig::new(n, d),
            model,
        ).run();
        let stats = consensus_stats(&result);
        prop_assert!(stats.agreement);
        let t = stats.all_decided_by;
        prop_assert!(t.is_some(), "must decide without failures");
        prop_assert!(t.unwrap() <= d.times(15), "decided at {} > 15Δ", t.unwrap());
    }

    /// Mutual exclusion of Algorithm 3 holds under arbitrary random
    /// timing, and so does the per-process workload event discipline
    /// (trying → critical → exit → remainder, cyclically).
    #[test]
    fn resilient_mutex_safety_and_event_discipline(
        n in 1usize..5,
        timing_seed in any::<u64>(),
        hi in 20u64..600,
        cs in 1u64..60,
        ncs in 1u64..60,
    ) {
        let d = Delta::from_ticks(100);
        let automaton = LockLoop::new(standard_resilient_spec(n, 0, d.ticks()), 3)
            .cs_ticks(Ticks(cs))
            .ncs_ticks(Ticks(ncs));
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let result = Sim::new(automaton, RunConfig::new(n, d), model).run();
        prop_assert!(result.all_halted(), "random fair schedules must complete");
        let stats = mutex_stats(&result, Ticks::ZERO);
        prop_assert!(!stats.mutual_exclusion_violated);
        prop_assert_eq!(stats.cs_entries, n as u64 * 3);

        // Event discipline per process.
        for p in 0..n {
            let seq: Vec<Obs> = result
                .obs
                .iter()
                .filter(|e| e.pid == ProcId(p))
                .filter(|e| matches!(
                    e.obs,
                    Obs::EnterTrying | Obs::EnterCritical | Obs::ExitCritical | Obs::EnterRemainder
                ))
                .map(|e| e.obs)
                .collect();
            let expected = [
                Obs::EnterTrying,
                Obs::EnterCritical,
                Obs::ExitCritical,
                Obs::EnterRemainder,
            ];
            prop_assert_eq!(seq.len(), 12, "3 iterations × 4 phase events");
            for (i, o) in seq.iter().enumerate() {
                prop_assert_eq!(*o, expected[i % 4], "process {} event {} out of phase", p, i);
            }
        }
    }

    /// Every asynchronous lock in the zoo is safe and live under arbitrary
    /// random timing (they make no timing assumptions at all).
    #[test]
    fn async_lock_zoo_safety(
        which in 0usize..5,
        n in 1usize..5,
        timing_seed in any::<u64>(),
        hi in 20u64..600,
    ) {
        let d = Delta::from_ticks(100);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d);
        let result = match which {
            0 => Sim::new(LockLoop::new(LamportFastSpec::new(n, 0), 3), config, model).run(),
            1 => Sim::new(LockLoop::new(BakerySpec::new(n, 0), 3), config, model).run(),
            2 => Sim::new(LockLoop::new(BwBakerySpec::new(n, 0), 3), config, model).run(),
            3 => Sim::new(LockLoop::new(PetersonSpec::new(n, 0), 3), config, model).run(),
            _ => Sim::new(
                LockLoop::new(
                    StarvationFreeSpec::<LamportFastSpec>::over_lamport_fast(n, 0),
                    3,
                ),
                config,
                model,
            )
            .run(),
        };
        prop_assert!(result.all_halted());
        let stats = mutex_stats(&result, Ticks::ZERO);
        prop_assert!(!stats.mutual_exclusion_violated);
        prop_assert_eq!(stats.cs_entries, n as u64 * 3);
    }

    /// Simulation runs are exactly reproducible from their seed.
    #[test]
    fn simulation_is_deterministic(n in 1usize..5, seed in any::<u64>()) {
        let d = Delta::from_ticks(100);
        let run = || {
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let model = UniformAccess::new(Ticks(10), Ticks(300), seed);
            Sim::new(
                ConsensusSpec::new(inputs).max_rounds(30),
                RunConfig::new(n, d).max_steps(50_000),
                model,
            ).run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.obs, b.obs);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.end_time, b.end_time);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bounded-failure consensus: whenever the failure window actually
    /// respects the promised bound B, every process decides within the
    /// finite round/register budget.
    #[test]
    fn bounded_consensus_decides_within_promise(
        bound_deltas in 0u64..6,
        inputs_seed in any::<u64>(),
        timing_seed in any::<u64>(),
        slow_pid in 0usize..3,
    ) {
        use tfr::core::bounded::BoundedConsensusSpec;
        use tfr::sim::timing::{FailureWindows, Window};
        let d = Delta::from_ticks(100);
        let bound = Ticks(d.ticks().0 * bound_deltas);
        let inputs: Vec<bool> = (0..3).map(|i| (inputs_seed >> i) & 1 == 1).collect();
        let spec = BoundedConsensusSpec::new(inputs.clone(), bound, d);
        let model = FailureWindows::new(
            UniformAccess::new(Ticks(10), d.ticks(), timing_seed),
            vec![Window {
                from: Ticks::ZERO,
                to: bound,
                pids: Some(vec![ProcId(slow_pid)]),
                inflated: Ticks(350),
            }],
        );
        let result = Sim::new(spec, RunConfig::new(3, d), model).run();
        let stats = consensus_stats(&result);
        prop_assert!(stats.agreement);
        prop_assert!(
            stats.all_decided_by.is_some(),
            "failures within the bound ⇒ the finite budget must suffice"
        );
        let gave_up = result
            .events(|o| match o {
                Obs::Note("round-bound-exceeded", r) => Some(*r),
                _ => None,
            })
            .count();
        prop_assert_eq!(gave_up, 0);
    }

    /// Spec-form leader election: under arbitrary random timing (failures
    /// included), whoever elects agrees on one real participant.
    #[test]
    fn election_spec_safety(
        n in 1usize..5,
        timing_seed in any::<u64>(),
        hi in 20u64..600,
    ) {
        use tfr::core::election_spec::ElectionSpec;
        let d = Delta::from_ticks(100);
        let spec = ElectionSpec::new(n, 0, d.ticks()).inner_rounds(30);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d).max_steps(300_000);
        let result = Sim::new(spec, config, model).run();
        let stats = consensus_stats(&result);
        prop_assert!(stats.agreement);
        if let Some(leader) = stats.decided_value {
            prop_assert!(leader < n as u64, "the leader must be a participant");
        }
    }

    /// AAT baseline safety matches Algorithm 1 under the same adversaries.
    #[test]
    fn aat_safety_under_arbitrary_timing(
        n in 1usize..5,
        inputs_seed in any::<u64>(),
        timing_seed in any::<u64>(),
        hi in 20u64..800,
        initial in 1u64..200,
    ) {
        use tfr::baselines::aat::{AatConsensusSpec, DelaySchedule};
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let valid: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let spec = AatConsensusSpec::new(inputs, DelaySchedule::doubling(Ticks(initial)))
            .max_rounds(30);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d).max_steps(100_000);
        let result = Sim::new(spec, config, model).run();
        let stats = consensus_stats(&result);
        prop_assert!(stats.agreement);
        prop_assert!(stats.valid_against(&valid));
    }
}
