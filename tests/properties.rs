//! Property-based tests over the whole stack: randomized timing models,
//! inputs, and workloads must never shake a safety property loose.
//!
//! Each test draws its cases from a fixed-seed [`SplitMix64`] stream, so
//! any failure replays exactly; the case index is included in assertion
//! messages for bisection.

use tfr::asynclock::bakery::BakerySpec;
use tfr::asynclock::bar_david::StarvationFreeSpec;
use tfr::asynclock::bw_bakery::BwBakerySpec;
use tfr::asynclock::lamport_fast::LamportFastSpec;
use tfr::asynclock::peterson::PetersonSpec;
use tfr::asynclock::workload::LockLoop;
use tfr::core::consensus::ConsensusSpec;
use tfr::core::mutex::resilient::standard_resilient_spec;
use tfr::registers::rng::SplitMix64;
use tfr::registers::spec::Obs;
use tfr::registers::{Delta, ProcId, Ticks};
use tfr::sim::metrics::{consensus_stats, mutex_stats};
use tfr::sim::timing::{CrashSchedule, UniformAccess};
use tfr::sim::{RunConfig, Sim};

/// Agreement and validity of Algorithm 1 hold for arbitrary process
/// counts, inputs, timing distributions (including failure-heavy ones),
/// and crash schedules.
#[test]
fn consensus_safety_under_arbitrary_timing_and_crashes() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for case in 0..64 {
        let n = rng.random_range(1..=5) as usize;
        let inputs_seed = rng.next_u64();
        let timing_seed = rng.next_u64();
        let hi = rng.random_range(20..=999);
        let crash = if rng.random_bool(0.5) {
            Some((rng.random_range(0..=5) as usize, rng.random_range(0..=1999)))
        } else {
            None
        };
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let valid: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let base = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let crashes = crash
            .into_iter()
            .filter(|(p, _)| *p < n)
            .map(|(p, t)| (ProcId(p), Ticks(t)))
            .collect();
        let model = CrashSchedule::new(base, crashes);
        let config = RunConfig::new(n, d).max_steps(50_000);
        let result = Sim::new(ConsensusSpec::new(inputs).max_rounds(30), config, model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "case {case}: agreement violated");
        assert!(
            stats.valid_against(&valid),
            "case {case}: validity violated"
        );
    }
}

/// When the timing constraints hold (durations ≤ Δ), Algorithm 1 always
/// terminates within the 15Δ bound.
#[test]
fn consensus_terminates_within_bound_when_constraints_hold() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for case in 0..64 {
        let n = rng.random_range(1..=7) as usize;
        let inputs_seed = rng.next_u64();
        let timing_seed = rng.next_u64();
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let model = UniformAccess::new(Ticks(1), d.ticks(), timing_seed);
        let result = Sim::new(
            ConsensusSpec::new(inputs).with_delta(d.ticks()),
            RunConfig::new(n, d),
            model,
        )
        .run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "case {case}: agreement violated");
        let t = stats.all_decided_by;
        assert!(t.is_some(), "case {case}: must decide without failures");
        assert!(
            t.unwrap() <= d.times(15),
            "case {case}: decided at {} > 15Δ",
            t.unwrap()
        );
    }
}

/// Mutual exclusion of Algorithm 3 holds under arbitrary random timing,
/// and so does the per-process workload event discipline
/// (trying → critical → exit → remainder, cyclically).
#[test]
fn resilient_mutex_safety_and_event_discipline() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for case in 0..64 {
        let n = rng.random_range(1..=4) as usize;
        let timing_seed = rng.next_u64();
        let hi = rng.random_range(20..=599);
        let cs = rng.random_range(1..=59);
        let ncs = rng.random_range(1..=59);
        let d = Delta::from_ticks(100);
        let automaton = LockLoop::new(standard_resilient_spec(n, 0, d.ticks()), 3)
            .cs_ticks(Ticks(cs))
            .ncs_ticks(Ticks(ncs));
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let result = Sim::new(automaton, RunConfig::new(n, d), model).run();
        assert!(
            result.all_halted(),
            "case {case}: random fair schedules must complete"
        );
        let stats = mutex_stats(&result, Ticks::ZERO);
        assert!(
            !stats.mutual_exclusion_violated,
            "case {case}: mutex violated"
        );
        assert_eq!(stats.cs_entries, n as u64 * 3, "case {case}");

        // Event discipline per process.
        for p in 0..n {
            let seq: Vec<Obs> = result
                .obs
                .iter()
                .filter(|e| e.pid == ProcId(p))
                .filter(|e| {
                    matches!(
                        e.obs,
                        Obs::EnterTrying
                            | Obs::EnterCritical
                            | Obs::ExitCritical
                            | Obs::EnterRemainder
                    )
                })
                .map(|e| e.obs)
                .collect();
            let expected = [
                Obs::EnterTrying,
                Obs::EnterCritical,
                Obs::ExitCritical,
                Obs::EnterRemainder,
            ];
            assert_eq!(seq.len(), 12, "case {case}: 3 iterations × 4 phase events");
            for (i, o) in seq.iter().enumerate() {
                assert_eq!(
                    *o,
                    expected[i % 4],
                    "case {case}: process {p} event {i} out of phase"
                );
            }
        }
    }
}

/// Every asynchronous lock in the zoo is safe and live under arbitrary
/// random timing (they make no timing assumptions at all).
#[test]
fn async_lock_zoo_safety() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for case in 0..64 {
        let which = rng.index(5);
        let n = rng.random_range(1..=4) as usize;
        let timing_seed = rng.next_u64();
        let hi = rng.random_range(20..=599);
        let d = Delta::from_ticks(100);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d);
        let result = match which {
            0 => Sim::new(LockLoop::new(LamportFastSpec::new(n, 0), 3), config, model).run(),
            1 => Sim::new(LockLoop::new(BakerySpec::new(n, 0), 3), config, model).run(),
            2 => Sim::new(LockLoop::new(BwBakerySpec::new(n, 0), 3), config, model).run(),
            3 => Sim::new(LockLoop::new(PetersonSpec::new(n, 0), 3), config, model).run(),
            _ => Sim::new(
                LockLoop::new(
                    StarvationFreeSpec::<LamportFastSpec>::over_lamport_fast(n, 0),
                    3,
                ),
                config,
                model,
            )
            .run(),
        };
        assert!(result.all_halted(), "case {case} (lock {which})");
        let stats = mutex_stats(&result, Ticks::ZERO);
        assert!(
            !stats.mutual_exclusion_violated,
            "case {case} (lock {which})"
        );
        assert_eq!(stats.cs_entries, n as u64 * 3, "case {case} (lock {which})");
    }
}

/// Simulation runs are exactly reproducible from their seed.
#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for case in 0..64 {
        let n = rng.random_range(1..=4) as usize;
        let seed = rng.next_u64();
        let d = Delta::from_ticks(100);
        let run = || {
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let model = UniformAccess::new(Ticks(10), Ticks(300), seed);
            Sim::new(
                ConsensusSpec::new(inputs).max_rounds(30),
                RunConfig::new(n, d).max_steps(50_000),
                model,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.obs, b.obs, "case {case}");
        assert_eq!(a.steps, b.steps, "case {case}");
        assert_eq!(a.end_time, b.end_time, "case {case}");
    }
}

/// Bounded-failure consensus: whenever the failure window actually
/// respects the promised bound B, every process decides within the
/// finite round/register budget.
#[test]
fn bounded_consensus_decides_within_promise() {
    use tfr::core::bounded::BoundedConsensusSpec;
    use tfr::sim::timing::{FailureWindows, Window};
    let mut rng = SplitMix64::new(0x5EED_0006);
    for case in 0..48 {
        let bound_deltas = rng.random_range(0..=5);
        let inputs_seed = rng.next_u64();
        let timing_seed = rng.next_u64();
        let slow_pid = rng.index(3);
        let d = Delta::from_ticks(100);
        let bound = Ticks(d.ticks().0 * bound_deltas);
        let inputs: Vec<bool> = (0..3).map(|i| (inputs_seed >> i) & 1 == 1).collect();
        let spec = BoundedConsensusSpec::new(inputs.clone(), bound, d);
        let model = FailureWindows::new(
            UniformAccess::new(Ticks(10), d.ticks(), timing_seed),
            vec![Window {
                from: Ticks::ZERO,
                to: bound,
                pids: Some(vec![ProcId(slow_pid)]),
                inflated: Ticks(350),
            }],
        );
        let result = Sim::new(spec, RunConfig::new(3, d), model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "case {case}");
        assert!(
            stats.all_decided_by.is_some(),
            "case {case}: failures within the bound ⇒ the finite budget must suffice"
        );
        let gave_up = result
            .events(|o| match o {
                Obs::Note("round-bound-exceeded", r) => Some(*r),
                _ => None,
            })
            .count();
        assert_eq!(gave_up, 0, "case {case}");
    }
}

/// Spec-form leader election: under arbitrary random timing (failures
/// included), whoever elects agrees on one real participant.
#[test]
fn election_spec_safety() {
    use tfr::core::election_spec::ElectionSpec;
    let mut rng = SplitMix64::new(0x5EED_0007);
    for case in 0..48 {
        let n = rng.random_range(1..=4) as usize;
        let timing_seed = rng.next_u64();
        let hi = rng.random_range(20..=599);
        let d = Delta::from_ticks(100);
        let spec = ElectionSpec::new(n, 0, d.ticks()).inner_rounds(30);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d).max_steps(300_000);
        let result = Sim::new(spec, config, model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "case {case}");
        if let Some(leader) = stats.decided_value {
            assert!(
                leader < n as u64,
                "case {case}: the leader must be a participant"
            );
        }
    }
}

/// The PRNG underneath every test above: equal seeds give equal streams,
/// `reseed` restarts a stream exactly, and small seed perturbations give
/// unrelated streams.
#[test]
fn rng_seed_determinism() {
    let mut outer = SplitMix64::new(0x5EED_0009);
    for case in 0..32 {
        let seed = outer.next_u64();
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let stream: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        for (i, &v) in stream.iter().enumerate() {
            assert_eq!(v, b.next_u64(), "case {case}: draw {i} diverged");
        }
        a.reseed(seed);
        for (i, &v) in stream.iter().enumerate() {
            assert_eq!(v, a.next_u64(), "case {case}: reseed draw {i} diverged");
        }
        let mut c = SplitMix64::new(seed ^ 1);
        let agree = stream.iter().filter(|&&v| v == c.next_u64()).count();
        assert!(agree <= 1, "case {case}: adjacent seeds nearly collide");
    }
}

/// Streams split off with `fork` are independent of the parent and of
/// each other: no draw-for-draw correlation, and forking is itself
/// deterministic (the whole tree replays from the master seed).
#[test]
fn rng_fork_stream_independence() {
    let mut outer = SplitMix64::new(0x5EED_000A);
    for case in 0..32 {
        let seed = outer.next_u64();
        let mut parent = SplitMix64::new(seed);
        let mut child_a = parent.fork();
        let mut child_b = parent.fork();

        // Replaying the master seed replays the whole tree.
        let mut parent2 = SplitMix64::new(seed);
        assert_eq!(parent2.fork(), child_a, "case {case}");
        assert_eq!(parent2.fork(), child_b, "case {case}");

        // No draw-for-draw matches across the three streams.
        let pa: Vec<u64> = (0..64).map(|_| parent.next_u64()).collect();
        let ca: Vec<u64> = (0..64).map(|_| child_a.next_u64()).collect();
        let cb: Vec<u64> = (0..64).map(|_| child_b.next_u64()).collect();
        for i in 0..64 {
            assert_ne!(pa[i], ca[i], "case {case}: parent/child correlate at {i}");
            assert_ne!(pa[i], cb[i], "case {case}: parent/child correlate at {i}");
            assert_ne!(ca[i], cb[i], "case {case}: siblings correlate at {i}");
        }
    }
}

/// Chi-square sanity check: bucketing `next_u64` draws 16 ways stays
/// comfortably inside the χ²(15) tail — the generator is not grossly
/// non-uniform, in its raw stream or in a forked child.
#[test]
fn rng_chi_square_uniformity() {
    let mut master = SplitMix64::new(0x5EED_000B);
    let mut child = master.fork();
    for (name, rng) in [("master", &mut master), ("forked child", &mut child)] {
        const BUCKETS: usize = 16;
        const DRAWS: usize = 10_000;
        let mut counts = [0u64; BUCKETS];
        for _ in 0..DRAWS {
            counts[(rng.next_u64() >> 60) as usize] += 1;
        }
        let expected = DRAWS as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // χ²(15): p = 0.001 at 37.7. A generous 45 keeps the test
        // deterministic-signal only — it fails for broken generators
        // (constant, counter, low-entropy), not for unlucky streams
        // (there is no luck: the seed is fixed).
        assert!(chi2 < 45.0, "{name}: chi-square {chi2:.1} ≥ 45");
    }
}

/// AAT baseline safety matches Algorithm 1 under the same adversaries.
#[test]
fn aat_safety_under_arbitrary_timing() {
    use tfr::baselines::aat::{AatConsensusSpec, DelaySchedule};
    let mut rng = SplitMix64::new(0x5EED_0008);
    for case in 0..48 {
        let n = rng.random_range(1..=4) as usize;
        let inputs_seed = rng.next_u64();
        let timing_seed = rng.next_u64();
        let hi = rng.random_range(20..=799);
        let initial = rng.random_range(1..=199);
        let d = Delta::from_ticks(100);
        let inputs: Vec<bool> = (0..n).map(|i| (inputs_seed >> (i % 64)) & 1 == 1).collect();
        let valid: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let spec =
            AatConsensusSpec::new(inputs, DelaySchedule::doubling(Ticks(initial))).max_rounds(30);
        let model = UniformAccess::new(Ticks(10), Ticks(hi), timing_seed);
        let config = RunConfig::new(n, d).max_steps(100_000);
        let result = Sim::new(spec, config, model).run();
        let stats = consensus_stats(&result);
        assert!(stats.agreement, "case {case}");
        assert!(stats.valid_against(&valid), "case {case}");
    }
}

/// The service router is total, stable, and in-range for arbitrary
/// shard counts, seeds, and keys: every key routes, the same key always
/// routes to the same shard, and no draw ever leaves `0..shards`.
#[test]
fn service_router_is_total_stable_and_in_range() {
    use tfr::service::Router;
    let mut rng = SplitMix64::new(0x5EED_0022);
    for case in 0..64 {
        let shards = rng.random_range(1..=64) as usize;
        let router = Router::new(shards, rng.next_u64());
        for _ in 0..128 {
            let key = rng.next_u64();
            let shard = router.route(key);
            assert!(shard < shards, "case {case}: shard {shard} of {shards}");
            assert_eq!(router.route(key), shard, "case {case}: routing is stable");
        }
        // Keys spread: with plenty of keys, every shard of a small count
        // is hit (splitmix64 is a full-period mixer).
        if shards <= 8 {
            let mut hit = vec![false; shards];
            for key in 0..512u64 {
                hit[router.route(key)] = true;
            }
            assert!(hit.iter().all(|&h| h), "case {case}: a shard never hit");
        }
    }
}

/// Shard tiles never alias: writes through every tile land on disjoint
/// parent registers, so one shard can never clobber another's state.
#[test]
fn service_shard_tiles_never_alias_registers() {
    use std::sync::Arc;
    use tfr::registers::space::{NativeSpace, RegisterSpace, SubSpace};
    let mut rng = SplitMix64::new(0x5EED_0023);
    for case in 0..64 {
        let shards = rng.random_range(1..=9);
        let per_tile = rng.random_range(4..=40);
        let space = Arc::new(NativeSpace::new());
        let tiles = SubSpace::tile(Arc::clone(&space), shards);
        for (t, tile) in tiles.iter().enumerate() {
            for i in 0..per_tile {
                tile.write(i, (t as u64) << 32 | (i + 1));
            }
        }
        // Every tile still reads back exactly what it wrote: no other
        // tile's writes overlapped it.
        for (t, tile) in tiles.iter().enumerate() {
            for i in 0..per_tile {
                assert_eq!(
                    tile.read(i),
                    (t as u64) << 32 | (i + 1),
                    "case {case}: tile {t} index {i} was clobbered"
                );
            }
        }
    }
}

/// Cross-shard conservation: for arbitrary routed workloads, the union
/// of per-shard counter snapshots equals the sequentially computed
/// totals — no op lands on the wrong shard, none is double-counted.
#[test]
fn service_cross_shard_totals_equal_sequential_sums() {
    use std::collections::BTreeMap;
    use tfr::core::universal::Counter;
    use tfr::registers::ProcId;
    use tfr::service::{ObjectService, ServiceConfig};
    let mut rng = SplitMix64::new(0x5EED_0024);
    for case in 0..64 {
        let shards = rng.random_range(1..=4) as usize;
        let cfg = ServiceConfig {
            capacity_per_shard: 128,
            delta: std::time::Duration::from_micros(10),
            router_seed: rng.next_u64(),
            ..ServiceConfig::new(shards, 1)
        };
        let svc = ObjectService::new(|| Counter, &cfg);
        let mut worker = svc.worker(ProcId(0));
        let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
        let burst: Vec<(u64, u64)> = (0..32)
            .map(|_| {
                let key = rng.random_range(0..=11);
                let amount = rng.random_range(1..=9);
                *expected.entry(key).or_insert(0) += amount;
                (key, amount)
            })
            .collect();
        worker.enqueue_burst(&burst);
        worker.drive();
        let mut actual: BTreeMap<u64, u64> = BTreeMap::new();
        for shard in 0..shards {
            for (key, total) in svc.snapshot(shard) {
                assert_eq!(
                    svc.shard_of(key),
                    shard,
                    "case {case}: key {key} leaked to shard {shard}"
                );
                assert!(
                    actual.insert(key, total).is_none(),
                    "case {case}: key {key} double-counted across shards"
                );
            }
        }
        assert_eq!(actual, expected, "case {case}: totals must be conserved");
    }
}

/// The replicated log's register layout — three stride-3 regions
/// (acks / arena / slots), per-height arena blocks of `n·max_batch + n`
/// cells, and per-height consensus subspaces at stride `heights` —
/// never aliases two logical cells onto one parent register, for
/// arbitrary shapes. An overlap would let one height's publish clobber
/// another's decided batch, so this is the layout's load-bearing fact.
#[test]
fn log_register_tiling_is_disjoint_across_heights_and_regions() {
    use std::collections::HashSet;
    use std::sync::Arc;
    use tfr::registers::space::{NativeSpace, SubSpace};

    let mut rng = SplitMix64::new(0x7113_1135);
    for case in 0..64 {
        let n = rng.random_range(1..=8);
        let replicas = rng.random_range(0..=3);
        let heights = rng.random_range(1..=24);
        let max_batch = rng.random_range(1..=8);
        let slot_cells = rng.random_range(1..=32); // consensus registers probed per height
        let hstride = n * max_batch + n;

        let parent = Arc::new(NativeSpace::new());
        let acks = SubSpace::new(Arc::clone(&parent), 0, 3);
        let arena = SubSpace::new(Arc::clone(&parent), 1, 3);
        let mut seen = HashSet::new();
        for lane in 0..n + replicas {
            assert!(
                seen.insert(acks.parent_index(lane)),
                "case {case}: ack lane {lane} aliases another cell"
            );
        }
        for h in 0..heights {
            for c in 0..hstride {
                assert!(
                    seen.insert(arena.parent_index(h * hstride + c)),
                    "case {case}: height {h} arena cell {c} aliases another cell"
                );
            }
            let region = SubSpace::new(Arc::clone(&parent), 2, 3);
            let slots = SubSpace::new(region.clone(), h, heights);
            for i in 0..slot_cells {
                // `parent_index` maps one nesting level at a time:
                // height-local → region-local → root.
                let root = region.parent_index(slots.parent_index(i));
                assert!(
                    seen.insert(root),
                    "case {case}: height {h} slot register {i} aliases another cell"
                );
            }
        }
    }
}

/// Parallel shard execution is only sound if the tiling is: for 64
/// random plan shapes, `Region::tile` tiles are pairwise disjoint,
/// `certify` accepts the plan with every sampled footprint contained in
/// its shard's declared region, and puncturing the tiling (one shard's
/// region shifted into a neighbor's) is rejected — the preflight half
/// of the independence argument the runtime fence then backs.
#[test]
fn sim_shard_tiling_is_disjoint_and_certifiable() {
    use tfr::sim::shard::{certify, Region, ShardPlan, ShardSpec};
    use tfr::sim::timing::standard_no_failures;
    use tfr::sim::workload::ScaleLoop;
    use tfr::sim::RunConfig;

    let d = Delta::from_ticks(60);
    let mut rng = SplitMix64::new(0x5AA2_D15C);
    for case in 0..64u64 {
        let shards = rng.random_range(2..=8) as usize;
        let width = rng.random_range(2..=32);
        let base = rng.random_range(0..=1_000_000);
        let procs = rng.random_range(1..=width) as usize;

        let regions: Vec<Region> = (0..shards).map(|i| Region::tile(base, i, width)).collect();
        for i in 0..shards {
            for j in i + 1..shards {
                assert!(
                    regions[i].is_disjoint(&regions[j]),
                    "case {case}: tiles {i} and {j} overlap"
                );
            }
            assert_eq!(regions[i].len(), width, "case {case}: tile {i} width");
        }

        let plan = ShardPlan {
            shards: (0..shards)
                .map(|i| ShardSpec {
                    automaton: ScaleLoop::new(2, procs, regions[i].lo).salt(case ^ i as u64),
                    model: standard_no_failures(d, case.wrapping_add(i as u64)),
                    config: RunConfig::new(procs, d),
                    region: regions[i],
                })
                .collect(),
            shared: None,
            epoch: None,
        };
        let cert = certify(&plan, 32)
            .unwrap_or_else(|e| panic!("case {case}: disjoint tiling must certify, got {e}"));
        assert_eq!(cert.footprints.len(), shards);
        assert!(
            cert.footprints.iter().all(|fp| !fp.is_empty()),
            "case {case}: sampling must observe each shard's accesses"
        );

        // Puncture the tiling: shift shard 1 to straddle shard 0's tile.
        let mut bad = plan;
        bad.shards[1].region = Region::new(base + width / 2, base + width / 2 + width);
        assert!(
            certify(&bad, 32).is_err(),
            "case {case}: punctured tiling must be rejected"
        );
    }
}
