//! End-to-end chaos harness tests over the native stack: the paper's §2
//! Fischer violation reproduced on real threads from a printed seed, the
//! resilient algorithms surviving the same schedules, crash-stops leaving
//! shared state usable, shrinking, and the native resilience assessment.

use std::time::Duration;
use tfr::asynclock::RawLock;
use tfr::chaos::nemesis::{self, run_consensus_chaos, run_mutex_chaos, MutexChaosConfig};
use tfr::chaos::{
    assess_native_mutex, random_schedule, shrink, NativeAssessConfig, ScheduleConfig,
};
use tfr::core::consensus::NativeConsensus;
use tfr::core::mutex::resilient::ResilientMutex;
use tfr::registers::chaos::{points, Fault, FaultAction};
use tfr::registers::ProcId;

/// The headline: a seeded stall in Fischer's read→write window longer
/// than Δ puts two real threads into the critical section at once — and
/// the same seed replays the same violation.
#[test]
fn fischer_violation_reproduces_deterministically_from_a_seed() {
    let (seed, first) = nemesis::hunt_fischer_violation(0xF15C, 16)
        .expect("the violation construction must find a seed quickly");
    assert!(first.mutual_exclusion_violated());
    assert!(first.max_in_cs >= 2, "two threads inside at once");
    // The stall that fired exceeded the Δ the lock was configured with.
    let setup = nemesis::violation_setup_from_seed(seed);
    let stalled = first
        .fired
        .iter()
        .find(|f| f.fault.point == points::FISCHER_WRITE_X)
        .expect("the write-x stall must have fired");
    match stalled.fault.action {
        FaultAction::Stall(d) => assert!(d > setup.delta, "stall {d:?} must exceed Δ"),
        FaultAction::Crash | FaultAction::CrashRecover(_) => {
            panic!("the violation schedule stalls, it does not crash")
        }
    }

    // Replay: the printed seed is the whole experiment.
    let (_, second) = nemesis::run_fischer_violation(seed);
    assert!(
        second.mutual_exclusion_violated(),
        "seed {seed} must replay the violation"
    );
    let (_, third) = nemesis::run_fischer_violation(seed);
    assert!(
        third.mutual_exclusion_violated(),
        "seed {seed} must replay every time"
    );
}

/// Algorithm 3 under the *same* seed-derived schedule (stall aimed at its
/// identical read→write window): mutual exclusion holds and the workload
/// completes. This is resilience, falsifiably.
#[test]
fn resilient_mutex_survives_the_fischer_breaking_schedule() {
    let (seed, _) = nemesis::hunt_fischer_violation(0xA1C3, 16).expect("a violating seed");
    let report = nemesis::run_resilient_under_violation_schedule(seed);
    assert!(
        !report.mutual_exclusion_violated(),
        "Algorithm 3 broke under seed {seed}"
    );
    assert_eq!(report.max_in_cs, 1);
    assert_eq!(report.completed.len(), 2, "both threads finish");
    assert!(!report.fired.is_empty(), "the schedule did fire");
}

/// Algorithm 1 keeps agreement and validity under randomized stall+crash
/// schedules — crashes legal anywhere, it is wait-free.
#[test]
fn consensus_safe_under_random_fault_schedules() {
    let delta = Duration::from_micros(200);
    for seed in 0..12 {
        let n = 2 + (seed as usize % 3);
        let inputs: Vec<bool> = (0..n).map(|i| (seed >> i) & 1 == 1).collect();
        let faults = random_schedule(seed, &ScheduleConfig::consensus(n, delta));
        let report = run_consensus_chaos(delta, &inputs, &faults);
        assert!(
            report.agreement,
            "seed {seed}: agreement violated: {report:?}"
        );
        assert!(
            report.validity,
            "seed {seed}: validity violated: {report:?}"
        );
        assert_eq!(
            report.decisions.len() + report.crashed.len(),
            n,
            "seed {seed}: every proposer completes or crashes"
        );
        // Wait-freedom: survivors always decide, whoever crashed.
        if !report.decisions.is_empty() {
            assert!(report.final_decision.is_some(), "seed {seed}");
        }
    }
}

/// The resilient mutex under randomized mutex schedules (stalls in every
/// timing-sensitive window, crash-stops between iterations): safety
/// always, and the *survivors* always finish — a crashed thread never
/// poisons the shared state.
#[test]
fn crashed_mutex_threads_never_poison_survivors() {
    let delta = Duration::from_micros(150);
    let mut saw_crash = false;
    for seed in 0..10 {
        let n = 3;
        let lock = ResilientMutex::standard(n, delta);
        let mut cfg = MutexChaosConfig::new(n);
        cfg.iterations = 12;
        let faults = random_schedule(seed, &ScheduleConfig::mutex(n, delta));
        let report = run_mutex_chaos(&lock, &cfg, &faults);
        assert!(!report.mutual_exclusion_violated(), "seed {seed}");
        assert_eq!(
            report.completed.len() + report.crashed.len(),
            n,
            "seed {seed}: no thread may hang"
        );
        saw_crash |= !report.crashed.is_empty();
        // Shared state stays usable after the run: a fresh single-threaded
        // pass over the same lock instance must still work.
        lock.lock(ProcId(0));
        lock.unlock(ProcId(0));
    }
    assert!(
        saw_crash,
        "the seeds above must include at least one crash schedule"
    );
}

/// Greedy shrinking of a real failing schedule: noise faults are removed,
/// the essential write-x stall survives, and the result still breaks
/// Fischer.
#[test]
fn shrinking_reduces_a_violating_schedule_to_its_essence() {
    let (seed, _) = nemesis::hunt_fischer_violation(0x5417, 16).expect("a violating seed");
    let setup = nemesis::violation_setup_from_seed(seed);

    // Pad the real schedule with noise that cannot matter.
    let mut padded = setup.faults.clone();
    padded.push(Fault {
        pid: ProcId(0),
        point: points::ARRAY_LOAD,
        nth: 50,
        action: FaultAction::Stall(Duration::from_micros(100)),
    });
    padded.push(Fault {
        pid: ProcId(1),
        point: points::FISCHER_EXIT,
        nth: 9,
        action: FaultAction::Stall(Duration::from_micros(100)),
    });

    let still_fails = |faults: &[Fault]| {
        let lock = tfr::core::mutex::fischer::Fischer::new(2, setup.delta);
        run_mutex_chaos(&lock, &setup.config, faults).mutual_exclusion_violated()
    };
    assert!(
        still_fails(&padded),
        "the padded schedule must still violate"
    );
    let minimal = shrink(padded, still_fails);

    assert!(
        minimal.len() < setup.faults.len() + 2,
        "noise must be gone: {minimal:?}"
    );
    assert!(
        minimal.iter().any(|f| f.point == points::FISCHER_WRITE_X),
        "the write-x stall is the essence: {minimal:?}"
    );
    assert!(still_fails(&minimal), "the minimal schedule still violates");
}

/// The native §1.3 assessment: Algorithm 3 measures as resilient — safe
/// across the burst, live after it, and converged back to its ψ band.
#[test]
fn native_assessment_reports_algorithm_3_resilient() {
    let delta = Duration::from_micros(200);
    let cfg = NativeAssessConfig::new(3, delta);
    let report = assess_native_mutex(|| ResilientMutex::standard(3, delta), &cfg);
    assert!(report.safe_during_failures, "{report}");
    assert!(report.live_after_failures, "{report}");
    assert!(report.convergence.is_some(), "{report}");
    assert!(report.resilient(), "{report}");
}

/// Consensus decided values survive crash-stops right before the decide
/// write: either the crasher's write landed (fine) or it did not (fine),
/// but survivors always agree.
#[test]
fn crash_at_the_decide_write_cannot_break_agreement() {
    let delta = Duration::from_micros(100);
    for nth in 1..=2 {
        let faults = [Fault {
            pid: ProcId(0),
            point: points::CONSENSUS_DECIDE,
            nth,
            action: FaultAction::Crash,
        }];
        let report = run_consensus_chaos(delta, &[true, false, false], &faults);
        assert!(report.agreement, "nth={nth}: {report:?}");
        assert!(report.validity, "nth={nth}: {report:?}");
        assert_eq!(report.decisions.len() + report.crashed.len(), 3);
    }
    // The shared object remains usable by late arrivals.
    let c = NativeConsensus::new(delta);
    let v = c.propose(true);
    assert_eq!(c.decision(), Some(v));
}

/// Cross-stack replay: the exhaustive explorer's abstract Fischer
/// counterexample (`tfr_core::verify::fischer_counterexample`, found by
/// DPOR + symmetry over the spec-form lock) compiles into a native fault
/// schedule that makes two real threads share the critical section — the
/// same violation, reproduced deterministically on both tiers.
#[test]
fn model_counterexample_replays_on_the_native_stack() {
    use tfr::chaos::fischer_faults_from_counterexample;
    use tfr::core::mutex::fischer::{Fischer, FischerSpec};
    use tfr::registers::Ticks;

    let cex = tfr::core::verify::fischer_counterexample(2).expect("Fischer must break");
    // The abstract schedule is itself replayable at the model level...
    let model = tfr::modelcheck::replay_schedule(
        &tfr::core::verify::fischer_workload(2),
        2,
        &tfr::modelcheck::SafetySpec::mutex(),
        &cex.schedule,
    );
    assert_eq!(model.as_ref(), Some(&cex.violation));

    // ...and compiles to stalls that reproduce it natively, every run.
    let x = FischerSpec::new(2, 0, Ticks(100)).x();
    let compiled = fischer_faults_from_counterexample(&cex, 2, x, Duration::from_micros(500));
    for run in 0..2 {
        let lock = Fischer::new(2, compiled.delta);
        let report = run_mutex_chaos(&lock, &compiled.config, &compiled.faults);
        assert!(
            report.mutual_exclusion_violated(),
            "run {run}: native replay must reproduce the model violation"
        );
        assert!(report.max_in_cs >= 2, "run {run}: two threads inside");
        // The stalls the compiler scheduled actually fired.
        assert!(report
            .fired
            .iter()
            .any(|f| f.fault.point == points::FISCHER_WRITE_X));
    }
}
