//! Integration tests for the derived wait-free objects and the universal
//! construction (§1.4): the consensus building block must carry its
//! guarantees up through every layer.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use tfr::core::derived::{LeaderElection, Renaming, SetConsensus, TestAndSet};
use tfr::core::universal::{Counter, FifoQueue, MultiConsensus, Sequential, Universal};
use tfr::registers::chaos::{self, ChaosSession, Fault, FaultAction};
use tfr::registers::ProcId;

const D: Duration = Duration::from_micros(3);

#[test]
fn multivalued_one_bit_and_wide_values() {
    let narrow = MultiConsensus::new(2, 1, D);
    assert_eq!(narrow.propose(ProcId(0), 1), 1);
    assert_eq!(narrow.propose(ProcId(1), 0), 1);

    let wide = MultiConsensus::new(2, 63, D);
    let big = (1u64 << 63) - 1;
    assert_eq!(wide.propose(ProcId(0), big), big);
    assert_eq!(wide.decision(), Some(big));
}

#[test]
fn multivalued_stress_many_widths() {
    for width in [2u32, 5, 9, 17, 33] {
        let n = 5;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mc = Arc::new(MultiConsensus::new(n, width, D));
        let inputs: Vec<u64> = (0..n).map(|i| (i as u64 * 0x9E37_79B9) & mask).collect();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mc = Arc::clone(&mc);
                std::thread::spawn(move || mc.propose(ProcId(i), v))
            })
            .collect();
        let outs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "width={width}");
        assert!(inputs.contains(&outs[0]), "width={width}: validity");
    }
}

#[test]
fn election_partial_participation_any_subset() {
    // Whatever subset participates, they agree on a member of the subset.
    for subset in [
        vec![0usize],
        vec![3],
        vec![0, 5],
        vec![1, 2, 4],
        vec![0, 1, 2, 3, 4, 5],
    ] {
        let e = Arc::new(LeaderElection::new(6, D));
        let handles: Vec<_> = subset
            .iter()
            .map(|&i| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || e.elect(ProcId(i)))
            })
            .collect();
        let leaders: Vec<ProcId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            leaders.windows(2).all(|w| w[0] == w[1]),
            "subset {subset:?}"
        );
        assert!(
            subset.contains(&leaders[0].0),
            "leader must participate: {subset:?}"
        );
    }
}

#[test]
fn test_and_set_sequential_semantics() {
    let t = TestAndSet::new(3, D);
    assert!(!t.test_and_set(ProcId(1)), "first caller wins");
    assert!(t.test_and_set(ProcId(0)), "second caller loses");
    assert!(t.test_and_set(ProcId(2)), "third caller loses");
}

#[test]
fn renaming_is_order_oblivious() {
    // Sequential participation in descending pid order still yields
    // distinct names starting from 0.
    let r = Renaming::new(4, D);
    let n3 = r.rename(ProcId(3));
    let n2 = r.rename(ProcId(2));
    let n1 = r.rename(ProcId(1));
    let n0 = r.rename(ProcId(0));
    let names: HashSet<usize> = [n0, n1, n2, n3].into_iter().collect();
    assert_eq!(names.len(), 4);
    assert_eq!(n3, 0, "first arrival takes the first slot");
}

#[test]
fn set_consensus_respects_group_validity() {
    let s = SetConsensus::new(3, D);
    // Solo proposer in its group decides its own value.
    assert!(s.propose(ProcId(0), true));
    assert!(!s.propose(ProcId(1), false));
    // Same group as p0 (3 groups, pid 3 → group 0): adopts p0's decision.
    assert!(s.propose(ProcId(3), false));
}

/// A sequential register with read/write ops, used to check the universal
/// construction against a custom user-defined object.
#[derive(Debug, Clone, Copy, Default)]
struct RegObject;

impl RegObject {
    fn write_op(v: u32) -> u64 {
        ((v as u64) << 1) | 1
    }
    const READ: u64 = 0;
}

impl Sequential for RegObject {
    type State = u64;
    fn initial(&self) -> u64 {
        0
    }
    fn apply(&self, state: &mut u64, op: u64) -> u64 {
        if op & 1 == 1 {
            *state = op >> 1;
            0
        } else {
            *state
        }
    }
}

#[test]
fn universal_custom_object_reads_see_writes() {
    let obj = Universal::new(RegObject, 2, 16, D);
    obj.invoke(ProcId(0), RegObject::write_op(77));
    assert_eq!(obj.invoke(ProcId(1), RegObject::READ), 77);
    obj.invoke(ProcId(1), RegObject::write_op(5));
    assert_eq!(obj.invoke(ProcId(0), RegObject::READ), 5);
    assert_eq!(obj.snapshot(), 5);
}

#[test]
fn universal_counter_helping_under_asymmetric_load() {
    // One thread does many ops, another few: the helping rule must let
    // both finish (wait-freedom) with an exact total.
    let obj = Arc::new(Universal::new(Counter, 2, 40, D));
    let heavy = {
        let obj = Arc::clone(&obj);
        std::thread::spawn(move || {
            for _ in 0..20 {
                obj.invoke(ProcId(0), 1);
            }
        })
    };
    let light = {
        let obj = Arc::clone(&obj);
        std::thread::spawn(move || obj.invoke(ProcId(1), 100))
    };
    heavy.join().unwrap();
    let light_resp = light.join().unwrap();
    assert!(
        light_resp >= 100,
        "light op linearized somewhere: {light_resp}"
    );
    assert_eq!(obj.snapshot(), 120);
}

#[test]
fn universal_queue_interleaved_enq_deq() {
    // Generous capacity: every empty dequeue also consumes a log slot.
    let obj = Arc::new(Universal::new(FifoQueue, 2, 300, D));
    let producer = {
        let obj = Arc::clone(&obj);
        std::thread::spawn(move || {
            for k in 0..10u32 {
                obj.invoke(ProcId(0), FifoQueue::enqueue_op(k));
            }
        })
    };
    let consumer = {
        let obj = Arc::clone(&obj);
        std::thread::spawn(move || {
            let mut got = Vec::new();
            let mut misses = 0;
            while got.len() < 10 && misses < 200 {
                match FifoQueue::decode_dequeue(obj.invoke(ProcId(1), FifoQueue::DEQUEUE)) {
                    Some(v) => got.push(v),
                    None => misses += 1,
                }
            }
            got
        })
    };
    producer.join().unwrap();
    let got = consumer.join().unwrap();
    // FIFO per producer: the consumer sees 0..10 in order.
    assert_eq!(got, (0..10).collect::<Vec<u32>>());
}

#[test]
fn universal_queue_dequeue_on_empty() {
    let obj = Universal::new(FifoQueue, 2, 16, D);
    // Empty from the start: dequeues miss, and they are real operations —
    // they consume log slots and linearize against later enqueues.
    assert_eq!(
        FifoQueue::decode_dequeue(obj.invoke(ProcId(0), FifoQueue::DEQUEUE)),
        None
    );
    assert_eq!(
        FifoQueue::decode_dequeue(obj.invoke(ProcId(1), FifoQueue::DEQUEUE)),
        None
    );
    obj.invoke(ProcId(0), FifoQueue::enqueue_op(42));
    assert_eq!(
        FifoQueue::decode_dequeue(obj.invoke(ProcId(1), FifoQueue::DEQUEUE)),
        Some(42),
        "the earlier empty dequeues must not eat the later enqueue"
    );
    // Drained again: back to empty.
    assert_eq!(
        FifoQueue::decode_dequeue(obj.invoke(ProcId(0), FifoQueue::DEQUEUE)),
        None
    );
}

#[test]
#[should_panic(expected = "capacity exhausted")]
fn universal_queue_capacity_exhaustion_panics() {
    // Capacity counts *operations* (empty dequeues included), not queue
    // length: a capacity-3 queue admits exactly three invocations.
    let obj = Universal::new(FifoQueue, 1, 3, D);
    obj.invoke(ProcId(0), FifoQueue::enqueue_op(1));
    obj.invoke(ProcId(0), FifoQueue::DEQUEUE);
    obj.invoke(ProcId(0), FifoQueue::DEQUEUE); // empty, still a slot
    obj.invoke(ProcId(0), FifoQueue::enqueue_op(2)); // one too many
}

#[test]
fn renaming_names_in_range_under_chaos_stalls() {
    use tfr::chaos::{random_schedule, ScheduleConfig};
    let delta = Duration::from_micros(20);
    let n = 4;
    for seed in [1u64, 2, 3] {
        // Stalls only (no crashes): every thread must finish, and the
        // names must still be distinct and inside 0..n.
        let mut cfg = ScheduleConfig::objects(n, delta);
        cfg.crash_prob = 0.0;
        let faults = random_schedule(seed, &cfg);
        assert!(faults
            .iter()
            .all(|f| matches!(f.action, FaultAction::Stall(_))));
        let _session = ChaosSession::install(&faults);
        let r = Arc::new(Renaming::new(n, delta));
        let names: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let r = Arc::clone(&r);
                    scope.spawn(move || chaos::run_as(ProcId(i), move || r.rename(ProcId(i))))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap().completed().expect("stalls never kill"))
                .collect()
        });
        assert!(
            names.iter().all(|&name| name < n),
            "seed {seed}: name out of range: {names:?}"
        );
        let distinct: HashSet<usize> = names.iter().copied().collect();
        assert_eq!(distinct.len(), n, "seed {seed}: duplicate names: {names:?}");
    }
}

#[test]
fn renaming_single_stalled_straggler_gets_a_valid_name() {
    // A targeted stall on one participant mid-consensus: the others race
    // ahead; the straggler must still come back with an unused in-range
    // name (no name is ever reused, even when the taker was parked).
    use tfr::registers::chaos::points;
    let delta = Duration::from_micros(20);
    let n = 3;
    let faults = [Fault {
        pid: ProcId(0),
        point: points::CONSENSUS_ROUND,
        nth: 1,
        action: FaultAction::Stall(Duration::from_millis(1)),
    }];
    let _session = ChaosSession::install(&faults);
    let r = Arc::new(Renaming::new(n, delta));
    let names: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let r = Arc::clone(&r);
                scope.spawn(move || chaos::run_as(ProcId(i), move || r.rename(ProcId(i))))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap().completed().expect("stalls never kill"))
            .collect()
    });
    let distinct: HashSet<usize> = names.iter().copied().collect();
    assert_eq!(distinct.len(), n, "duplicate names: {names:?}");
    assert!(names.iter().all(|&name| name < n), "{names:?}");
}
