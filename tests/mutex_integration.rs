//! Cross-crate integration tests for §3: Fischer's fragility, Algorithm
//! 3's unconditional safety over every inner-lock choice, convergence, and
//! the Theorem 3.2 starvation contrast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfr::asynclock::bakery::BakerySpec;
use tfr::asynclock::bar_david::StarvationFreeSpec;
use tfr::asynclock::bw_bakery::BwBakerySpec;
use tfr::asynclock::lamport_fast::LamportFastSpec;
use tfr::asynclock::peterson::PetersonSpec;
use tfr::asynclock::workload::LockLoop;
use tfr::asynclock::{LockSpec, RawLock};
use tfr::core::mutex::fischer::FischerSpec;
use tfr::core::mutex::resilient::{
    deadlock_free_resilient_spec, standard_resilient_spec, ResilientMutex, ResilientMutexSpec,
};
use tfr::modelcheck::{Explorer, SafetySpec};
use tfr::registers::spec::Obs;
use tfr::registers::{Delta, ProcId, Ticks};
use tfr::sim::metrics::mutex_stats;
use tfr::sim::timing::{standard_no_failures, PerProcess, UniformAccess};
use tfr::sim::{RunConfig, Sim};

#[test]
fn fischer_is_unsafe_and_alg3_safe_under_the_same_exploration() {
    let fischer = LockLoop::new(FischerSpec::new(2, 0, Ticks(100)), 1);
    let report = Explorer::new(fischer, 2).check(&SafetySpec::mutex());
    assert!(
        report.violation.is_some(),
        "Fischer must have a reachable ME violation"
    );

    let alg3 = LockLoop::new(standard_resilient_spec(2, 0, Ticks(100)), 1);
    let report = Explorer::new(alg3, 2).check(&SafetySpec::mutex());
    assert!(report.proven_safe(), "{:?}", report.violation);
}

/// Algorithm 3 is safe for *any* correct asynchronous inner lock: check
/// the whole zoo through the generic composition.
#[test]
fn alg3_safe_with_every_inner_lock_modelchecked() {
    fn check<A: LockSpec>(name: &str, inner: A) {
        let spec = ResilientMutexSpec::new(inner, 2, 0, Ticks(100));
        let report = Explorer::new(LockLoop::new(spec, 1), 2).check(&SafetySpec::mutex());
        assert!(report.proven_safe(), "{name}: {:?}", report.violation);
    }
    check("lamport-fast", LamportFastSpec::new(2, 1));
    check(
        "sf-lamport",
        StarvationFreeSpec::<LamportFastSpec>::over_lamport_fast(2, 1),
    );
    check("bakery", BakerySpec::new(2, 1));
    check("bw-bakery", BwBakerySpec::new(2, 1));
    check("peterson", PetersonSpec::new(2, 1));
}

#[test]
fn alg3_live_under_constant_timing_failures_with_every_inner_lock() {
    let d = Delta::from_ticks(100);
    fn run<A: LockSpec>(name: &str, inner: A, n: usize, seed: u64) {
        let d = Delta::from_ticks(100);
        let spec = ResilientMutexSpec::new(inner, n, 0, d.ticks());
        let automaton = LockLoop::new(spec, 5)
            .cs_ticks(Ticks(20))
            .ncs_ticks(Ticks(30));
        let model = UniformAccess::new(Ticks(10), Ticks(500), seed);
        let result = Sim::new(automaton, RunConfig::new(n, d), model).run();
        assert!(result.all_halted(), "{name}: stalled under failures");
        let stats = mutex_stats(&result, Ticks::ZERO);
        assert!(!stats.mutual_exclusion_violated, "{name}");
        assert_eq!(stats.cs_entries, n as u64 * 5, "{name}");
    }
    let _ = d;
    run(
        "sf-lamport",
        StarvationFreeSpec::<LamportFastSpec>::over_lamport_fast(3, 1),
        3,
        1,
    );
    run("bakery", BakerySpec::new(3, 1), 3, 2);
    run("bw-bakery", BwBakerySpec::new(3, 1), 3, 3);
    run("peterson", PetersonSpec::new(3, 1), 3, 4);
}

#[test]
fn starvation_contrast_deadlock_free_vs_starvation_free() {
    // The E8 shape as a regression test: a slow-but-legal victim against
    // a fast stream inside A.
    let d = Delta::from_ticks(100);
    let n = 3;
    let victim = ProcId(2);
    let first_entry = |sf: bool, iters: u64| -> (Ticks, Ticks) {
        let model = PerProcess::new(vec![Ticks(10), Ticks(10), Ticks(100)]);
        let result = if sf {
            Sim::new(
                LockLoop::new(
                    StarvationFreeSpec::<LamportFastSpec>::over_lamport_fast(n, 0),
                    iters,
                )
                .cs_ticks(Ticks(10))
                .ncs_ticks(Ticks(1)),
                RunConfig::new(n, d),
                model,
            )
            .run()
        } else {
            Sim::new(
                LockLoop::new(LamportFastSpec::new(n, 0), iters)
                    .cs_ticks(Ticks(10))
                    .ncs_ticks(Ticks(1)),
                RunConfig::new(n, d),
                model,
            )
            .run()
        };
        let first = result
            .obs
            .iter()
            .find(|e| e.pid == victim && e.obs == Obs::EnterCritical)
            .map(|e| e.time)
            .expect("victim enters once the stream ends");
        let stream_done = result
            .obs
            .iter()
            .filter(|e| e.pid != victim && e.obs == Obs::EnterRemainder)
            .map(|e| e.time)
            .max()
            .unwrap();
        (first, stream_done)
    };

    // Deadlock-free: the victim waits out the whole stream, and its wait
    // scales with the stream length.
    let (df_20, done_20) = first_entry(false, 20);
    let (df_40, done_40) = first_entry(false, 40);
    assert!(
        df_20 >= done_20,
        "victim must be served only after the stream"
    );
    assert!(df_40 >= done_40);
    assert!(df_40 > df_20, "victim wait must grow with the stream");

    // Starvation-free: constant, stream-independent wait.
    let (sf_20, _) = first_entry(true, 20);
    let (sf_40, _) = first_entry(true, 40);
    assert_eq!(
        sf_20, sf_40,
        "victim wait must not depend on the stream length"
    );
    assert!(sf_20 < df_20);
}

#[test]
fn convergence_of_the_generic_composition_with_peterson_inner() {
    // Peterson is starvation-free, so Algorithm 3 over it must converge
    // (Theorem 3.3 is not specific to the Lamport-based inner lock).
    let d = Delta::from_ticks(100);
    let mk = || ResilientMutexSpec::new(PetersonSpec::new(4, 1), 4, 0, d.ticks());
    let clean = Sim::new(
        LockLoop::new(mk(), 30)
            .cs_ticks(Ticks(20))
            .ncs_ticks(Ticks(30)),
        RunConfig::new(4, d),
        standard_no_failures(d, 9),
    )
    .run();
    let psi0 = mutex_stats(&clean, Ticks::ZERO).longest_starved_interval;

    let burst_end = Ticks(3_000);
    let model = tfr::sim::timing::FailureWindows::new(
        standard_no_failures(d, 9),
        vec![tfr::sim::timing::Window {
            from: Ticks::ZERO,
            to: burst_end,
            pids: None,
            inflated: Ticks(450),
        }],
    );
    let burst = Sim::new(
        LockLoop::new(mk(), 30)
            .cs_ticks(Ticks(20))
            .ncs_ticks(Ticks(30)),
        RunConfig::new(4, d),
        model,
    )
    .run();
    assert!(burst.all_halted());
    let all = mutex_stats(&burst, Ticks::ZERO);
    assert!(!all.mutual_exclusion_violated);
    let after = mutex_stats(&burst, burst_end + d.times(50));
    assert!(
        after.longest_starved_interval.0 <= psi0.0 * 2 + d.ticks().0,
        "not converged: {} vs failure-free {}",
        after.longest_starved_interval,
        psi0
    );
}

#[test]
fn native_resilient_mutex_with_every_inner_lock() {
    fn hammer(lock: Arc<dyn RawLock>, n: usize) {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        lock.lock(ProcId(i));
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock(ProcId(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), n as u64 * 1_000);
    }
    let delta = Duration::from_micros(3);
    let n = 4;
    hammer(Arc::new(ResilientMutex::standard(n, delta)), n);
    hammer(
        Arc::new(ResilientMutex::new(
            tfr::asynclock::bakery::Bakery::new(n),
            n,
            delta,
        )),
        n,
    );
    hammer(
        Arc::new(ResilientMutex::new(
            tfr::asynclock::bw_bakery::BwBakery::new(n),
            n,
            delta,
        )),
        n,
    );
    hammer(
        Arc::new(ResilientMutex::new(
            tfr::asynclock::peterson::Peterson::new(n),
            n,
            delta,
        )),
        n,
    );
}

#[test]
fn deadlock_free_variant_is_safe_even_if_not_convergent() {
    let d = Delta::from_ticks(100);
    for seed in 0..10 {
        let spec = deadlock_free_resilient_spec(3, 0, d.ticks());
        let automaton = LockLoop::new(spec, 5)
            .cs_ticks(Ticks(20))
            .ncs_ticks(Ticks(30));
        let model = UniformAccess::new(Ticks(10), Ticks(500), seed);
        let result = Sim::new(automaton, RunConfig::new(3, d), model).run();
        let stats = mutex_stats(&result, Ticks::ZERO);
        assert!(!stats.mutual_exclusion_violated, "seed={seed}");
    }
}

#[test]
fn long_lived_stability_under_periodic_bursts() {
    // §1.3's convergence is not one-shot: with periodic failure bursts,
    // the lock must stay safe, keep completing work, and be back in the
    // O(Δ) regime within every good phase.
    use tfr::sim::timing::Bursts;
    let d = Delta::from_ticks(100);
    let spec = standard_resilient_spec(4, 0, d.ticks());
    let automaton = LockLoop::new(spec, 80)
        .cs_ticks(Ticks(20))
        .ncs_ticks(Ticks(30));
    let model = Bursts::new(
        standard_no_failures(d, 13),
        Ticks(5_000),
        Ticks(1_000),
        Ticks(450),
    );
    let result = Sim::new(automaton, RunConfig::new(4, d), model).run();
    assert!(
        result.all_halted(),
        "periodic bursts must not wedge the lock"
    );
    let stats = mutex_stats(&result, Ticks::ZERO);
    assert!(!stats.mutual_exclusion_violated);
    assert_eq!(stats.cs_entries, 4 * 80);
}
