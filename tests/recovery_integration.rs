//! End-to-end acceptance for the crash-recovery stack: the recoverable
//! mutex at real contention (n = 8) under fifty seeded recovery-nemesis
//! schedules — crash-recoveries landing inside and outside the critical
//! section, workers rejoining mid-workload as new incarnations — with
//! zero mutual-exclusion violations, plus seed-replay determinism and
//! the cross-tier agreement of the linearizability oracle.

use std::time::Duration;
use tfr::chaos::recovery::RecoveryChaosReport;
use tfr::chaos::{random_schedule, run_recovery_chaos, MutexChaosConfig, ScheduleConfig};
use tfr::core::mutex::recoverable::RecoverableMutex;
use tfr::linearize::{check_history, record_recoverable_lock, RecoverableLockModel};
use tfr::registers::chaos::{Fault, FaultAction};

const N: usize = 8;

fn delta() -> Duration {
    Duration::from_micros(100)
}

fn cfg() -> MutexChaosConfig {
    MutexChaosConfig {
        n: N,
        iterations: 8,
        cs_hold: Duration::from_micros(25),
        ncs_hold: Duration::from_micros(25),
    }
}

fn run_seed(seed: u64) -> (Vec<Fault>, RecoveryChaosReport) {
    let faults = random_schedule(seed, &ScheduleConfig::recoverable_mutex(N, delta()));
    let lock = RecoverableMutex::standard(N, delta());
    let report = run_recovery_chaos(&lock, &cfg(), &faults);
    (faults, report)
}

/// The tentpole acceptance sweep: fifty seeded schedules at n = 8, each
/// drawing up to six faults (stalls, crash-stops in the remainder, and
/// crash-recoveries across the whole recoverable surface). Mutual
/// exclusion must hold on every seed, every completed worker must have
/// done its full passage count, and — across the sweep — the schedules
/// must actually exercise the interesting case: recoveries that found an
/// orphaned critical section and repaired it.
#[test]
fn fifty_seeded_recovery_schedules_stay_exclusive_at_n8() {
    let mut total_recoveries = 0usize;
    let mut total_cs_repairs = 0usize;
    let mut total_crash_recovers = 0usize;
    for seed in 0..50u64 {
        let (faults, report) = run_seed(seed);
        assert!(
            !report.mutual_exclusion_violated(),
            "seed {seed}: {} intrusions, max {} in CS",
            report.intrusions,
            report.max_in_cs
        );
        assert!(
            report.completed.len() + report.crashed.len() == N,
            "seed {seed}: every worker either completes or crash-stops"
        );
        total_recoveries += report.recoveries.len();
        total_cs_repairs += report.cs_repairs();
        total_crash_recovers += faults
            .iter()
            .filter(|f| matches!(f.action, FaultAction::CrashRecover(_)))
            .count();
    }
    assert!(
        total_crash_recovers >= 50,
        "the sweep must be crash-recover heavy (got {total_crash_recovers})"
    );
    assert!(
        total_recoveries >= 25,
        "plenty of incarnations must actually restart (got {total_recoveries})"
    );
    assert!(
        total_cs_repairs >= 5,
        "the sweep must hit the orphaned-CS case (got {total_cs_repairs})"
    );
}

/// Determinism: the schedule is a pure function of the seed, and the
/// run's *logical* outcome — which faults fired, how many incarnations
/// restarted, how many repairs happened — replays with it. (Wall-clock
/// latencies differ run to run; the logical trace must not.)
#[test]
fn recovery_runs_replay_deterministically_by_seed() {
    for seed in [7u64, 19, 33] {
        let (faults_a, a) = run_seed(seed);
        let (faults_b, b) = run_seed(seed);
        assert_eq!(faults_a, faults_b, "seed {seed}: schedules must match");
        assert_eq!(
            a.recoveries.len(),
            b.recoveries.len(),
            "seed {seed}: same incarnation restarts"
        );
        assert_eq!(
            a.cs_repairs(),
            b.cs_repairs(),
            "seed {seed}: same repair verdicts"
        );
        assert_eq!(
            a.fired.len(),
            b.fired.len(),
            "seed {seed}: same faults fired"
        );
        let crashed_a: Vec<_> = a.crashed.clone();
        assert_eq!(crashed_a, b.crashed, "seed {seed}: same crash-stops");
    }
}

/// Cross-tier agreement: the same seeded schedule shape, recorded as a
/// concurrent history and checked against the sequential
/// [`RecoverableLockModel`] — every recovery's repair verdict must
/// linearize (a `repair → 1` is a release on the dead incarnation's
/// behalf). Ten seeds, smaller n so the exponential checker stays fast.
#[test]
fn recorded_recovery_histories_are_linearizable() {
    let mut with_recovery = 0usize;
    for seed in 0..10u64 {
        let faults = random_schedule(seed, &ScheduleConfig::recoverable_mutex(3, delta()));
        let history = record_recoverable_lock(3, 3, delta(), &faults);
        let recoveries = history
            .ops
            .iter()
            .filter(|o| o.op % 3 == 2 && o.is_complete())
            .count();
        with_recovery += usize::from(recoveries > 0);
        check_history(&history, &RecoverableLockModel).unwrap_or_else(|e| {
            panic!("seed {seed}: recoverable-lock history must linearize\n{e}")
        });
    }
    assert!(
        with_recovery >= 3,
        "the sweep must include histories with real recoveries (got {with_recovery})"
    );
}
