//! Acceptance tests for the linearizability layer: every derived object's
//! history — recorded natively under chaos schedules *and* reconstructed
//! from simulator traces — passes the Wing–Gong/Lowe checker, and the
//! seeded mutants are rejected with the minimal non-linearizable window
//! in the error message.

use std::time::Duration;
use tfr::linearize::mutants::{record_mutant_queue, record_mutant_tas};
use tfr::linearize::{
    check_history, history_from_run, record_chaos, CounterModel, ElectionModel, History,
    NonLinearizable, ObjectKind, QueueModel, RenamingModel, SetConsensusModel, TasModel,
};
use tfr::registers::Delta;
use tfr::sim::timing::standard_no_failures;
use tfr::sim::{RunConfig, Sim};

/// Checks `h` against the sequential model matching `kind` (the same
/// pairing `record_chaos` documents).
fn check_by_kind(kind: ObjectKind, n: usize, h: &History) -> Result<(), NonLinearizable> {
    match kind {
        ObjectKind::Election => check_history(h, &ElectionModel).map(|_| ()),
        ObjectKind::TestAndSet => check_history(h, &TasModel).map(|_| ()),
        ObjectKind::Renaming => check_history(h, &RenamingModel { n: n as u64 }).map(|_| ()),
        ObjectKind::SetConsensus => check_history(h, &SetConsensusModel { k: 2 }).map(|_| ()),
        ObjectKind::Counter => check_history(h, &CounterModel).map(|_| ()),
        ObjectKind::Queue => check_history(h, &QueueModel).map(|_| ()),
    }
}

/// The headline acceptance sweep: all six derived objects, three chaos
/// seeds each, recorded on real threads and checked. Crash faults leave
/// pending operations; stall faults stretch the concurrency windows —
/// both must still linearize.
#[test]
fn all_objects_linearizable_under_three_chaos_seeds() {
    let delta = Duration::from_micros(20);
    let n = 3;
    for kind in ObjectKind::ALL {
        for seed in [1u64, 2, 3] {
            let h = record_chaos(kind, n, delta, seed);
            assert!(!h.is_empty(), "{} seed {seed}: empty history", kind.name());
            check_by_kind(kind, n, &h)
                .unwrap_or_else(|e| panic!("{} seed {seed} not linearizable:\n{e}", kind.name()));
        }
    }
}

/// One simulator trace per object: the spec-form automata announce their
/// responses on the trace, `history_from_run` reconstructs the history,
/// and the same checker accepts it — the simulated and native worlds
/// answer to one oracle.
#[test]
fn one_sim_trace_per_object_checks_out() {
    use tfr::core::derived_spec::{RenamingSpec, SetConsensusSpec, TasSpec};
    use tfr::core::election_spec::ElectionSpec;
    use tfr::core::universal::{Counter, FifoQueue};
    use tfr::core::universal_spec::UniversalSpec;

    let d = Delta::from_ticks(100);
    let n = 3;
    let config = || RunConfig::new(n, d).max_steps(300_000);

    let r = Sim::new(
        ElectionSpec::new(n, 0, d.ticks()),
        config(),
        standard_no_failures(d, 11),
    )
    .run();
    let ops: Vec<u64> = (0..n as u64).collect();
    let h = history_from_run(&r, &ops);
    assert_eq!(h.completed(), n, "election: everyone responds");
    check_history(&h, &ElectionModel).expect("sim election");

    let r = Sim::new(
        TasSpec::new(n, 0, d.ticks()),
        config(),
        standard_no_failures(d, 12),
    )
    .run();
    let h = history_from_run(&r, &[0, 0, 0]);
    assert_eq!(h.completed(), n, "tas: everyone responds");
    check_history(&h, &TasModel).expect("sim test-and-set");

    let r = Sim::new(
        RenamingSpec::new(n, 0, d.ticks()),
        config(),
        standard_no_failures(d, 13),
    )
    .run();
    let h = history_from_run(&r, &[0, 0, 0]);
    assert_eq!(h.completed(), n, "renaming: everyone responds");
    check_history(&h, &RenamingModel { n: n as u64 }).expect("sim renaming");

    let inputs = vec![true, false, true];
    let ops: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
    let r = Sim::new(
        SetConsensusSpec::new(2, inputs, 0, d.ticks()),
        config(),
        standard_no_failures(d, 14),
    )
    .run();
    let h = history_from_run(&r, &ops);
    assert_eq!(h.completed(), n, "set consensus: everyone responds");
    check_history(&h, &SetConsensusModel { k: 2 }).expect("sim set consensus");

    let amounts = vec![5u64, 7, 9];
    let r = Sim::new(
        UniversalSpec::new(Counter, amounts.clone(), 0, d.ticks()),
        config(),
        standard_no_failures(d, 15),
    )
    .run();
    let h = history_from_run(&r, &amounts);
    assert_eq!(h.completed(), n, "counter: everyone responds");
    check_history(&h, &CounterModel).expect("sim universal counter");

    let ops = vec![
        FifoQueue::enqueue_op(41),
        FifoQueue::enqueue_op(43),
        FifoQueue::DEQUEUE,
    ];
    let r = Sim::new(
        UniversalSpec::new(FifoQueue, ops.clone(), 0, d.ticks()),
        config(),
        standard_no_failures(d, 16),
    )
    .run();
    let h = history_from_run(&r, &ops);
    assert_eq!(h.completed(), n, "queue: everyone responds");
    check_history(&h, &QueueModel).expect("sim universal queue");
}

/// Mutant 1: the non-atomic test-and-set. A chaos stall parked in its
/// load→store gap produces two winners; the checker must reject the
/// history and print the offending window.
#[test]
fn mutant_split_tas_rejected_with_window() {
    let err = check_history(&record_mutant_tas(), &TasModel).expect_err("two winners");
    let msg = err.to_string();
    assert!(msg.contains("not linearizable"), "{msg}");
    assert!(msg.contains("minimal non-linearizable window"), "{msg}");
    assert!(
        msg.contains("test_and_set() → false"),
        "the window shows a duplicated win: {msg}"
    );
}

/// Mutant 2: the queue that drops an element when a stall makes its
/// enqueue look congested. The recorded history is sequential, so the
/// drop is unhideable; the window names the dequeue that skipped a value.
#[test]
fn mutant_lossy_queue_rejected_with_window() {
    let h = record_mutant_queue(Duration::from_micros(5));
    let err = check_history(&h, &QueueModel).expect_err("a value vanished");
    let msg = err.to_string();
    assert!(msg.contains("not linearizable"), "{msg}");
    assert!(msg.contains("minimal non-linearizable window"), "{msg}");
    assert!(msg.contains("dequeue() → 8"), "{msg}");
}
