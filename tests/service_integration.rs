//! End-to-end acceptance for the sharded object service under chaos:
//! seeded schedules of stalls, permanent crash-stops, and
//! crash-recoveries (confined to the two universal-construction points,
//! where a fresh incarnation provably resynchronises from the registers)
//! against four workers driving flat-combining batches on two shards —
//! with **zero lost operations**: at quiescence every announced op is
//! committed and the shard states equal the register-backed announce
//! ground truth exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tfr::chaos::{random_schedule, ScheduleConfig};
use tfr::core::universal::Counter;
use tfr::registers::chaos::{points, run_as, ChaosSession, Fault, FaultAction, ThreadOutcome};
use tfr::registers::ProcId;
use tfr::service::{decode_op, ObjectService, ServiceConfig};

const N: usize = 4;
const SHARDS: usize = 2;
const ROUNDS: u64 = 6;
const BURST: usize = 4;
const KEYS: u64 = 8;

fn delta() -> Duration {
    Duration::from_micros(100)
}

fn service() -> ObjectService<Counter> {
    let cfg = ServiceConfig {
        capacity_per_shard: 512,
        delta: delta(),
        max_batch: 8,
        ..ServiceConfig::new(SHARDS, N)
    };
    ObjectService::new(|| Counter, &cfg)
}

/// What one chaos run produced, per worker: incarnation restarts and
/// whether the pid ended crash-stopped for good.
struct RunStats {
    recoveries: usize,
    crashed: Vec<usize>,
}

/// Runs the standard workload under an installed fault plan: each worker
/// drives [`ROUNDS`] bursts of [`BURST`] ops over [`KEYS`] keys,
/// restarting as a new incarnation after every recoverable crash (a
/// round interrupted mid-flight is redone — re-announcing is legal, and
/// the invariant checked afterwards is against what was *actually*
/// announced, not the intended workload).
fn drive_workload(svc: &ObjectService<Counter>, faults: &[Fault]) -> RunStats {
    let session = ChaosSession::install(faults);
    let stats: Vec<(usize, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|w| {
                s.spawn(move || {
                    let pid = ProcId(w);
                    let progress = AtomicU64::new(0);
                    let mut recoveries = 0usize;
                    loop {
                        let outcome = run_as(pid, || {
                            let mut worker = svc.worker(pid);
                            worker.catch_up();
                            for r in progress.load(Ordering::SeqCst)..ROUNDS {
                                let burst: Vec<(u64, u64)> = (0..BURST)
                                    .map(|i| {
                                        let key = (w as u64 + i as u64 * N as u64) % KEYS;
                                        let amount = 1 + ((w as u64 + r + i as u64) % 4);
                                        (key, amount)
                                    })
                                    .collect();
                                worker.enqueue_burst(&burst);
                                worker.drive();
                                progress.store(r + 1, Ordering::SeqCst);
                            }
                        });
                        match outcome {
                            ThreadOutcome::Completed(()) => return (recoveries, false),
                            ThreadOutcome::Crashed => return (recoveries, true),
                            ThreadOutcome::CrashedRecoverable(down) => {
                                recoveries += 1;
                                std::thread::sleep(down);
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("a service chaos worker panicked"))
            .collect()
    });
    drop(session);
    RunStats {
        recoveries: stats.iter().map(|&(r, _)| r).sum(),
        crashed: stats
            .iter()
            .enumerate()
            .filter(|(_, &(_, c))| c)
            .map(|(w, _)| w)
            .collect(),
    }
}

/// Flushes announced-but-uncommitted leftovers (e.g. a crash-stopped
/// worker's final burst) by enqueueing zero-amount ops on every shard
/// from outside the chaos regime — the combiner batches *everyone's*
/// pending ops, so a few flush rounds drain any backlog.
fn flush(svc: &ObjectService<Counter>) {
    let mut flusher = svc.worker(ProcId(0));
    flusher.catch_up();
    for _ in 0..64 {
        if svc.audit().iter().all(|a| a.complete()) {
            return;
        }
        let one_per_shard: Vec<(u64, u64)> = (0..SHARDS)
            .map(|shard| {
                let key = (0..KEYS)
                    .find(|&k| svc.shard_of(k) == shard)
                    .expect("8 keys over 2 shards hit both");
                (key, 0)
            })
            .collect();
        flusher.enqueue_burst(&one_per_shard);
        flusher.drive();
    }
    panic!("flush did not reach quiescence in 64 rounds");
}

/// Asserts the zero-lost-ops invariant from register ground truth: every
/// shard's log is contiguous and complete (committed == announced for
/// every worker), and the replayed state equals the sum of exactly the
/// announced amounts, per key.
fn assert_nothing_lost(svc: &ObjectService<Counter>, ctx: &str) {
    let audits = svc.audit();
    for (shard, audit) in audits.iter().enumerate() {
        assert!(audit.contiguous, "{ctx}: shard {shard} log not contiguous");
        assert!(
            audit.complete(),
            "{ctx}: shard {shard} lost ops (committed {:?} != announced {:?})",
            audit.committed,
            audit.announced
        );
        let mut expected = std::collections::BTreeMap::new();
        for p in 0..N {
            for seq in 0..audit.announced[p] {
                let raw = svc
                    .announced_op(shard, p, seq)
                    .unwrap_or_else(|| panic!("{ctx}: announced op {p}/{seq} unreadable"));
                let (key, amount) = decode_op(raw);
                *expected.entry(key).or_insert(0u64) += amount;
            }
        }
        assert_eq!(
            svc.snapshot(shard),
            expected,
            "{ctx}: shard {shard} state diverged from the announce ground truth"
        );
    }
}

/// The acceptance sweep: twenty seeded service schedules, each drawing up
/// to six faults. Zero lost operations on every seed, and — across the
/// sweep — real crash-recovery traffic: incarnations must actually
/// restart at the universal points and resume to a complete log.
#[test]
fn seeded_service_schedules_lose_no_ops() {
    let mut total_recoveries = 0usize;
    let mut total_crashes = 0usize;
    for seed in 0..20u64 {
        let faults = random_schedule(seed, &ScheduleConfig::service(N, delta()));
        let svc = service();
        let stats = drive_workload(&svc, &faults);
        flush(&svc);
        assert_nothing_lost(&svc, &format!("seed {seed}"));
        total_recoveries += stats.recoveries;
        total_crashes += stats.crashed.len();
    }
    assert!(
        total_recoveries >= 5,
        "the sweep must exercise recovery (got {total_recoveries} restarts)"
    );
    assert!(
        total_crashes >= 1,
        "the sweep must include a permanent crash-stop (got {total_crashes})"
    );
}

/// Service schedules are a pure function of their seed, and their
/// crash-recoveries stay confined to the two points a fresh incarnation
/// can resynchronise from.
#[test]
fn service_schedules_replay_and_confine_recoveries() {
    let cfg = ScheduleConfig::service(N, delta());
    assert_eq!(random_schedule(9, &cfg), random_schedule(9, &cfg));
    assert_ne!(random_schedule(9, &cfg), random_schedule(10, &cfg));
    let mut saw_recover = 0usize;
    for seed in 0..200u64 {
        for f in random_schedule(seed, &cfg) {
            if let FaultAction::CrashRecover(down) = f.action {
                saw_recover += 1;
                assert!(
                    f.point == points::UNIVERSAL_ANNOUNCE || f.point == points::UNIVERSAL_COMBINE,
                    "seed {seed}: crash-recover at unsafe point {}",
                    f.point
                );
                assert!(
                    down >= cfg.min_down && down <= cfg.max_down,
                    "seed {seed}: down time {down:?} out of range"
                );
            }
        }
    }
    assert!(
        saw_recover > 100,
        "recover_prob must bite across the sweep (got {saw_recover})"
    );
}

/// A handcrafted plan that *guarantees* recoveries fire mid-protocol:
/// worker 1 dies at its second announce publication, worker 2 at its
/// first — both come back as new incarnations, resynchronise their
/// announce counters from the registers, redo the interrupted round, and
/// the log still ends complete.
#[test]
fn crash_recovered_incarnations_resume_to_a_complete_log() {
    let faults = vec![
        Fault {
            pid: ProcId(1),
            point: points::UNIVERSAL_ANNOUNCE,
            nth: 2,
            action: FaultAction::CrashRecover(Duration::from_micros(200)),
        },
        Fault {
            pid: ProcId(2),
            point: points::UNIVERSAL_ANNOUNCE,
            nth: 1,
            action: FaultAction::CrashRecover(Duration::from_micros(200)),
        },
        Fault {
            pid: ProcId(3),
            point: points::UNIVERSAL_COMBINE,
            nth: 2,
            action: FaultAction::CrashRecover(Duration::from_micros(150)),
        },
    ];
    let svc = service();
    let stats = drive_workload(&svc, &faults);
    flush(&svc);
    assert!(
        stats.recoveries >= 2,
        "both announce-point faults must fire (got {})",
        stats.recoveries
    );
    assert!(
        stats.crashed.is_empty(),
        "no permanent crashes were planned"
    );
    assert_nothing_lost(&svc, "handcrafted recovery plan");
}

/// Fault-free baseline under the same harness: the workload completes
/// with no restarts, and the intended totals are exactly what the
/// announce ground truth reconstructs (nothing was redone, nothing
/// lost).
#[test]
fn fault_free_service_runs_match_the_intended_workload() {
    let svc = service();
    let stats = drive_workload(&svc, &[]);
    assert_eq!(stats.recoveries, 0);
    assert!(stats.crashed.is_empty());
    flush(&svc);
    assert_nothing_lost(&svc, "fault-free");
    // The intended workload is reconstructible: every worker did all its
    // rounds, once.
    let mut intended = std::collections::BTreeMap::new();
    for w in 0..N {
        for r in 0..ROUNDS {
            for i in 0..BURST {
                let key = (w as u64 + i as u64 * N as u64) % KEYS;
                *intended.entry(key).or_insert(0u64) += 1 + ((w as u64 + r + i as u64) % 4);
            }
        }
    }
    let mut actual = std::collections::BTreeMap::new();
    for shard in 0..SHARDS {
        for (key, total) in svc.snapshot(shard) {
            if total > 0 {
                actual.insert(key, total);
            }
        }
    }
    let intended: std::collections::BTreeMap<u64, u64> =
        intended.into_iter().filter(|&(_, v)| v > 0).collect();
    assert_eq!(actual, intended, "fault-free totals are the workload's");
}
