//! The differential test tier for the scaled simulator: the timer-wheel
//! scheduler is only allowed to exist because these tests prove it
//! indistinguishable from the reference `BinaryHeap` driver.
//!
//! The headline is a 256-seed battery: every seed builds one seeded
//! workload + timing model (uniform access times, failure windows,
//! crash schedules, slowdown bursts — rotating by seed) and runs it to
//! completion under both schedulers with trace recording on. The full
//! [`RunResult`]s — traces, observations, halt/crash vectors, failure
//! counts, end times — must be **bit-identical**. Seeds are spread
//! across n ∈ {1, 2, 17, 256, 4096} so tie-break-heavy tiny runs and
//! cascade-heavy large runs are both covered, and a slice of the seeds
//! gets tight `max_time`/`max_steps` budgets so truncation edges (the
//! budget-tripping event is dropped, not linearized) agree too.

use tfr::chaos::storm::{storm_model, StormConfig};
use tfr::registers::{Delta, ProcId, Ticks};
use tfr::sim::shard::{Region, ShardPlan, ShardSpec, ShardedSim};
use tfr::sim::timing::{
    standard_no_failures, Bursts, CrashSchedule, FailureWindows, TimingModel, UniformAccess, Window,
};
use tfr::sim::workload::{DelayOnly, ScaleLoop};
use tfr::sim::{RunConfig, RunResult, SchedKind, Sim};

/// Runs the same seeded scenario under both schedulers and asserts the
/// results are bit-identical. Returns one result for further checks.
fn both_schedulers<M: TimingModel + Clone>(
    workload: ScaleLoop,
    config: RunConfig,
    model: M,
    what: &str,
) -> RunResult {
    let run = |kind: SchedKind| {
        Sim::new(workload.clone(), config.clone().sched(kind), model.clone()).run()
    };
    let wheel = run(SchedKind::Wheel);
    let heap = run(SchedKind::Heap);
    assert_eq!(wheel, heap, "wheel diverged from heap: {what}");
    wheel
}

/// The base access-time model every battery variant builds on.
fn base(d: Delta, seed: u64) -> UniformAccess {
    UniformAccess::new(Ticks(d.ticks().0 / 4), Ticks(d.ticks().0 * 2), seed)
}

/// The 256-seed wheel-vs-heap battery. Four timing-model variants
/// rotate by seed; every 5th seed gets a tight `max_time` and every 7th
/// a tight `max_steps`, so scheduler agreement is also proven on
/// truncated runs where the last popped event is dropped.
#[test]
fn differential_battery_256_seeds_wheel_equals_heap() {
    let d = Delta::from_ticks(100);
    let mut seed = 0u64;
    let mut truncated = 0u64;
    for &(n, seeds) in &[(1usize, 64u64), (2, 64), (17, 64), (256, 48), (4096, 16)] {
        for _ in 0..seeds {
            seed += 1;
            let workload = ScaleLoop::new(2, n.min(64), 0).salt(seed);
            let mut config = RunConfig::new(n, d).record_trace();
            if seed.is_multiple_of(5) {
                config = config.max_time(Ticks(3 + seed % 97));
            }
            if seed.is_multiple_of(7) {
                config = config.max_steps(1 + seed % 53);
            }
            let what = format!("seed {seed}, n {n}");
            let result = match seed % 4 {
                0 => both_schedulers(workload, config, base(d, seed), &what),
                1 => {
                    let windows = vec![Window {
                        from: Ticks(seed % 50),
                        to: Ticks(seed % 50 + 120),
                        pids: (n > 2).then(|| vec![ProcId(0), ProcId(seed as usize % n)]),
                        inflated: Ticks(d.ticks().0 * 3),
                    }];
                    let model = FailureWindows::new(base(d, seed), windows);
                    both_schedulers(workload, config, model, &what)
                }
                2 => {
                    let crashes: Vec<(ProcId, Ticks)> = (0..n.min(5))
                        .map(|i| (ProcId((seed as usize + i) % n), Ticks(20 + 30 * i as u64)))
                        .collect();
                    let model = CrashSchedule::new(base(d, seed), crashes);
                    both_schedulers(workload, config, model, &what)
                }
                _ => {
                    let model = Bursts::new(
                        base(d, seed),
                        Ticks(d.ticks().0 * 4),
                        Ticks(d.ticks().0),
                        Ticks(d.ticks().0 * 3),
                    );
                    both_schedulers(workload, config, model, &what)
                }
            };
            if result.timed_out {
                // A cutoff below the first completion legitimately
                // linearizes nothing; agreement is what's under test.
                truncated += 1;
            } else {
                assert!(result.steps > 0, "seed {seed} linearized nothing");
            }
        }
    }
    assert_eq!(seed, 256, "the battery must cover exactly 256 seeds");
    assert!(
        truncated > 20,
        "the tight budgets must actually exercise truncation edges (got {truncated})"
    );
}

/// Dense sweep of the truncation boundary itself: every `max_steps` in
/// [0, 40) and a grid of `max_time` cutoffs, wheel vs heap. The budget
/// semantics (budget-tripping event dropped, resume-exact pauses) are
/// where a scheduler swap would most plausibly diverge.
#[test]
fn truncation_edges_agree_at_every_budget() {
    let d = Delta::from_ticks(100);
    for max_steps in 0..40 {
        let config = RunConfig::new(17, d).record_trace().max_steps(max_steps);
        both_schedulers(
            ScaleLoop::new(3, 17, 0).salt(max_steps),
            config,
            base(d, max_steps),
            &format!("max_steps {max_steps}"),
        );
    }
    for i in 0..30 {
        let cutoff = Ticks(7 * i);
        let config = RunConfig::new(17, d).record_trace().max_time(cutoff);
        both_schedulers(
            ScaleLoop::new(3, 17, 0).salt(i),
            config,
            base(d, i),
            &format!("max_time {cutoff:?}"),
        );
    }
}

/// The chaos storm (bursty slowdowns + a crash wave at large n) agrees
/// across schedulers at a moderate n with traces on — the same model
/// the E25 million-process sweep runs, at a size debug builds afford.
#[test]
fn storm_differential_with_traces() {
    let cfg = StormConfig::new(1_500, Delta::from_ticks(80));
    for seed in [3u64, 17, 0xE25] {
        let run = |kind: SchedKind| {
            let config = RunConfig::new(cfg.n, cfg.delta).sched(kind).record_trace();
            Sim::new(
                ScaleLoop::new(2, 64, 0).salt(seed),
                config,
                storm_model(seed, &cfg),
            )
            .run()
        };
        assert_eq!(
            run(SchedKind::Wheel),
            run(SchedKind::Heap),
            "storm seed {seed}"
        );
    }
}

/// The parallel shard executor equals its sequential run, seed by seed,
/// including with an epoch fence — the third leg of the differential
/// tier (wheel ≡ heap ≡ the sharded decomposition of the same work).
#[test]
fn sharded_parallel_equals_sequential_battery() {
    let d = Delta::from_ticks(60);
    for seed in 0..12u64 {
        let width = 16u64;
        let epoch = seed.is_multiple_of(3).then_some(Ticks(150));
        let plan = || ShardPlan {
            shards: (0..6)
                .map(|i| {
                    let region = Region::tile(0, i, width);
                    ShardSpec {
                        automaton: ScaleLoop::new(3, width as usize, region.lo)
                            .salt(seed ^ (i as u64) << 8),
                        model: standard_no_failures(d, seed.wrapping_add(i as u64)),
                        config: RunConfig::new(width as usize, d).record_trace(),
                        region,
                    }
                })
                .collect(),
            shared: None,
            epoch,
        };
        let seq = ShardedSim::new(plan())
            .expect("disjoint tiles certify")
            .run_sequential()
            .expect("sequential run");
        let par = ShardedSim::new(plan())
            .expect("disjoint tiles certify")
            .run_parallel(3)
            .expect("parallel run");
        assert_eq!(seq, par, "shard seed {seed}");
        assert!(seq.all_halted(), "shard seed {seed} must complete");
    }
}

/// Large-n smoke: fifty thousand processes complete a delay workload
/// under the *default* budgets on both schedulers — the max_steps
/// budget scales with n instead of silently truncating big runs.
#[test]
fn large_n_smoke_under_default_budgets() {
    let d = Delta::from_ticks(100);
    let run = |kind: SchedKind| {
        let config = RunConfig::new(50_000, d).max_time(Ticks::NEVER).sched(kind);
        Sim::new(
            DelayOnly::new(4, 1, 512).salt(9),
            config,
            tfr::sim::timing::Fixed::new(Ticks(1)),
        )
        .run()
    };
    let wheel = run(SchedKind::Wheel);
    let heap = run(SchedKind::Heap);
    assert_eq!(wheel, heap);
    assert!(
        !wheel.timed_out,
        "default budgets must not truncate at n=50k"
    );
    assert!(wheel.all_halted());
    assert_eq!(wheel.steps, 50_000 * 4);
    // The scaling rule itself, at sizes the test cannot afford to run:
    // a million processes get a billion steps, not the old flat cap.
    assert_eq!(RunConfig::new(1_000_000, d).max_steps, 1_000_000_000);
    assert!(RunConfig::new(1_000_000, d).max_steps >= 1_000_000 * 100);
}
