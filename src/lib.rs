//! # tfr — computing in the presence of timing failures
//!
//! A Rust implementation of the algorithms, model, and experiments of
//! **Gadi Taubenfeld, "Computing in the Presence of Timing Failures",
//! ICDCS 2006**: consensus and mutual exclusion from atomic registers that
//! keep their safety properties under arbitrary *timing failures* and
//! automatically resume efficient, live operation once timing constraints
//! hold again.
//!
//! This crate is a facade over the workspace:
//!
//! * [`core`] — the paper's algorithms (time-resilient consensus, Fischer's
//!   lock, the time-resilient mutex) plus derived wait-free objects and the
//!   adaptive `optimistic(Δ)` machinery.
//! * [`registers`] — the shared-memory substrate (ids, virtual time,
//!   automaton spec model, register banks, unbounded atomic arrays).
//! * [`sim`] — a deterministic discrete-event simulator of the
//!   timing-based model (timing-failure and crash injection, metrics).
//! * [`modelcheck`] — a bounded exhaustive interleaving explorer used to
//!   verify the safety theorems.
//! * [`asynclock`] — asynchronous mutual exclusion algorithms (Lamport
//!   fast, bakery variants, tournament) used as the inner lock `A` of
//!   Algorithm 3 and as baselines.
//! * [`baselines`] — consensus baselines (time-adaptive, unknown-Δ).
//! * [`chaos`] — the native chaos harness: seeded fault schedules injected
//!   into the real-thread stack (stalls and crash-stops at named points),
//!   deterministic replay, schedule shrinking, and native §1.3 resilience
//!   reports.
//! * [`linearize`] — the linearizability layer: a lock-free concurrent
//!   history recorder, a Wing–Gong/Lowe checker with memoization and
//!   per-object partitioning, sequential models for all derived objects
//!   and for atomic registers, chaos-scheduled native recording drivers,
//!   simulator-trace conversion, and seeded mutants proving the oracle
//!   rejects broken objects.
//! * [`net`] — the third execution stack: a deterministic, seedable
//!   in-process message-passing network hosting ABD-style majority-quorum
//!   replica servers, exposing emulated atomic registers through the same
//!   `RegisterSpace` trait native atomics implement — the paper's
//!   algorithms run over it unchanged, under partitions, message drops,
//!   and delay spikes.
//! * [`service`] — the scale layer: a sharded wait-free object service
//!   over the universal construction (seeded key → shard routing,
//!   flat-combining batches so one consensus decision commits a whole
//!   burst), plus a load harness with under-load linearizability
//!   sampling and seeded combiner mutants proving the sampler's teeth.
//! * [`telemetry`] — the unified telemetry layer: lock-free per-process
//!   event tracing with zero-cost-when-disabled hooks across both
//!   execution stacks, causal spans propagated through message envelopes
//!   and batch records, a metrics registry (counters, log-bucketed
//!   histograms), and Chrome-trace/Perfetto JSON (with cross-node flow
//!   links) plus machine-readable summary export with the measured §1.3
//!   convergence time.
//! * [`obs`] — live observability: a background collector draining event
//!   rings *during* execution (windowed throughput, per-stage latency
//!   percentiles, Δ and fault tracks, a text dashboard), and sound
//!   online invariant monitors — mutual-exclusion intrusion, batch
//!   duplicate/gap, quorum version regression, recovery-incarnation
//!   monotonicity — that flag violations while chaos nemeses run.
//! * [`log`] — the replication layer: a multi-height replicated log
//!   (each height one timing-resilient consensus instance over a tiled
//!   register arena) with batched proposals and commit pipelining
//!   behind a pure height state machine, log-driven state-machine
//!   replication of the derived objects (counter, queue, renaming),
//!   chained prefix digests with a cross-lane audit, a recoverable
//!   worker incarnation model, and seeded reordering mutants proving
//!   the audit and the online prefix monitor both have teeth.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tfr::core::consensus::NativeConsensus;
//!
//! // Wait-free binary consensus among 4 threads, resilient to timing
//! // failures: safety never depends on the Δ estimate being right.
//! let consensus = Arc::new(NativeConsensus::new(Duration::from_micros(50)));
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let c = Arc::clone(&consensus);
//!         std::thread::spawn(move || c.propose(i % 2 == 1))
//!     })
//!     .collect();
//! let decisions: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
//! ```

pub use tfr_asynclock as asynclock;
pub use tfr_baselines as baselines;
pub use tfr_chaos as chaos;
pub use tfr_core as core;
pub use tfr_linearize as linearize;
pub use tfr_log as log;
pub use tfr_modelcheck as modelcheck;
pub use tfr_net as net;
pub use tfr_obs as obs;
pub use tfr_registers as registers;
pub use tfr_service as service;
pub use tfr_sim as sim;
pub use tfr_telemetry as telemetry;
